//! Property-based integration tests (proptest) on cross-crate
//! invariants.

use ahfic_num::{lu, Matrix};
use ahfic_rf::image_rejection::irr_analytic_db;
use ahfic_spice::analysis::{OpResult, Options, Session};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::units::{format_value, parse_value};
use proptest::prelude::*;

// Thin shims over [`Session`] — the primary analysis entry point —
// preserving this suite's free-function call shape.
fn op(prep: &Prepared, opts: &Options) -> ahfic_spice::error::Result<OpResult> {
    Session::new(prep.clone()).with_options(opts.clone()).op()
}

proptest! {
    /// LU solves random diagonally dominant systems to tight residuals.
    #[test]
    fn lu_residual_small(
        seed_vals in proptest::collection::vec(-1.0f64..1.0, 36),
        rhs in proptest::collection::vec(-10.0f64..10.0, 6),
    ) {
        let n = 6;
        let mut m = Matrix::<f64>::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                let v = seed_vals[r * n + c];
                m[(r, c)] = v;
                row_sum += v.abs();
            }
            m[(r, r)] = row_sum + 1.0; // strict diagonal dominance
        }
        let x = lu::solve(m.clone(), &rhs).unwrap();
        let back = m.mul_vec(&x);
        for k in 0..n {
            prop_assert!((back[k] - rhs[k]).abs() < 1e-9);
        }
    }

    /// Any converged OP of a random resistor-divider tree satisfies KCL:
    /// the source current equals the sum of what flows back to ground.
    #[test]
    fn resistor_network_op_satisfies_kcl(
        rs in proptest::collection::vec(10.0f64..100e3, 4),
        vin in -10.0f64..10.0,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::gnd(), vin);
        ckt.resistor("R0", a, b, rs[0]);
        ckt.resistor("R1", b, Circuit::gnd(), rs[1]);
        ckt.resistor("R2", b, Circuit::gnd(), rs[2]);
        ckt.resistor("R3", a, Circuit::gnd(), rs[3]);
        let prep = Prepared::compile(&ckt).unwrap();
        let r = op(&prep, &Options::default()).unwrap();
        let va = prep.voltage(&r.x, a);
        let vb = prep.voltage(&r.x, b);
        let i_src = r.x[prep.branch_slot("V1").unwrap()];
        // Current leaving the source's + terminal externally:
        let i_ext = (va - vb) / rs[0] + va / rs[3];
        prop_assert!((i_src + i_ext).abs() < 1e-9 * (1.0 + i_ext.abs()));
        // Node b KCL:
        let kcl_b = (va - vb) / rs[0] - vb / rs[1] - vb / rs[2];
        prop_assert!(kcl_b.abs() < 1e-9);
    }

    /// The IRR closed form is symmetric in the sign of the phase error
    /// and monotonically decreasing in its magnitude.
    #[test]
    fn irr_formula_symmetry_and_monotonicity(
        phase in 0.1f64..15.0,
        gain in 0.0f64..0.2,
    ) {
        let plus = irr_analytic_db(phase, gain);
        let minus = irr_analytic_db(-phase, gain);
        prop_assert!((plus - minus).abs() < 1e-9);
        let worse = irr_analytic_db(phase * 1.5, gain);
        prop_assert!(worse <= plus + 1e-9);
    }

    /// SPICE value formatting round-trips through the parser.
    #[test]
    fn spice_value_round_trip(v in -1e14f64..1e14) {
        let text = format_value(v);
        let back = parse_value(&text).unwrap();
        let tol = 1e-3 * v.abs().max(1e-18);
        prop_assert!((back - v).abs() <= tol, "{v} -> {text} -> {back}");
    }

    /// Shape names round-trip for arbitrary (sane) geometry.
    #[test]
    fn shape_name_round_trip(
        w in 0.6f64..5.0,
        l in 2.0f64..60.0,
        ne in 1u32..4,
        nb in 1u32..4,
    ) {
        use ahfic_geom::shape::TransistorShape;
        // Two-decimal quantization matches the display format.
        let w = (w * 100.0).round() / 100.0;
        let l = (l * 100.0).round() / 100.0;
        let s = TransistorShape::new(w, l, ne, nb);
        let back: TransistorShape = s.to_string().parse().unwrap();
        prop_assert_eq!(back, s);
    }

    /// Generated model cards scale sanely: more emitter area never
    /// reduces IS/IKF/CJE and never increases RE.
    #[test]
    fn generated_cards_scale_monotonically(l1 in 3.0f64..20.0, scale in 1.1f64..4.0) {
        use ahfic_geom::prelude::*;
        let g = ModelGenerator::new(ProcessData::default(), MaskRules::default());
        let l1 = (l1 * 10.0).round() / 10.0;
        let l2 = ((l1 * scale) * 10.0).round() / 10.0;
        let small = g.generate(&TransistorShape::new(1.2, l1, 1, 2));
        let big = g.generate(&TransistorShape::new(1.2, l2, 1, 2));
        prop_assert!(big.is_ > small.is_);
        prop_assert!(big.ikf > small.ikf);
        prop_assert!(big.cje > small.cje);
        prop_assert!(big.re < small.re);
        prop_assert!(big.rb < small.rb);
    }
}

// Cell database save/load round-trips arbitrary text content.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn celldb_json_round_trip(doc in "[a-zA-Z0-9 .,<>&]{0,120}", name in "[A-Z][A-Z0-9]{1,10}") {
        use ahfic_celldb::cell::{Cell, CategoryPath};
        use ahfic_celldb::views::CellViews;
        use ahfic_celldb::CellDb;
        let mut db = CellDb::new();
        db.register(Cell::new(
            &name,
            CategoryPath::new("TV", "Chroma", "ACC"),
            CellViews { document: Some(doc.clone()), ..Default::default() },
        )).unwrap();
        let back = CellDb::from_json(&db.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.get(&name).unwrap().views.document.as_deref(), Some(doc.as_str()));
    }
}
