//! System-level integration tests: the Fig. 2–5 tuner experiments across
//! `ahfic-ahdl`, `ahfic-rf` and `ahfic` (core).

use ahfic::flow::TopDownFlow;
use ahfic_celldb::seed::seed_library;
use ahfic_rf::image_rejection::{irr_analytic_db, measure_irr_db};
use ahfic_rf::plan::FrequencyPlan;
use ahfic_rf::tuner::{ImageRejectionErrors, TunerConfig};

/// The Fig. 5 surface: behavioral simulation must track the closed form
/// across the whole sweep region within a fraction of a dB.
#[test]
fn fig5_simulation_tracks_closed_form() {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    for (p, g) in [(0.5, 0.01), (3.0, 0.03), (10.0, 0.09)] {
        let errors = ImageRejectionErrors {
            lo_phase_err_deg: p,
            gain_err: g,
            shifter_phase_err_deg: 0.0,
        };
        let sim = measure_irr_db(&plan, &cfg, &errors, Some(1.5e-6)).unwrap();
        let ana = irr_analytic_db(p, g);
        assert!(
            (sim - ana).abs() < 0.6,
            "({p} deg, {g}): sim {sim:.2} vs analytic {ana:.2}"
        );
    }
}

/// Splitting the error between the LO quadrature and the IF shifter
/// composes: total phase error is what matters.
#[test]
fn phase_error_location_is_interchangeable() {
    let plan = FrequencyPlan::catv(500e6);
    let cfg = TunerConfig::for_plan(&plan);
    let on_lo = measure_irr_db(
        &plan,
        &cfg,
        &ImageRejectionErrors {
            lo_phase_err_deg: 4.0,
            gain_err: 0.0,
            shifter_phase_err_deg: 0.0,
        },
        Some(1.5e-6),
    )
    .unwrap();
    let on_shifter = measure_irr_db(
        &plan,
        &cfg,
        &ImageRejectionErrors {
            lo_phase_err_deg: 0.0,
            gain_err: 0.0,
            shifter_phase_err_deg: 4.0,
        },
        Some(1.5e-6),
    )
    .unwrap();
    assert!(
        (on_lo - on_shifter).abs() < 1.0,
        "LO {on_lo:.2} vs shifter {on_shifter:.2}"
    );
}

/// Image rejection must be insensitive to which channel frequency we
/// tune (the architecture works across the band).
#[test]
fn image_rejection_holds_across_the_band() {
    for rf in [150e6, 470e6, 740e6] {
        let plan = FrequencyPlan::catv(rf);
        let cfg = TunerConfig::for_plan(&plan);
        let errors = ImageRejectionErrors {
            lo_phase_err_deg: 2.0,
            gain_err: 0.02,
            shifter_phase_err_deg: 0.0,
        };
        let sim = measure_irr_db(&plan, &cfg, &errors, Some(1.5e-6)).unwrap();
        let ana = irr_analytic_db(2.0, 0.02);
        assert!((sim - ana).abs() < 0.8, "rf={rf:.0}: {sim:.2} vs {ana:.2}");
    }
}

/// The complete six-stage methodology over the seeded library.
#[test]
fn full_top_down_flow_with_library() {
    let db = seed_library().unwrap();
    let report = TopDownFlow::paper_example().run(&db).unwrap();
    assert!(report.final_pass, "{:#?}", report.stages);
    assert_eq!(report.stages.len(), 6);
    // The flow reused library cells and built a design skeleton.
    assert!(!report.reused_cells.is_empty());
    assert!(!report.design.blocks().is_empty());
    // The mixed-level stage produced a physically consistent story.
    let mixed = report.mixed.unwrap();
    assert!(mixed.ideal_irr_db > mixed.real_irr_db);
    assert!((mixed.real_irr_db - mixed.predicted_irr_db).abs() < 1.5);
}
