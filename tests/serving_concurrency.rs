//! Serving-layer concurrency suite.
//!
//! The contracts under test:
//!
//! - Concurrent sessions sharing one cached `Prepared` produce results
//!   bit-identical to a sequential run — sharing is purely structural.
//! - Cancelling a transient mid-run returns a typed partial within one
//!   timestep of the cancel signal.
//! - Cache eviction under churn never double-compiles a hot deck: as
//!   long as a deck stays in active rotation, every checkout after the
//!   first is a hit (proptest over randomized deck populations).

use ahfic_serve::{JobQueue, JobRequest, JobSpec, QueueConfig};
use ahfic_spice::analysis::{CancelToken, Options, Session, TranParams, TranStatus};
use ahfic_spice::cache::PreparedCache;
use ahfic_spice::circuit::Circuit;
use ahfic_spice::lint::LintPolicy;
use ahfic_spice::trace::{TraceHandle, TraceRecord, TraceSink};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bias-heavy nonlinear deck: a two-stage diode-loaded divider whose
/// operating point takes real Newton work, so bit-identity is a
/// meaningful claim.
fn nonlinear_deck(r_load: f64) -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let b = c.node("b");
    c.vsource("V1", a, Circuit::gnd(), 1.5);
    c.resistor("R1", a, b, r_load);
    let dm = c.add_diode_model(ahfic_spice::model::DiodeModel::default());
    c.diode("D1", b, Circuit::gnd(), dm, 1.0);
    c.resistor("R2", b, Circuit::gnd(), 10e3);
    c
}

fn rc_sin_deck() -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let out = c.node("out");
    c.vsource_wave(
        "V1",
        a,
        Circuit::gnd(),
        ahfic_spice::wave::SourceWave::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: 1e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.resistor("R1", a, out, 1e3);
    c.capacitor("C1", out, Circuit::gnd(), 1e-9);
    c
}

/// N threads sharing one cached deck must reproduce the sequential
/// result bit for bit, and the deck must compile exactly once.
#[test]
fn shared_cached_deck_is_bit_identical_across_threads() {
    const THREADS: usize = 8;
    let ckt = nonlinear_deck(1e3);
    let reference = Session::compile(&ckt).unwrap().op().unwrap();

    let cache = Arc::new(PreparedCache::new(8));
    let results: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let ckt = &ckt;
                s.spawn(move || {
                    let sess = Session::compile_cached(&cache, ckt, Options::new()).unwrap();
                    sess.op().unwrap().into_x()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, x) in results.iter().enumerate() {
        assert_eq!(x.len(), reference.x().len());
        for (k, (a, b)) in x.iter().zip(reference.x()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "thread {t} unknown {k}: {a} vs {b}"
            );
        }
    }
    assert_eq!(
        cache.stats().compiles(),
        1,
        "one compile serves all threads"
    );
}

/// Cancels the attached token as soon as the streamed step counter
/// reaches `at` accepted steps.
#[derive(Debug)]
struct CancelAtStep {
    token: CancelToken,
    at: f64,
    fired: AtomicBool,
}

impl TraceSink for CancelAtStep {
    fn record(&self, rec: TraceRecord) {
        if rec.name == "progress.tran.steps"
            && rec.value >= self.at
            && !self.fired.swap(true, Ordering::Relaxed)
        {
            self.token.cancel();
        }
    }
}

/// A cancel signal raised at step N stops the transient within one
/// further timestep, and the queue reports a typed partial rather than
/// an error.
#[test]
fn cancel_mid_transient_is_honored_within_one_timestep() {
    const CANCEL_AT: u64 = 25;
    let token = CancelToken::new();
    let sink = Arc::new(CancelAtStep {
        token: token.clone(),
        at: CANCEL_AT as f64,
        fired: AtomicBool::new(false),
    });
    let queue = JobQueue::new(QueueConfig::new().threads(1));
    let reports = queue.run(vec![JobRequest::new(
        rc_sin_deck(),
        JobSpec::Tran(TranParams::new(20e-6, 10e-9)),
    )
    .options(
        Options::new()
            .cancel_token(&token)
            .trace_handle(TraceHandle::new(&sink))
            .stream_every(1),
    )]);
    let t = reports[0]
        .outcome()
        .as_ref()
        .expect("cancellation is a status, not an error")
        .as_tran()
        .expect("transient output");
    match t.status() {
        TranStatus::Cancelled { t: t_cancel } => {
            assert!(*t_cancel < 20e-6, "cancelled well before t_stop");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert!(
        t.accepted_steps() >= CANCEL_AT && t.accepted_steps() <= CANCEL_AT + 1,
        "stopped within one timestep of the signal: {} steps",
        t.accepted_steps()
    );
}

/// A queue fed the same deck from many workers compiles it once and
/// matches the sequential answers.
#[test]
fn queue_fanout_matches_sequential() {
    let ckt = nonlinear_deck(2e3);
    let reference = Session::compile(&ckt).unwrap().op().unwrap();
    let queue = JobQueue::new(QueueConfig::new().threads(4));
    let jobs: Vec<JobRequest> = (0..32)
        .map(|i| JobRequest::new(ckt.clone(), JobSpec::Op).label(format!("fan {i}")))
        .collect();
    let reports = queue.run(jobs);
    assert_eq!(queue.cache_stats().compiles(), 1);
    for r in &reports {
        let op = r.outcome().as_ref().unwrap().as_op().unwrap();
        assert_eq!(op.x().len(), reference.x().len());
        // Warm-started jobs may converge along a different (shorter)
        // Newton path; the answers still agree to solver tolerance.
        for (a, b) in op.x().iter().zip(reference.x()) {
            assert!(
                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                "{a} vs {b} ({})",
                r.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache-eviction churn never double-compiles a hot deck: with the
    /// hot deck touched between cold-deck insertions, every hot
    /// checkout after the first is a hit, no matter how the cold
    /// population hashes or how small the cache is.
    #[test]
    fn hot_deck_survives_eviction_churn(
        cold_values in proptest::collection::vec(0.5f64..50.0, 8..24),
        capacity in 2usize..6,
    ) {
        let cache = PreparedCache::new(capacity);
        let hot = nonlinear_deck(1e3);
        let first = cache.get_or_compile(&hot, LintPolicy::Deny).unwrap();
        prop_assert!(!first.was_hit());
        for (i, &kohm) in cold_values.iter().enumerate() {
            // Distinct cold decks churn the LRU ring...
            let cold = nonlinear_deck(kohm * 1e3 + i as f64);
            cache.get_or_compile(&cold, LintPolicy::Deny).unwrap();
            // ...but the hot deck is touched every round, so it must
            // always still be resident.
            let again = cache.get_or_compile(&hot, LintPolicy::Deny).unwrap();
            prop_assert!(again.was_hit(), "hot deck evicted at round {i}");
        }
        let stats = cache.stats();
        prop_assert!(stats.entries() <= capacity);
        // Total compiles = hot once + one per distinct cold deck that
        // had to (re-)enter; the hot deck contributes exactly 1.
        prop_assert!(stats.compiles() >= cold_values.len() as u64);
        // Every hot re-checkout hits; no cold deck ever does.
        prop_assert_eq!(stats.hits(), cold_values.len() as u64);
    }
}
