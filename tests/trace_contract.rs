//! Contract tests for the `ahfic-trace` telemetry layer: span nesting,
//! counter emission, JSON-lines serialization, and the guarantee that
//! tracing never perturbs numerical results.
//!
//! The circuit under test is the transistor-level Hartley
//! image-rejection front end also used by the solver-agreement suite.

use ahfic_spice::analysis::{Options, Session, SolverChoice, TranParams};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::trace::{InMemorySink, JsonLinesSink, NullSink, RecordKind, TraceRecord};
use ahfic_spice::wave::SourceWave;
use ahfic_spice::BjtModel;
use std::sync::Arc;

/// Transistor-level Hartley image-rejection front end: quadrature BJT
/// transconductor paths into an RC/CR phase shifter and a resistive
/// summer.
fn image_rejection_frontend() -> Circuit {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    let vin = c.node("vin");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    c.vsource_wave(
        "VRF",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 10e-3,
            freq: 100e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VRF", 1.0, 0.0).unwrap();

    let mut m = BjtModel::named("rfnpn");
    m.bf = 90.0;
    m.rb = 120.0;
    m.re = 1.5;
    m.rc = 25.0;
    m.cje = 60e-15;
    m.cjc = 40e-15;
    m.tf = 12e-12;
    let mi = c.add_bjt_model(m);

    let path = |c: &mut Circuit, tag: &str| {
        let b = c.node(&format!("b{tag}"));
        let col = c.node(&format!("c{tag}"));
        let e = c.node(&format!("e{tag}"));
        c.resistor(&format!("RB1{tag}"), vcc, b, 47e3);
        c.resistor(&format!("RB2{tag}"), b, Circuit::gnd(), 10e3);
        c.capacitor(&format!("CIN{tag}"), vin, b, 10e-12);
        c.resistor(&format!("RC{tag}"), vcc, col, 1e3);
        c.resistor(&format!("RE{tag}"), e, Circuit::gnd(), 220.0);
        c.capacitor(&format!("CE{tag}"), e, Circuit::gnd(), 20e-12);
        c.bjt(&format!("Q{tag}"), col, b, e, mi, 1.0);
        col
    };
    let ci = path(&mut c, "i");
    let cq = path(&mut c, "q");

    let oi = c.node("oi");
    let oq = c.node("oq");
    let sum = c.node("sum");
    c.capacitor("CPI", ci, oi, 2e-12);
    c.resistor("RPI", oi, Circuit::gnd(), 800.0);
    c.resistor("RPQ", cq, oq, 800.0);
    c.capacitor("CPQ", oq, Circuit::gnd(), 2e-12);
    c.resistor("RSI", oi, sum, 2e3);
    c.resistor("RSQ", oq, sum, 2e3);
    c.resistor("RL", sum, Circuit::gnd(), 1e3);
    c
}

/// Every `SpanEnd` must close the most recent open `SpanStart` (LIFO),
/// and nothing may stay open at the end of the record stream.
fn assert_balanced(records: &[TraceRecord]) {
    let mut stack: Vec<&str> = Vec::new();
    for r in records {
        match r.kind {
            RecordKind::SpanStart => stack.push(&r.name),
            RecordKind::SpanEnd => {
                let top = stack.pop().expect("SpanEnd without an open span");
                assert_eq!(top, r.name, "spans must close LIFO");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "unclosed spans: {stack:?}");
}

fn counter(records: &[TraceRecord], name: &str) -> Option<f64> {
    records
        .iter()
        .filter(|r| r.kind == RecordKind::Counter && r.name == name)
        .map(|r| r.value)
        .next_back()
}

#[test]
fn op_tran_ac_spans_nest_and_counters_tick() {
    let ckt = image_rejection_frontend();
    let sink = Arc::new(InMemorySink::new());
    let sess = Session::compile(&ckt)
        .unwrap()
        .with_options(Options::new().solver(SolverChoice::Sparse).trace(&sink));

    let dc = sess.op().unwrap();
    sess.tran(&TranParams::new(5e-9, 0.2e-9)).unwrap();
    let freqs = ahfic_num::interp::logspace(1e6, 1e9, 12);
    sess.ac(&dc.x, &freqs).unwrap();

    let recs = sink.records();
    assert_balanced(&recs);

    // One top-level span per analysis, in call order.
    let tops: Vec<&str> = {
        let mut depth = 0usize;
        let mut names = Vec::new();
        for r in &recs {
            match r.kind {
                RecordKind::SpanStart => {
                    if depth == 0 {
                        names.push(r.name.as_str());
                    }
                    depth += 1;
                }
                RecordKind::SpanEnd => depth -= 1,
                _ => {}
            }
        }
        names
    };
    assert_eq!(tops, ["op", "tran", "ac"]);

    assert!(counter(&recs, "op.newton_iterations").unwrap() > 0.0);
    assert!(counter(&recs, "op.factorizations").unwrap() > 0.0);
    assert!(counter(&recs, "tran.accepted_steps").unwrap() > 0.0);
    assert!(counter(&recs, "tran.newton_iterations").unwrap() > 0.0);
    assert_eq!(counter(&recs, "ac.points").unwrap(), freqs.len() as f64);
    assert!(counter(&recs, "ac.threads").unwrap() >= 1.0);
    assert!(counter(&recs, "ac.factorizations").unwrap() >= freqs.len() as f64);

    // Timed solver work must have accumulated real wall time.
    assert!(counter(&recs, "op.factor_seconds").unwrap() > 0.0);
}

#[test]
fn json_lines_sink_round_trips_through_serde() {
    let ckt = image_rejection_frontend();
    let json_sink = Arc::new(JsonLinesSink::buffered());
    let mem_sink = Arc::new(InMemorySink::new());
    {
        let sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().trace(&json_sink));
        sess.op().unwrap();
    }
    {
        let sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().trace(&mem_sink));
        sess.op().unwrap();
    }

    let text = json_sink.contents();
    let parsed: Vec<TraceRecord> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every line is a TraceRecord"))
        .collect();
    assert!(!parsed.is_empty());
    assert_balanced(&parsed);

    // The (kind, name) sequence matches an equivalent in-memory run
    // (values are timings/iterations and may differ run to run).
    let mem = mem_sink.records();
    assert_eq!(parsed.len(), mem.len());
    for (a, b) in parsed.iter().zip(&mem) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.name, b.name);
    }

    // Full value-preserving round trip: parse(serialize(r)) == r.
    for r in &parsed {
        let line = serde_json::to_string(r).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(&back, r);
    }
}

#[test]
fn null_sink_results_are_bit_identical_to_untraced() {
    let ckt = image_rejection_frontend();
    let plain = Session::compile(&ckt)
        .unwrap()
        .with_options(Options::new().solver(SolverChoice::Sparse));
    let nulled = Session::compile(&ckt).unwrap().with_options(
        Options::new()
            .solver(SolverChoice::Sparse)
            .trace(&Arc::new(NullSink)),
    );

    let op_a = plain.op().unwrap();
    let op_b = nulled.op().unwrap();
    assert_eq!(op_a.x.len(), op_b.x.len());
    for (a, b) in op_a.x.iter().zip(&op_b.x) {
        assert_eq!(a.to_bits(), b.to_bits(), "op must be bit-identical");
    }

    let params = TranParams::new(5e-9, 0.2e-9);
    let w_a = plain.tran(&params).unwrap().into_wave();
    let w_b = nulled.tran(&params).unwrap().into_wave();
    assert_eq!(w_a.axis().len(), w_b.axis().len());
    for (a, b) in w_a.axis().iter().zip(w_b.axis()) {
        assert_eq!(a.to_bits(), b.to_bits(), "time axis must be bit-identical");
    }
    for name in ["v(sum)", "v(oi)", "v(oq)"] {
        let sa = w_a.signal(name).unwrap();
        let sb = w_b.signal(name).unwrap();
        for (k, (a, b)) in sa.iter().zip(sb).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}[{k}] must be bit-identical"
            );
        }
    }
}
