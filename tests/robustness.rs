//! Robustness suite: pathological netlists, hard-start circuits, and
//! deterministic fault injection.
//!
//! The contract under test: every input — however malformed, degenerate,
//! or numerically hostile — produces either a typed [`SpiceError`] or a
//! converged, finite solution. Never a panic, never a NaN in reported
//! results.

use ahfic_spice::analysis::{FaultInjector, FaultKind, LadderConfig, OpResult, Options, Session};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::error::SpiceError;
use ahfic_spice::lint::{LintCode, LintPolicy};
use ahfic_spice::model::{BjtModel, DiodeModel};
use ahfic_spice::parse::parse_netlist;
use ahfic_spice::trace::{InMemorySink, RecordKind, TraceRecord};
use proptest::prelude::*;
use std::sync::Arc;

// Thin shims over [`Session`] — the primary analysis entry point —
// preserving this suite's free-function call shape.
fn op(prep: &Prepared, opts: &Options) -> ahfic_spice::error::Result<OpResult> {
    Session::new(prep.clone()).with_options(opts.clone()).op()
}

fn counter(records: &[TraceRecord], name: &str) -> f64 {
    records
        .iter()
        .filter(|r| r.kind == RecordKind::Counter && r.name == name)
        .map(|r| r.value)
        .sum()
}

// ---------------------------------------------------------------------------
// Hard-start corpus: circuits the gmin/source-only ladder cannot solve.
// ---------------------------------------------------------------------------

/// Current-driven avalanche diode. The junction must walk from 0 V deep
/// into reverse breakdown; because the drive is a current source, gmin
/// loading does not shorten the walk and the very first source-stepping
/// scale already demands the full excursion — the legacy rungs all stall.
fn avalanche_current_drive() -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let dm = c.add_diode_model(DiodeModel {
        bv: 6.0,
        ..DiodeModel::default()
    });
    c.isource("I1", Circuit::gnd(), a, 1.0);
    c.diode("D1", Circuit::gnd(), a, dm, 1.0);
    c.resistor("RSH", a, Circuit::gnd(), 1e9);
    c
}

/// Three series zeners forced into breakdown by a current source: the
/// same hard start as [`avalanche_current_drive`] but with internal
/// nodes whose only DC path is the breakdown conduction itself.
fn zener_stack_current_drive() -> Circuit {
    let mut c = Circuit::new();
    let dm = c.add_diode_model(DiodeModel {
        bv: 6.0,
        ..DiodeModel::default()
    });
    let top = c.node("top");
    c.isource("I1", Circuit::gnd(), top, 0.5);
    c.resistor("RSH", top, Circuit::gnd(), 1e9);
    let mut prev = top;
    for k in 0..3 {
        let nxt = if k == 2 {
            Circuit::gnd()
        } else {
            c.node(&format!("m{k}"))
        };
        c.diode(&format!("DZ{k}"), nxt, prev, dm, 1.0);
        prev = nxt;
    }
    c
}

/// Tight Newton budget (reduced ITL1) under which the hard-start corpus
/// separates the ladders: each breakdown walk needs ~50 iterations in
/// one unbroken run, which no legacy rung can afford, while ptran pays
/// for it in many cheap anchored steps.
const TIGHT_BUDGET: usize = 25;

#[test]
fn hard_start_corpus_defeats_legacy_ladder() {
    for (name, ckt) in [
        ("avalanche", avalanche_current_drive()),
        ("zener_stack", zener_stack_current_drive()),
    ] {
        let prep = Prepared::compile(&ckt).unwrap();
        let legacy = op(
            &prep,
            &Options::new()
                .max_newton(TIGHT_BUDGET)
                .ladder(LadderConfig::legacy()),
        );
        match legacy {
            Err(SpiceError::NoConvergence {
                report: Some(report),
                ..
            }) => {
                // Every enabled legacy rung must have been tried and
                // reported, and the worst unknowns must carry names.
                assert!(
                    report.rungs.len() >= 3,
                    "{name}: expected >=3 rung reports, got {:?}",
                    report.rungs
                );
                assert!(
                    report.rungs.iter().all(|r| !r.converged),
                    "{name}: a rung claims convergence inside a failure"
                );
                assert!(
                    !report.worst.is_empty() && report.worst[0].name.starts_with("v("),
                    "{name}: worst unknowns missing or unnamed: {:?}",
                    report.worst
                );
            }
            other => panic!("{name}: legacy ladder should fail with a report, got {other:?}"),
        }
    }
}

#[test]
fn hard_start_corpus_recovers_via_ptran() {
    // Single avalanche diode: v(a) settles just past bv = 6 V.
    let ckt = avalanche_current_drive();
    let prep = Prepared::compile(&ckt).unwrap();
    let sink = Arc::new(InMemorySink::new());
    let opts = Options::new().max_newton(TIGHT_BUDGET).trace(&sink);
    let r = op(&prep, &opts).expect("full ladder must solve the avalanche start");
    let a = prep.voltage(&r.x, ckt.find_node("a").unwrap());
    assert!((6.0..8.0).contains(&a), "v(a) = {a}");
    let recs = sink.records();
    assert!(
        counter(&recs, "op.ptran_steps") > 0.0,
        "expected the pseudo-transient rung to do the work"
    );
    assert!(counter(&recs, "op.rungs_attempted") >= 4.0);

    // Three-zener stack: v(top) is three breakdown drops.
    let ckt = zener_stack_current_drive();
    let prep = Prepared::compile(&ckt).unwrap();
    let r = op(&prep, &Options::new().max_newton(TIGHT_BUDGET))
        .expect("full ladder must solve the zener stack");
    let top = prep.voltage(&r.x, ckt.find_node("top").unwrap());
    assert!((18.0..24.0).contains(&top), "v(top) = {top}");
}

#[test]
fn easy_circuit_converges_identically_on_both_ladders() {
    // The recovery machinery must cost nothing on a healthy circuit:
    // same solution, same iteration count, rung 1 only.
    let mut c = Circuit::new();
    let vin = c.node("in");
    let out = c.node("out");
    c.vsource("V1", vin, Circuit::gnd(), 10.0);
    c.resistor("R1", vin, out, 1e3);
    c.resistor("R2", out, Circuit::gnd(), 1e3);
    let prep = Prepared::compile(&c).unwrap();
    let full = op(&prep, &Options::default()).unwrap();
    let legacy = op(&prep, &Options::new().ladder(LadderConfig::legacy())).unwrap();
    assert_eq!(full.iterations, legacy.iterations);
    assert_eq!(full.x, legacy.x);
}

// ---------------------------------------------------------------------------
// Pathological netlist corpus: typed error or convergence, never a panic.
// ---------------------------------------------------------------------------

const PATHOLOGICAL_DECKS: &[(&str, &str)] = &[
    (
        "floating_node_via_cap",
        "* node f only reachable through a capacitor\n\
         V1 in 0 5\nR1 in out 1k\nR2 out 0 1k\nC1 out f 1p\n.end\n",
    ),
    (
        "zero_value_resistor",
        "V1 in 0 5\nR1 in out 0\nR2 out 0 1k\n.end\n",
    ),
    ("zero_value_inductor_loop", "V1 in 0 5\nL1 in 0 0\n.end\n"),
    (
        "inductor_across_source",
        "* DC short across an ideal source\nV1 in 0 5\nL1 in 0 1u\nR1 in 0 1k\n.end\n",
    ),
    (
        "parallel_conflicting_sources",
        "V1 a 0 5\nV2 a 0 3\nR1 a 0 1k\n.end\n",
    ),
    (
        "stacked_diode_hard_start",
        "* ten junctions across 8 V with a 1 mOhm tail\n\
         .model dj d is=1e-14\n\
         V1 a 0 8\n\
         D1 a n1 dj\nD2 n1 n2 dj\nD3 n2 n3 dj\nD4 n3 n4 dj\nD5 n4 n5 dj\n\
         D6 n5 n6 dj\nD7 n6 n7 dj\nD8 n7 n8 dj\nD9 n8 n9 dj\nD10 n9 n10 dj\n\
         RS n10 0 0.001\n.end\n",
    ),
    (
        "recursive_subckt",
        ".subckt loop a b\nR1 a b 1k\nXINNER a b loop\n.ends\n\
         V1 in 0 1\nXTOP in 0 loop\n.end\n",
    ),
    ("truncated_element_card", "V1 in 0 5\nR1 in\n.end\n"),
    ("garbage_value", "V1 in 0 bogus\nR1 in 0 1k\n.end\n"),
    (
        "unknown_model_type",
        ".model weird zzz is=1\nV1 in 0 1\nR1 in 0 1k\n.end\n",
    ),
    ("diode_without_model", "V1 in 0 1\nD1 in 0 nomodel\n.end\n"),
    (
        "current_source_into_open",
        "* nothing but gmin to absorb 1 mA\nI1 0 a 1m\n.end\n",
    ),
];

#[test]
fn pathological_decks_yield_typed_errors_or_finite_solutions() {
    for (name, deck) in PATHOLOGICAL_DECKS {
        let ckt = match parse_netlist(deck) {
            Ok(c) => c,
            Err(e) => {
                // Typed parse-layer rejection is a pass; the error must
                // render without panicking.
                let _ = format!("{name}: {e}");
                continue;
            }
        };
        let prep = match Prepared::compile(&ckt) {
            Ok(p) => p,
            Err(e) => {
                let _ = format!("{name}: {e}");
                continue;
            }
        };
        match op(&prep, &Options::default()) {
            Ok(r) => {
                assert!(
                    r.x.iter().all(|v| v.is_finite()),
                    "{name}: converged to a non-finite solution"
                );
            }
            Err(e) => {
                // Any typed error is acceptable; it must render.
                let _ = format!("{name}: {e}");
            }
        }
    }
}

#[test]
fn parse_errors_carry_line_numbers() {
    let deck = "V1 in 0 5\nR1 in\n.end\n";
    match parse_netlist(deck) {
        Err(SpiceError::Parse { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected a parse error with a line number, got {other:?}"),
    }
    let deck = "V1 in 0 5\nR1 in out 1k\nC3 out 0 abc\n.end\n";
    match parse_netlist(deck) {
        Err(SpiceError::Parse { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected a parse error with a line number, got {other:?}"),
    }
}

#[test]
fn recursive_subckt_is_rejected_not_overflowed() {
    let deck = ".subckt loop a b\nR1 a b 1k\nXINNER a b loop\n.ends\n\
                V1 in 0 1\nXTOP in 0 loop\n.end\n";
    match parse_netlist(deck) {
        Err(SpiceError::Parse { message, .. }) => {
            assert!(message.contains("nesting"), "unexpected message: {message}");
        }
        other => panic!("expected nesting-depth rejection, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Fault injection: deterministic exercise of every recovery path.
// ---------------------------------------------------------------------------

fn diode_divider() -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let out = c.node("out");
    c.vsource("V1", vin, Circuit::gnd(), 5.0);
    c.resistor("R1", vin, out, 1e3);
    let dm = c.add_diode_model(DiodeModel::default());
    c.diode("D1", out, Circuit::gnd(), dm, 1.0);
    c
}

#[test]
fn injected_singular_matrix_recovers_via_gmin_retry() {
    let ckt = diode_divider();
    let prep = Prepared::compile(&ckt).unwrap();
    let clean = op(&prep, &Options::default()).unwrap();

    let inj = FaultInjector::once(FaultKind::SingularMatrix, 0, 1);
    let r =
        op(&prep, &Options::new().fault_injector(&inj)).expect("singular-retry path must recover");
    assert_eq!(inj.fires(), 1, "the fault must actually have fired");
    let out = ckt.find_node("out").unwrap();
    assert!((prep.voltage(&r.x, out) - prep.voltage(&clean.x, out)).abs() < 1e-6);
}

#[test]
fn injected_nan_stamp_trips_guard_and_ladder_recovers() {
    let ckt = diode_divider();
    let prep = Prepared::compile(&ckt).unwrap();
    let sink = Arc::new(InMemorySink::new());
    let inj = FaultInjector::once(FaultKind::NanStamp, 0, 2);
    let r = op(&prep, &Options::new().fault_injector(&inj).trace(&sink))
        .expect("NaN guard must route the poisoned solve into the ladder");
    assert!(r.x.iter().all(|v| v.is_finite()));
    assert_eq!(inj.fires(), 1);
    let recs = sink.records();
    assert!(
        counter(&recs, "op.nonfinite_recoveries") >= 1.0,
        "the NaN guard should have recorded a recovery"
    );
    assert!(counter(&recs, "op.rungs_attempted") >= 2.0);
}

#[test]
fn injected_nonconvergence_escalates_the_ladder() {
    let ckt = diode_divider();
    let prep = Prepared::compile(&ckt).unwrap();
    let sink = Arc::new(InMemorySink::new());
    let inj = FaultInjector::once(FaultKind::NoConvergence, 0, 1);
    let r = op(&prep, &Options::new().fault_injector(&inj).trace(&sink))
        .expect("ladder must absorb a single failed rung");
    assert!(r.x.iter().all(|v| v.is_finite()));
    let recs = sink.records();
    assert!(counter(&recs, "op.rungs_attempted") >= 2.0);
}

#[test]
fn injected_failure_with_ladder_disabled_surfaces_typed_error() {
    let ckt = diode_divider();
    let prep = Prepared::compile(&ckt).unwrap();
    let no_ladder = LadderConfig {
        damping: false,
        gmin_stepping: false,
        source_stepping: false,
        ptran: false,
    };
    let inj = FaultInjector::once(FaultKind::NoConvergence, 0, 1);
    match op(
        &prep,
        &Options::new().ladder(no_ladder).fault_injector(&inj),
    ) {
        Err(SpiceError::NoConvergence { analysis, .. }) => assert_eq!(analysis, "op"),
        other => panic!("expected NoConvergence, got {other:?}"),
    }
}

#[test]
fn seeded_fault_injection_is_deterministic() {
    let ckt = diode_divider();
    let prep = Prepared::compile(&ckt).unwrap();
    let no_ladder = LadderConfig {
        damping: false,
        gmin_stepping: false,
        source_stepping: false,
        ptran: false,
    };
    let pattern = |seed: u64| -> Vec<bool> {
        let inj = FaultInjector::seeded(FaultKind::NoConvergence, seed, 0.4);
        let opts = Options::new().ladder(no_ladder).fault_injector(&inj);
        (0..24).map(|_| op(&prep, &opts).is_ok()).collect()
    };
    let a = pattern(0xA11CE);
    let b = pattern(0xA11CE);
    assert_eq!(a, b, "same seed must reproduce the same failure pattern");
    assert!(a.iter().any(|ok| *ok) && a.iter().any(|ok| !*ok));
    let c = pattern(0xB0B);
    assert_ne!(
        a, c,
        "different seeds should differ at rate 0.4 over 24 solves"
    );
}

#[test]
fn unset_injector_means_no_fault_bookkeeping() {
    // Options without an injector must behave exactly like the default.
    let ckt = diode_divider();
    let prep = Prepared::compile(&ckt).unwrap();
    let a = op(&prep, &Options::default()).unwrap();
    let b = op(&prep, &Options::new()).unwrap();
    assert_eq!(a.x, b.x);
    assert_eq!(a.iterations, b.iterations);
}

// ---------------------------------------------------------------------------
// Pre-flight lint corpus: each structural defect class produces its typed
// diagnostic at compile time, naming nodes and elements with deck line
// numbers — never an anonymous singular-matrix failure out of the LU.
// ---------------------------------------------------------------------------

/// Decks whose defect is an error under [`LintPolicy::Deny`]: compilation
/// must fail with [`SpiceError::LintFailed`] carrying the expected code.
const LINT_ERROR_DECKS: &[(&str, &str, LintCode, &str)] = &[
    (
        "vsource_loop",
        "V1 a 0 5\nV2 a 0 3\nR1 a 0 1k\n.end\n",
        LintCode::VsourceLoop,
        "V2 (line 2)",
    ),
    (
        "floating_island",
        "* f and g only reachable through C1\n\
         V1 in 0 5\nR1 in 0 1k\nC1 in f 1p\nR2 f g 1k\n.end\n",
        LintCode::FloatingNode,
        "R2 (line 5)",
    ),
    (
        "current_source_cutset",
        "* 1 mA forced into a node with no DC return\n\
         I1 0 a 1m\nC1 a 0 1p\n.end\n",
        LintCode::CurrentCutset,
        "I1 (line 2)",
    ),
    (
        "no_ground_anywhere",
        "V1 a b 5\nR1 a b 1k\n.end\n",
        LintCode::NoGround,
        "",
    ),
];

/// Decks whose defect is a warning: compilation succeeds under the default
/// policy and the diagnostic rides on the compiled circuit.
const LINT_WARNING_DECKS: &[(&str, &str, LintCode, &str)] = &[
    (
        "inductor_loop",
        "* DC short across an ideal source\n\
         V1 in 0 5\nL1 in 0 1u\nR1 in 0 1k\n.end\n",
        LintCode::InductorLoop,
        "L1 (line 3)",
    ),
    (
        "dangling_pin",
        "* node d touched by one terminal only\n\
         V1 in 0 5\nR1 in 0 1k\nR2 in d 1k\n.end\n",
        LintCode::DanglingPin,
        "R2 (line 4)",
    ),
];

#[test]
fn lint_error_decks_fail_compile_with_named_diagnostics() {
    for (name, deck, code, element) in LINT_ERROR_DECKS {
        let ckt = parse_netlist(deck).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        match Prepared::compile(&ckt) {
            Err(SpiceError::LintFailed(report)) => {
                let diag = report
                    .diagnostics
                    .iter()
                    .find(|d| d.code == *code)
                    .unwrap_or_else(|| panic!("{name}: no {code:?} in {report:?}"));
                assert!(
                    !diag.nodes.is_empty(),
                    "{name}: diagnostic names no nodes: {diag:?}"
                );
                if !element.is_empty() {
                    assert!(
                        diag.elements.iter().any(|e| e == element),
                        "{name}: expected element {element:?} in {:?}",
                        diag.elements
                    );
                }
                // The rendered report must carry the kebab code.
                let rendered = ahfic_spice::analysis::lint_report(&report);
                assert!(rendered.contains(code.as_str()), "{name}: {rendered}");
            }
            other => panic!("{name}: expected LintFailed, got {other:?}"),
        }
    }
}

#[test]
fn lint_warning_decks_compile_and_carry_diagnostics() {
    for (name, deck, code, element) in LINT_WARNING_DECKS {
        let ckt = parse_netlist(deck).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let prep = Prepared::compile(&ckt)
            .unwrap_or_else(|e| panic!("{name}: warning-only deck failed compile: {e}"));
        let diag = prep
            .lint_warnings
            .iter()
            .find(|d| d.code == *code)
            .unwrap_or_else(|| panic!("{name}: no {code:?} in {:?}", prep.lint_warnings));
        assert!(
            diag.elements.iter().any(|e| e == element),
            "{name}: expected element {element:?} in {:?}",
            diag.elements
        );
        // Warning decks must still solve (they are degenerate, not singular).
        let r = op(&prep, &Options::default());
        assert!(r.is_ok(), "{name}: {r:?}");
    }
}

#[test]
fn lint_policy_warn_lets_pathological_decks_reach_the_solver() {
    // Under `Warn` the same error decks compile; the solver then either
    // converges or fails with a typed error — never a panic.
    for (name, deck, _, _) in LINT_ERROR_DECKS {
        let ckt = parse_netlist(deck).unwrap();
        let prep = Prepared::compile_with(&ckt, LintPolicy::Warn)
            .unwrap_or_else(|e| panic!("{name}: Warn policy must not fail compile: {e}"));
        assert!(
            !prep.lint_warnings.is_empty(),
            "{name}: Warn policy must still carry the findings"
        );
        match op(&prep, &Options::default()) {
            Ok(r) => assert!(r.x.iter().all(|v| v.is_finite()), "{name}"),
            Err(e) => {
                let _ = format!("{name}: {e}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property: random RLC+BJT circuits never report NaN.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized RLC ladders with a BJT never produce a non-finite
    /// value in a solution the solver claims converged.
    #[test]
    fn random_rlc_bjt_op_is_finite_or_typed_error(
        rs in proptest::collection::vec(1.0f64..1e6, 5),
        cs in proptest::collection::vec(1e-15f64..1e-6, 3),
        ls in proptest::collection::vec(1e-12f64..1e-3, 2),
        vcc in 0.5f64..30.0,
        bf in 5.0f64..500.0,
        link_a in proptest::collection::vec(0usize..5, 4),
        link_b in proptest::collection::vec(0usize..5, 4),
    ) {
        let mut c = Circuit::new();
        let nodes: Vec<_> = (0..5).map(|k| c.node(&format!("n{k}"))).collect();
        c.vsource("VCC", nodes[0], Circuit::gnd(), vcc);
        // Backbone: a resistive path touching every node so nothing is
        // trivially disconnected.
        for k in 0..4 {
            c.resistor(&format!("RB{k}"), nodes[k], nodes[k + 1], rs[k]);
        }
        c.resistor("RT", nodes[4], Circuit::gnd(), rs[4]);
        // Random reactive / resistive links (self-loops skipped).
        for (j, (a, b)) in link_a.iter().zip(&link_b).enumerate() {
            if a == b {
                continue;
            }
            match j % 3 {
                0 => { c.capacitor(&format!("CL{j}"), nodes[*a], nodes[*b], cs[j % 3]); }
                1 => { c.inductor(&format!("LL{j}"), nodes[*a], nodes[*b], ls[j % 2]); }
                _ => { c.resistor(&format!("RL{j}"), nodes[*a], nodes[*b], rs[j % 5]); }
            }
        }
        let mut m = BjtModel::named("q");
        m.bf = bf;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", nodes[1], nodes[2], nodes[3], mi, 1.0);

        let prep = match Prepared::compile(&c) {
            Ok(p) => p,
            Err(_) => return Ok(()), // typed rejection is fine
        };
        match op(&prep, &Options::default()) {
            Ok(r) => {
                prop_assert!(
                    r.x.iter().all(|v| v.is_finite()),
                    "non-finite entry in a converged solution"
                );
            }
            Err(e) => {
                // Typed failure is acceptable; it must render.
                let _ = format!("{e}");
            }
        }
    }

    /// The pre-flight pass is sound: a random linear deck that survives
    /// lint under the default `Deny` policy never dies in the LU with a
    /// `Singular` error. Positive-only part values mean no numerical
    /// cancellation, so structural nonsingularity (what the matching
    /// backstop certifies) is the whole story.
    #[test]
    fn lint_clean_linear_decks_never_hit_singular_lu(
        kinds in proptest::collection::vec(0u8..5, 1..12),
        a_idx in proptest::collection::vec(0usize..5, 12),
        b_idx in proptest::collection::vec(0usize..5, 12),
        vals in proptest::collection::vec(0.1f64..1e3, 12),
    ) {
        let mut c = Circuit::new();
        let mut nodes = vec![Circuit::gnd()];
        nodes.extend((1..5).map(|k| c.node(&format!("n{k}"))));
        for (j, &k) in kinds.iter().enumerate() {
            let (a, b) = (nodes[a_idx[j]], nodes[b_idx[j]]);
            if a == b {
                continue;
            }
            match k {
                0 => { c.resistor(&format!("R{j}"), a, b, vals[j] * 1e3); }
                1 => { c.capacitor(&format!("C{j}"), a, b, vals[j] * 1e-12); }
                2 => { c.inductor(&format!("L{j}"), a, b, vals[j] * 1e-9); }
                3 => { c.vsource(&format!("V{j}"), a, b, vals[j]); }
                _ => { c.isource(&format!("I{j}"), a, b, vals[j] * 1e-3); }
            }
        }
        match Prepared::compile(&c) {
            Ok(prep) => match op(&prep, &Options::default()) {
                Ok(r) => {
                    prop_assert!(r.x.iter().all(|v| v.is_finite()));
                }
                Err(SpiceError::Singular { unknown }) => {
                    prop_assert!(
                        false,
                        "lint-clean deck still hit a singular LU near {unknown}"
                    );
                }
                Err(e) => {
                    // Other typed failures (e.g. non-convergence) are
                    // outside the lint contract; they must render.
                    let _ = format!("{e}");
                }
            },
            Err(e) => {
                // Lint rejection (or any typed compile error) is a pass.
                let _ = format!("{e}");
            }
        }
    }
}
