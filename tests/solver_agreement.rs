//! Sparse/dense solver agreement: property tests on MNA-like random
//! systems, and end-to-end transient/AC runs of a transistor-level
//! image-rejection front end (the circuit family behind paper Fig. 5)
//! with the sparse solver forced on vs off.

use ahfic_num::sparse::{SparseLu, TripletBuilder};
use ahfic_num::{lu::LuFactors, Matrix};
use ahfic_spice::analysis::{OpResult, Options, Session, SolverChoice, TranParams, TranResult};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::wave::SourceWave;
use ahfic_spice::BjtModel;
use proptest::prelude::*;

// Thin shims over [`Session`] — the primary analysis entry point —
// preserving this suite's free-function call shape.
fn op(prep: &Prepared, opts: &Options) -> ahfic_spice::error::Result<OpResult> {
    Session::new(prep.clone()).with_options(opts.clone()).op()
}
fn ac_sweep(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    freqs: &[f64],
) -> ahfic_spice::error::Result<ahfic_spice::wave::AcWaveform> {
    Session::new(prep.clone())
        .with_options(opts.clone())
        .ac(x_op, freqs)
}
fn tran(
    prep: &Prepared,
    opts: &Options,
    params: &TranParams,
) -> ahfic_spice::error::Result<ahfic_spice::wave::Waveform> {
    Session::new(prep.clone())
        .with_options(opts.clone())
        .tran(params)
        .map(TranResult::into_wave)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse LU (factor and numeric refactor) agrees with the dense
    /// solver to 1e-10 on random diagonally-augmented MNA-like matrices:
    /// a conductance ladder plus random two-node couplings, stamped
    /// symmetrically the way the assembler does.
    #[test]
    fn sparse_lu_matches_dense_on_mna_like_systems(
        gvals in proptest::collection::vec(0.05f64..2.0, 48),
        picks in proptest::collection::vec(0usize..24, 48),
        rhs in proptest::collection::vec(-5.0f64..5.0, 24),
    ) {
        let n = 24;
        let mut entries: Vec<(usize, usize, f64)> = Vec::new();
        let stamp = |e: &mut Vec<(usize, usize, f64)>, a: usize, b: usize, g: f64| {
            e.push((a, a, g));
            e.push((b, b, g));
            e.push((a, b, -g));
            e.push((b, a, -g));
        };
        for (k, &g) in gvals.iter().enumerate().take(n - 1) {
            stamp(&mut entries, k, k + 1, g);
        }
        for (j, pair) in picks.chunks(2).enumerate() {
            if pair[0] != pair[1] {
                stamp(&mut entries, pair[0], pair[1], gvals[n - 1 + j]);
            }
        }
        // Diagonal augmentation: every node gets a gmin-style path so the
        // system is nonsingular even if the couplings leave an island.
        for k in 0..n {
            entries.push((k, k, 1e-3));
        }

        let mut tb = TripletBuilder::new(n);
        for &(r, c, _) in &entries {
            tb.add(r, c);
        }
        let (mut csc, slots) = tb.compile::<f64>();
        let mut dense = Matrix::<f64>::zeros(n, n);
        for (k, &(r, c, v)) in entries.iter().enumerate() {
            csc.values_mut()[slots[k]] += v;
            dense.add_at(r, c, v);
        }

        let mut sparse = SparseLu::factor(&csc).unwrap();
        let dense_lu = LuFactors::factor(dense.clone()).unwrap();
        let mut xs = rhs.clone();
        sparse.solve_in_place(&mut xs);
        let xd = dense_lu.solve(&rhs);
        for k in 0..n {
            let tol = 1e-10 * xd[k].abs().max(1.0);
            prop_assert!((xs[k] - xd[k]).abs() < tol, "x[{k}]: {} vs {}", xs[k], xd[k]);
        }

        // New values, frozen pattern: the numeric refactor must agree too.
        csc.clear_values();
        dense.clear();
        for (k, &(r, c, v)) in entries.iter().enumerate() {
            let v2 = if r == c { 2.0 * v } else { 0.5 * v };
            csc.values_mut()[slots[k]] += v2;
            dense.add_at(r, c, v2);
        }
        sparse.refactor(&csc).unwrap();
        let dense_lu = LuFactors::factor(dense).unwrap();
        let mut xs = rhs.clone();
        sparse.solve_in_place(&mut xs);
        let xd = dense_lu.solve(&rhs);
        for k in 0..n {
            let tol = 1e-10 * xd[k].abs().max(1.0);
            prop_assert!((xs[k] - xd[k]).abs() < tol, "refactor x[{k}]: {} vs {}", xs[k], xd[k]);
        }
    }
}

/// Randomized RLC + BJT amplifier chain for replay agreement tests:
/// `muls` perturbs every passive around its nominal value, `stages`
/// sets the chain depth. Stages get collector LC tanks; with two or
/// more stages the first two tank inductors are mutually coupled.
fn replay_test_circuit(muls: &[f64], stages: usize) -> Prepared {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    let vin = c.node("vin");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 5e-3,
            freq: 200e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VIN", 1.0, 0.0).unwrap();
    let mut m = BjtModel::named("rnpn");
    m.bf = 80.0;
    m.rb = 90.0;
    m.re = 1.2;
    m.rc = 18.0;
    m.cje = 50e-15;
    m.cjc = 30e-15;
    m.tf = 10e-12;
    let mi = c.add_bjt_model(m);
    let dm = c.add_diode_model(ahfic_spice::DiodeModel::default());

    let mut drive = vin;
    for i in 0..stages {
        let f = &muls[8 * i..8 * i + 8];
        let b = c.node(&format!("b{i}"));
        let col = c.node(&format!("c{i}"));
        let e = c.node(&format!("e{i}"));
        let tank = c.node(&format!("t{i}"));
        c.resistor(&format!("RB1_{i}"), vcc, b, 47e3 * f[0]);
        c.resistor(&format!("RB2_{i}"), b, Circuit::gnd(), 10e3 * f[1]);
        c.capacitor(&format!("CIN{i}"), drive, b, 10e-12 * f[2]);
        c.resistor(&format!("RC{i}"), vcc, col, 1e3 * f[3]);
        c.resistor(&format!("RE{i}"), e, Circuit::gnd(), 220.0 * f[4]);
        c.capacitor(&format!("CE{i}"), e, Circuit::gnd(), 20e-12 * f[5]);
        c.bjt(&format!("Q{i}"), col, b, e, mi, 1.0);
        // Collector LC tank plus a normally-reverse-biased clamp diode.
        c.inductor(&format!("LT{i}"), col, tank, 50e-9 * f[6]);
        c.capacitor(&format!("CT{i}"), tank, Circuit::gnd(), 5e-12 * f[7]);
        c.resistor(&format!("RT{i}"), tank, Circuit::gnd(), 5e3);
        c.diode(&format!("DC{i}"), col, vcc, dm, 1.0);
        drive = col;
    }
    if stages >= 2 {
        c.mutual("K1", "LT0", "LT1", 0.2);
    }
    Prepared::compile(&c).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The linear-replay Newton path must be bit-identical to the full
    /// re-stamp path: same stamp order, same baseline values, so every
    /// op/AC/transient result matches to the last ULP.
    #[test]
    fn linear_replay_is_bit_identical_to_full_restamp(
        muls in proptest::collection::vec(0.5f64..2.0, 24),
        stages in 1u32..4,
    ) {
        let prep = replay_test_circuit(&muls, stages as usize);
        let on = Options::new().linear_replay(true);
        let off = Options::new().linear_replay(false);

        let r_on = op(&prep, &on).unwrap();
        let r_off = op(&prep, &off).unwrap();
        prop_assert_eq!(r_on.iterations, r_off.iterations);
        for (a, b) in r_on.x.iter().zip(&r_off.x) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }

        let freqs = [1e6, 100e6, 1e9];
        let w_on = ac_sweep(&prep, &r_on.x, &on, &freqs).unwrap();
        let w_off = ac_sweep(&prep, &r_off.x, &off, &freqs).unwrap();
        for name in &prep.unknown_names {
            let son = w_on.signal(name).unwrap();
            let soff = w_off.signal(name).unwrap();
            for (a, b) in son.iter().zip(soff) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }

        let params = TranParams::new(10e-9, 0.1e-9);
        let t_on = tran(&prep, &on, &params).unwrap();
        let t_off = tran(&prep, &off, &params).unwrap();
        prop_assert_eq!(t_on.axis().len(), t_off.axis().len());
        for (a, b) in t_on.axis().iter().zip(t_off.axis()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for name in &prep.unknown_names {
            let son = t_on.signal(name).unwrap();
            let soff = t_off.signal(name).unwrap();
            for (a, b) in son.iter().zip(soff) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// Transistor-level Hartley image-rejection front end: quadrature BJT
/// transconductor paths into an RC/CR phase shifter and a resistive
/// summer — the SPICE-level counterpart of the Fig. 5 tuner.
fn image_rejection_frontend() -> Prepared {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    let vin = c.node("vin");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    c.vsource_wave(
        "VRF",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 10e-3,
            freq: 100e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VRF", 1.0, 0.0).unwrap();

    // Parasitic resistances give each BJT internal nodes, growing the
    // system well past the dense/sparse auto threshold.
    let mut m = BjtModel::named("rfnpn");
    m.bf = 90.0;
    m.rb = 120.0;
    m.re = 1.5;
    m.rc = 25.0;
    m.cje = 60e-15;
    m.cjc = 40e-15;
    m.tf = 12e-12;
    let mi = c.add_bjt_model(m);

    let path = |c: &mut Circuit, tag: &str| {
        let b = c.node(&format!("b{tag}"));
        let col = c.node(&format!("c{tag}"));
        let e = c.node(&format!("e{tag}"));
        c.resistor(&format!("RB1{tag}"), vcc, b, 47e3);
        c.resistor(&format!("RB2{tag}"), b, Circuit::gnd(), 10e3);
        c.capacitor(&format!("CIN{tag}"), vin, b, 10e-12);
        c.resistor(&format!("RC{tag}"), vcc, col, 1e3);
        c.resistor(&format!("RE{tag}"), e, Circuit::gnd(), 220.0);
        c.capacitor(&format!("CE{tag}"), e, Circuit::gnd(), 20e-12);
        c.bjt(&format!("Q{tag}"), col, b, e, mi, 1.0);
        col
    };
    let ci = path(&mut c, "i");
    let cq = path(&mut c, "q");

    // 90-degree split at the second IF: CR highpass on I, RC lowpass on Q,
    // then sum into the load.
    let oi = c.node("oi");
    let oq = c.node("oq");
    let sum = c.node("sum");
    c.capacitor("CPI", ci, oi, 2e-12);
    c.resistor("RPI", oi, Circuit::gnd(), 800.0);
    c.resistor("RPQ", cq, oq, 800.0);
    c.capacitor("CPQ", oq, Circuit::gnd(), 2e-12);
    c.resistor("RSI", oi, sum, 2e3);
    c.resistor("RSQ", oq, sum, 2e3);
    c.resistor("RL", sum, Circuit::gnd(), 1e3);
    Prepared::compile(&c).unwrap()
}

fn opts_with(solver: SolverChoice) -> Options {
    Options::new().solver(solver)
}

#[test]
fn image_rejection_tran_identical_sparse_vs_dense() {
    let prep = image_rejection_frontend();
    assert!(
        prep.num_unknowns >= 16,
        "front end should exceed the auto-sparse threshold, n = {}",
        prep.num_unknowns
    );
    let params = TranParams::new(50e-9, 0.2e-9);
    let wd = tran(&prep, &opts_with(SolverChoice::Dense), &params).unwrap();
    let ws = tran(&prep, &opts_with(SolverChoice::Sparse), &params).unwrap();
    assert_eq!(wd.axis().len(), ws.axis().len(), "step sequences diverged");
    for (td, ts) in wd.axis().iter().zip(ws.axis()) {
        assert!((td - ts).abs() <= 1e-18, "{td} vs {ts}");
    }
    for name in ["v(sum)", "v(ci)", "v(cq)", "v(oi)", "v(oq)"] {
        let sd = wd.signal(name).unwrap();
        let ss = ws.signal(name).unwrap();
        for (k, (a, b)) in sd.iter().zip(ss).enumerate() {
            let tol = 1e-6 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "{name}[{k}]: {a} vs {b}");
        }
    }
}

#[test]
fn image_rejection_ac_identical_sparse_vs_dense() {
    let prep = image_rejection_frontend();
    let od = op(&prep, &opts_with(SolverChoice::Dense)).unwrap();
    let os = op(&prep, &opts_with(SolverChoice::Sparse)).unwrap();
    for (a, b) in od.x.iter().zip(&os.x) {
        assert!((a - b).abs() <= 1e-8 * a.abs().max(1.0), "op: {a} vs {b}");
    }
    let freqs = ahfic_num::interp::logspace(1e6, 1e9, 25);
    let wd = ac_sweep(&prep, &od.x, &opts_with(SolverChoice::Dense), &freqs).unwrap();
    let ws = ac_sweep(&prep, &od.x, &opts_with(SolverChoice::Sparse), &freqs).unwrap();
    for name in ["v(sum)", "v(oi)", "v(oq)"] {
        let md = wd.magnitude(name).unwrap();
        let ms = ws.magnitude(name).unwrap();
        let pd = wd.phase_deg(name).unwrap();
        let ps = ws.phase_deg(name).unwrap();
        for k in 0..freqs.len() {
            assert!(
                (md[k] - ms[k]).abs() <= 1e-8 * md[k].abs().max(1e-12),
                "{name} mag[{k}]: {} vs {}",
                md[k],
                ms[k]
            );
            assert!((pd[k] - ps[k]).abs() <= 1e-6, "{name} phase[{k}]");
        }
    }
    // The phase shifter must actually quadrature-split near its corner
    // (~100 MHz, index 16 on the 1e6..1e9 log grid), so the netlist
    // exercises the paper's architecture. Loading by the summing network
    // pulls the split off the ideal 90 degrees, hence the loose bound.
    let f_mid = 16;
    let dphi = (wd.phase_deg("v(oi)").unwrap()[f_mid] - wd.phase_deg("v(oq)").unwrap()[f_mid])
        .rem_euclid(360.0);
    assert!(
        (dphi - 90.0).abs() < 45.0,
        "I/Q split should be near quadrature, got {dphi}"
    );
}
