//! Cross-engine integration tests: the behavioral (AHDL) and
//! transistor-level (SPICE) simulators must agree wherever they model the
//! same physics.

use ahfic_ahdl::block::Block;
use ahfic_ahdl::blocks::filter::FirstOrderLp;
use ahfic_ahdl::blocks::phase::PhaseShifter90;
use ahfic_spice::analysis::{OpResult, Options, Session, TranParams, TranResult};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::wave::SourceWave;

// Thin shims over [`Session`] — the primary analysis entry point —
// preserving this suite's free-function call shape.
fn op(prep: &Prepared, opts: &Options) -> ahfic_spice::error::Result<OpResult> {
    Session::new(prep.clone()).with_options(opts.clone()).op()
}
fn ac_sweep(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    freqs: &[f64],
) -> ahfic_spice::error::Result<ahfic_spice::wave::AcWaveform> {
    Session::new(prep.clone())
        .with_options(opts.clone())
        .ac(x_op, freqs)
}
fn tran(
    prep: &Prepared,
    opts: &Options,
    params: &TranParams,
) -> ahfic_spice::error::Result<ahfic_spice::wave::Waveform> {
    Session::new(prep.clone())
        .with_options(opts.clone())
        .tran(params)
        .map(TranResult::into_wave)
}

/// An RC low-pass simulated at transistor level (tran) and behaviorally
/// (first-order LP block) must produce the same step response.
#[test]
fn rc_step_response_matches_between_engines() {
    let (r, c) = (1e3, 1e-9); // tau = 1 us, fc = 159 kHz
    let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);

    // SPICE transient.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.vsource_wave(
        "V1",
        a,
        Circuit::gnd(),
        SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-12,
            fall: 1e-12,
            width: 1.0,
            period: 0.0,
        },
    );
    ckt.resistor("R1", a, out, r);
    ckt.capacitor("C1", out, Circuit::gnd(), c);
    let prep = Prepared::compile(&ckt).unwrap();
    let wave = tran(&prep, &Options::default(), &TranParams::new(4e-6, 2e-9)).unwrap();
    let spice_v = wave.signal("v(out)").unwrap();
    let spice_t = wave.axis();

    // Behavioral step response at a fixed rate.
    let fs = 500e6;
    let mut lp = FirstOrderLp::new(fc, fs);
    let dt = 1.0 / fs;
    let mut beh = vec![];
    let mut o = [0.0];
    for k in 0..((4e-6 * fs) as usize) {
        lp.tick(k as f64 * dt, dt, &[1.0], &mut o);
        beh.push(o[0]);
    }

    // Compare at a handful of times.
    for &t in &[0.5e-6, 1e-6, 2e-6, 3.5e-6] {
        let ks = spice_t.iter().position(|&tt| tt >= t).unwrap();
        let kb = (t * fs) as usize;
        assert!(
            (spice_v[ks] - beh[kb]).abs() < 0.02,
            "t={t:.1e}: spice {} vs behavioral {}",
            spice_v[ks],
            beh[kb]
        );
    }
}

/// The behavioral 90° all-pass and the component-level RC-CR network must
/// report the same quadrature relation at the design frequency.
#[test]
fn phase_shifter_agrees_with_rc_cr_network() {
    let f0 = 45e6;
    let fs = 8e9;
    let ps = PhaseShifter90::new(f0, fs);
    let behavioral_phase = ps.phase_at(f0, fs).to_degrees();

    // SPICE AC of the RC-CR network, matched arms.
    let c = 1e-12;
    let r = 1.0 / (2.0 * std::f64::consts::PI * f0 * c);
    let mut ckt = Circuit::new();
    let input = ckt.node("in");
    let lp = ckt.node("lp");
    let hp = ckt.node("hp");
    ckt.vsource("VIN", input, Circuit::gnd(), 0.0);
    ckt.set_ac("VIN", 1.0, 0.0).unwrap();
    ckt.resistor("R1", input, lp, r);
    ckt.capacitor("C1", lp, Circuit::gnd(), c);
    ckt.capacitor("C2", input, hp, c);
    ckt.resistor("R2", hp, Circuit::gnd(), r);
    let prep = Prepared::compile(&ckt).unwrap();
    let opts = Options::default();
    let dc = op(&prep, &opts).unwrap();
    let acw = ac_sweep(&prep, &dc.x, &opts, &[f0]).unwrap();
    let vlp = acw.signal("v(lp)").unwrap()[0];
    let vhp = acw.signal("v(hp)").unwrap()[0];
    let spice_quad = (vlp.arg() - vhp.arg()).to_degrees();

    assert!(
        (behavioral_phase - (-90.0)).abs() < 1e-6,
        "behavioral shifter: {behavioral_phase}"
    );
    assert!(
        (spice_quad - (-90.0)).abs() < 1e-6,
        "RC-CR quadrature: {spice_quad}"
    );
    // Equal magnitudes at f0 (both arms at -3 dB).
    assert!((vlp.abs() - vhp.abs()).abs() < 1e-9);
}

/// An AHDL gain module and a SPICE VCVS of the same gain must agree on a
/// resistive divider's output.
#[test]
fn ahdl_gain_matches_spice_vcvs() {
    let gain = 3.7;

    // SPICE: E source driving a load.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.vsource("V1", a, Circuit::gnd(), 0.4);
    ckt.vcvs("E1", b, Circuit::gnd(), a, Circuit::gnd(), gain);
    ckt.resistor("RL", b, Circuit::gnd(), 1e3);
    let prep = Prepared::compile(&ckt).unwrap();
    let dc = op(&prep, &Options::default()).unwrap();
    let spice_out = prep.voltage(&dc.x, b);

    // AHDL.
    let m = ahfic_ahdl::eval::CompiledModule::compile(
        "module amp(in, out) { input in; output out;
         parameter real g = 1.0;
         analog { V(out) <- g * V(in); } }",
    )
    .unwrap();
    let mut inst = m.instantiate(&[("g", gain)]).unwrap();
    let mut o = [0.0];
    inst.tick(0.0, 1e-9, &[0.4], &mut o);

    assert!((spice_out - o[0]).abs() < 1e-9, "{spice_out} vs {}", o[0]);
}
