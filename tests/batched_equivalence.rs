//! Batched-variant-engine equivalence suite.
//!
//! The contract under test: `Options::batch` is purely a performance
//! knob. For any deck and any batch width, the batched engines produce
//! the same per-sample outcomes as the sequential path — bit for bit at
//! a single lane on the sparse backend, to far below the Newton
//! tolerance at wider batches — including decks where samples fail to
//! converge or are lint-rejected before reaching the solver.

use ahfic::yield_mc::YieldStudy;
use ahfic_num::interp::linspace;
use ahfic_spice::analysis::{BatchMode, BatchedOpEngine, OpResult, Options, Session, SolverChoice};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::model::{BjtModel, DiodeModel};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

// Thin shims over [`Session`] — the primary analysis entry point —
// preserving this suite's free-function call shape.
fn op(prep: &Prepared, opts: &Options) -> ahfic_spice::error::Result<OpResult> {
    Session::new(prep.clone()).with_options(opts.clone()).op()
}
fn dc_sweep(
    prep: &mut Prepared,
    opts: &Options,
    source: &str,
    values: &[f64],
) -> ahfic_spice::error::Result<ahfic_spice::wave::Waveform> {
    let mut sess = Session::new(prep.clone()).with_options(opts.clone());
    sess.dc(source, values)
}

/// Batch widths exercised everywhere: the degenerate single lane, a
/// small odd width, a width that does not divide typical counts, and
/// one wider than the sample count.
const WIDTHS: [usize; 4] = [1, 2, 7, 64];

/// Randomized RLC ladder with one BJT, the same family as the
/// robustness suite's generator: a resistive backbone keeps every node
/// connected, random reactive links add structure, and the BJT makes
/// the Newton iteration nontrivial.
fn rlc_bjt_deck(
    rs: &[f64],
    cs: &[f64],
    ls: &[f64],
    vcc: f64,
    bf: f64,
    links: &[(usize, usize)],
) -> Circuit {
    let mut c = Circuit::new();
    let nodes: Vec<_> = (0..5).map(|k| c.node(&format!("n{k}"))).collect();
    c.vsource("VCC", nodes[0], Circuit::gnd(), vcc);
    for k in 0..4 {
        c.resistor(&format!("RB{k}"), nodes[k], nodes[k + 1], rs[k]);
    }
    c.resistor("RT", nodes[4], Circuit::gnd(), rs[4]);
    for (j, &(a, b)) in links.iter().enumerate() {
        if a == b {
            continue;
        }
        match j % 3 {
            0 => {
                c.capacitor(&format!("CL{j}"), nodes[a], nodes[b], cs[j % 3]);
            }
            1 => {
                c.inductor(&format!("LL{j}"), nodes[a], nodes[b], ls[j % 2]);
            }
            _ => {
                c.resistor(&format!("RL{j}"), nodes[a], nodes[b], rs[j % 5]);
            }
        }
    }
    let mut m = BjtModel::named("q");
    m.bf = bf;
    let mi = c.add_bjt_model(m);
    c.bjt("Q1", nodes[1], nodes[2], nodes[3], mi, 1.0);
    c
}

/// Compares one sample outcome between the sequential and batched
/// paths: Ok vs Ok within `rel`, Err vs Err with the same rendering.
fn assert_outcomes_agree(
    seq: &Result<Vec<f64>, String>,
    bat: &Result<Vec<f64>, String>,
    rel: f64,
    ctx: &str,
) -> Result<(), TestCaseError> {
    match (seq, bat) {
        (Ok(s), Ok(b)) => {
            prop_assert!(s.len() == b.len(), "{ctx}: length mismatch");
            for (k, (sv, bv)) in s.iter().zip(b).enumerate() {
                if rel == 0.0 {
                    prop_assert!(sv == bv, "{ctx} unknown {k}: {sv} vs {bv}");
                } else {
                    prop_assert!(
                        (sv - bv).abs() <= rel * sv.abs().max(1e-9),
                        "{ctx} unknown {k}: {sv} vs {bv}"
                    );
                }
            }
        }
        (Err(se), Err(be)) => {
            prop_assert!(se == be, "{ctx}: {se} vs {be}");
        }
        (s, b) => {
            return Err(TestCaseError::fail(format!(
                "{ctx}: sequential {} vs batched {}",
                if s.is_ok() { "Ok" } else { "Err" },
                if b.is_ok() { "Ok" } else { "Err" },
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched operating points equal sequential operating points on
    /// random RLC+BJT decks, per sample, at every batch width — with
    /// the single-lane sparse configuration bit-identical. Samples
    /// whose Newton fails in either path must fail identically in both.
    #[test]
    fn batched_op_matches_sequential(
        rs in proptest::collection::vec(1.0f64..1e6, 5),
        cs in proptest::collection::vec(1e-15f64..1e-6, 3),
        ls in proptest::collection::vec(1e-12f64..1e-3, 2),
        vcc in 0.5f64..30.0,
        bf in 5.0f64..500.0,
        link_a in proptest::collection::vec(0usize..5, 4),
        link_b in proptest::collection::vec(0usize..5, 4),
        deltas in proptest::collection::vec(-0.4f64..0.4, 9),
    ) {
        let links: Vec<_> = link_a.into_iter().zip(link_b).collect();
        let c = rlc_bjt_deck(&rs, &cs, &ls, vcc, bf, &links);
        let mut prep = match Prepared::compile(&c) {
            Ok(p) => p,
            Err(_) => return Ok(()), // typed rejection is fine
        };
        let opts = Options::new().solver(SolverChoice::Sparse);
        let rt = rs[4];
        // Sequential reference: tune then solve, one sample at a time.
        let seq: Vec<Result<Vec<f64>, String>> = deltas
            .iter()
            .map(|d| {
                prep.circuit.set_resistance("RT", rt * (1.0 + d)).map_err(|e| e.to_string())?;
                op(&prep, &opts).map(|r| r.x).map_err(|e| e.to_string())
            })
            .collect();
        for lanes in WIDTHS {
            let mut engine = BatchedOpEngine::new(lanes);
            let bat: Vec<Result<Vec<f64>, String>> = engine
                .run(&mut prep, &opts, deltas.len(), |p, i| {
                    p.circuit.set_resistance("RT", rt * (1.0 + deltas[i]))
                })
                .into_iter()
                .map(|r| r.map(|r| r.x).map_err(|e| e.to_string()))
                .collect();
            let rel = if lanes == 1 { 0.0 } else { 1e-9 };
            for (i, (s, b)) in seq.iter().zip(&bat).enumerate() {
                assert_outcomes_agree(s, b, rel, &format!("lanes={lanes} sample={i}"))?;
            }
        }
    }

    /// Batched DC sweeps reproduce sequential DC sweeps on random diode
    /// dividers: the warm-start chain survives batching.
    #[test]
    fn batched_dc_sweep_matches_sequential(
        r_top in 10.0f64..1e5,
        r_shunt in 10.0f64..1e5,
        n in 0.8f64..2.0,
        v_stop in 0.6f64..5.0,
        points in 3usize..17,
    ) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        c.resistor("R1", a, b, r_top);
        c.resistor("R2", b, Circuit::gnd(), r_shunt);
        let dm = c.add_diode_model(DiodeModel { n, ..DiodeModel::default() });
        c.diode("D1", b, Circuit::gnd(), dm, 1.0);
        let mut prep = Prepared::compile(&c).unwrap();
        let vs = linspace(0.0, v_stop, points);
        let opts = Options::new().solver(SolverChoice::Sparse);
        let seq = dc_sweep(&mut prep, &opts, "V1", &vs).unwrap();
        for lanes in WIDTHS {
            let bopts = opts.clone().batch(BatchMode::Lanes(lanes));
            let bat = dc_sweep(&mut prep, &bopts, "V1", &vs).unwrap();
            for sig in ["v(a)", "v(b)", "i(V1)"] {
                let s = seq.signal(sig).unwrap();
                let bsig = bat.signal(sig).unwrap();
                for k in 0..vs.len() {
                    if lanes == 1 {
                        // A single lane replays the sequential
                        // warm-start chain exactly.
                        prop_assert!(s[k] == bsig[k], "{sig} lanes=1 point {k}");
                    } else {
                        // Wider batches warm-start each chunk from the
                        // previous chunk's last point rather than the
                        // immediately preceding one, so the converged
                        // values agree to the Newton tolerance, not
                        // bitwise.
                        prop_assert!(
                            (s[k] - bsig[k]).abs()
                                <= 3.0 * (opts.reltol * s[k].abs() + opts.vntol),
                            "{sig} lanes={lanes} point {k}: {} vs {}",
                            s[k],
                            bsig[k]
                        );
                    }
                }
            }
        }
    }

    /// Batched yield studies track the sequential study sample for
    /// sample, including lint-rejected defect samples, across batch
    /// widths and process spreads.
    #[test]
    fn batched_yield_matches_sequential(
        sigma in 0.02f64..0.2,
        seed in 1u64..5000,
        defect_on in 0u8..2,
    ) {
        let study = YieldStudy {
            samples: 12,
            seed,
            sigma_mismatch: sigma,
            open_defect_prob: if defect_on == 1 { 0.3 } else { 0.0 },
            ..YieldStudy::paper_example(sigma)
        };
        let seq = study.run().unwrap();
        for lanes in [1usize, 2, 7] {
            let bat = study
                .run_with_options(Options::new().batch(BatchMode::Lanes(lanes)))
                .unwrap();
            prop_assert!(seq.irr_db.len() == bat.irr_db.len(), "lanes={lanes}");
            let seq_failed: Vec<usize> = seq.failures.iter().map(|f| f.index).collect();
            let bat_failed: Vec<usize> = bat.failures.iter().map(|f| f.index).collect();
            prop_assert!(seq_failed == bat_failed, "lanes={lanes}");
            for (s, b) in seq.irr_db.iter().zip(&bat.irr_db) {
                // IRR in dB is extremely sensitive near perfect balance
                // (the argument of the log approaches zero), so compare
                // with a relative guard on the dB value.
                prop_assert!(
                    (s - b).abs() <= 1e-5 * s.abs().max(1.0),
                    "lanes={lanes}: {s} vs {b}"
                );
            }
        }
    }
}
