//! Shooting-Newton periodic steady state pinned against brute-force
//! transient ring-down, plus property tests pinning the GMRES+ILU(0)
//! solver tier to sparse LU on randomized RLC + BJT decks.
//!
//! The PSS engine finds the periodic orbit directly; the reference is
//! the same circuit integrated long enough for every natural time
//! constant to die out. The two must land on the same waveform —
//! sample-for-sample for the stiff rectifier (1 mV), fundamental
//! amplitude for the weakly-damped coupled tank (0.1 dB).

use ahfic_num::{Complex, GmresOptions};
use ahfic_spice::analysis::{Options, PssParams, Session, SolverChoice, TranParams};
use ahfic_spice::circuit::{Circuit, Prepared};
use ahfic_spice::wave::{SourceWave, Waveform};
use ahfic_spice::{BjtModel, DiodeModel};
use proptest::prelude::*;

/// Linear interpolation of an (irregularly sampled) transient signal.
fn sample_at(ts: &[f64], ys: &[f64], t: f64) -> f64 {
    let i = ts.partition_point(|&x| x < t).clamp(1, ts.len() - 1);
    let (t0, t1) = (ts[i - 1], ts[i]);
    let frac = if t1 > t0 {
        ((t - t0) / (t1 - t0)).clamp(0.0, 1.0)
    } else {
        0.0
    };
    ys[i - 1] + frac * (ys[i] - ys[i - 1])
}

/// Fundamental phasor magnitude of `signal` over `[t_start, t_end]` by
/// trapezoidal Fourier projection at `freq` (the window must hold an
/// integer number of cycles for this to be leakage-free).
fn fundamental_amplitude(
    wave: &Waveform,
    signal: &str,
    freq: f64,
    t_start: f64,
    t_end: f64,
) -> f64 {
    let ts = wave.axis();
    let ys = wave.signal(signal).expect("signal exists");
    let w = 2.0 * std::f64::consts::PI * freq;
    let f = |t: f64| {
        let y = sample_at(ts, ys, t);
        Complex::new(y * (w * t).cos(), -y * (w * t).sin())
    };
    // Integrate on the union of the window edges and the samples inside.
    let mut acc = Complex::new(0.0, 0.0);
    let mut prev_t = t_start;
    let mut prev_f = f(t_start);
    for &t in ts.iter().filter(|&&t| t > t_start && t < t_end) {
        let cur = f(t);
        acc += (prev_f + cur).scale(0.5 * (t - prev_t));
        prev_t = t;
        prev_f = cur;
    }
    let end = f(t_end);
    acc += (prev_f + end).scale(0.5 * (t_end - prev_t));
    acc.scale(2.0 / (t_end - t_start)).abs()
}

/// Half-wave rectifier whose ring-down time constant (RL·CL = 2 µs)
/// spans many drive periods.
fn rectifier() -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let out = c.node("out");
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 2.0,
            freq: 1e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    let dm = c.add_diode_model(DiodeModel::default());
    c.diode("D1", vin, out, dm, 1.0);
    c.capacitor("CL", out, Circuit::gnd(), 2e-9);
    c.resistor("RL", out, Circuit::gnd(), 1e3);
    c
}

#[test]
fn rectifier_pss_matches_ringdown_transient_to_a_millivolt() {
    let period = 1e-6;
    let sess = Session::compile(&rectifier()).expect("rectifier compiles");
    let pss = sess
        .pss(&PssParams::new(period, 256))
        .expect("rectifier pss");
    assert!(pss.is_converged(), "{:?}", pss.status());

    // 40 µs = 20 ring-down time constants: the transient's last period
    // is periodic to far below the comparison tolerance.
    let t_stop = 40e-6;
    let tran = sess
        .tran(&TranParams::new(t_stop, 2e-9))
        .expect("rectifier transient")
        .into_wave();

    let ts = tran.axis();
    let vt = tran.signal("v(out)").expect("transient v(out)");
    let grid = pss.wave().axis();
    let vp = pss.wave().signal("v(out)").expect("pss v(out)");
    let mut worst = 0.0f64;
    for (k, &t) in grid.iter().enumerate() {
        let reference = sample_at(ts, vt, t_stop - period + t);
        worst = worst.max((vp[k] - reference).abs());
    }
    assert!(worst < 1e-3, "PSS vs ring-down worst error {worst:.2e} V");
}

/// Two capacitively-coupled 1 MHz LC tanks (Q ≈ 20 each), driven
/// through a source resistor — the weakly-damped oscillatory deck where
/// shooting-Newton earns its keep: the ring-down reference needs tens
/// of periods to settle, the shooting iteration a handful of orbits.
fn coupled_tank() -> Circuit {
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let t1 = c.node("t1");
    let t2 = c.node("t2");
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: 1e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.resistor("RS", vin, t1, 10e3);
    // f0 = 1/(2*pi*sqrt(LC)) = 1 MHz; Rp/(w0*L) sets Q = 20.
    let l = 25.33e-6;
    let cap = 1e-9;
    c.inductor("L1", t1, Circuit::gnd(), l);
    c.capacitor("C1", t1, Circuit::gnd(), cap);
    c.resistor("RP1", t1, Circuit::gnd(), 3.2e3);
    c.capacitor("CC", t1, t2, 50e-12);
    c.inductor("L2", t2, Circuit::gnd(), l);
    c.capacitor("C2", t2, Circuit::gnd(), cap);
    c.resistor("RP2", t2, Circuit::gnd(), 3.2e3);
    c
}

#[test]
fn coupled_tank_pss_amplitude_matches_ringdown_within_tenth_db() {
    let period = 1e-6;
    let freq = 1e6;
    let sess = Session::compile(&coupled_tank()).expect("tank compiles");
    let pss = sess
        .pss(&PssParams::new(period, 512).warmup_periods(0))
        .expect("tank pss");
    assert!(pss.is_converged(), "{:?}", pss.status());

    // Tank ring-down tau = 2Q/w0 ~ 6.4 us; 60 us ~ 9 tau leaves the
    // startup transient ~40 dB below the 0.1 dB comparison floor.
    let t_stop = 60e-6;
    let tran = sess
        .tran(&TranParams::new(t_stop, 2e-9))
        .expect("tank transient")
        .into_wave();

    for node in ["v(t1)", "v(t2)"] {
        let a_pss = fundamental_amplitude(pss.wave(), node, freq, 0.0, period);
        let a_ring = fundamental_amplitude(&tran, node, freq, t_stop - 4.0 * period, t_stop);
        let delta_db = 20.0 * (a_pss / a_ring).log10();
        assert!(
            delta_db.abs() < 0.1,
            "{node}: PSS {a_pss:.6} V vs ring-down {a_ring:.6} V ({delta_db:+.4} dB)"
        );
    }
}

/// Randomized RLC + BJT amplifier chain (same family as the solver
/// agreement suite): `muls` perturbs every passive around nominal.
fn rlc_bjt_chain(muls: &[f64], stages: usize) -> Prepared {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    let vin = c.node("vin");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    c.vsource("VIN", vin, Circuit::gnd(), 0.0);
    let mut m = BjtModel::named("rnpn");
    m.bf = 80.0;
    m.rb = 90.0;
    m.re = 1.2;
    m.rc = 18.0;
    m.cje = 50e-15;
    m.cjc = 30e-15;
    m.tf = 10e-12;
    let mi = c.add_bjt_model(m);
    let mut drive = vin;
    for i in 0..stages {
        let f = &muls[8 * i..8 * i + 8];
        let b = c.node(&format!("b{i}"));
        let col = c.node(&format!("c{i}"));
        let e = c.node(&format!("e{i}"));
        let tank = c.node(&format!("t{i}"));
        c.resistor(&format!("RB1_{i}"), vcc, b, 47e3 * f[0]);
        c.resistor(&format!("RB2_{i}"), b, Circuit::gnd(), 10e3 * f[1]);
        c.capacitor(&format!("CIN{i}"), drive, b, 10e-12 * f[2]);
        c.resistor(&format!("RC{i}"), vcc, col, 1e3 * f[3]);
        c.resistor(&format!("RE{i}"), e, Circuit::gnd(), 220.0 * f[4]);
        c.capacitor(&format!("CE{i}"), e, Circuit::gnd(), 20e-12 * f[5]);
        c.bjt(&format!("Q{i}"), col, b, e, mi, 1.0);
        c.inductor(&format!("LT{i}"), col, tank, 50e-9 * f[6]);
        c.capacitor(&format!("CT{i}"), tank, Circuit::gnd(), 5e-12 * f[7]);
        c.resistor(&format!("RT{i}"), tank, Circuit::gnd(), 5e3);
        drive = col;
    }
    Prepared::compile(&c).expect("random deck compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The GMRES+ILU(0) tier must reproduce the sparse-LU operating
    /// point on randomized RLC + BJT decks: same Newton path (the inner
    /// solves are converged far below Newton's own tolerance), same
    /// answer.
    #[test]
    fn gmres_matches_sparse_lu_on_random_rlc_bjt_decks(
        muls in proptest::collection::vec(0.5f64..2.0, 24),
        stages in 1u32..4,
    ) {
        let prep = rlc_bjt_chain(&muls, stages as usize);
        let r_sparse = Session::new(prep.clone())
            .with_options(Options::new().solver(SolverChoice::Sparse))
            .op()
            .unwrap();
        let r_gmres = Session::new(prep)
            .with_options(Options::new().solver(SolverChoice::Gmres(GmresOptions::default())))
            .op()
            .unwrap();
        for (k, (a, b)) in r_sparse.x().iter().zip(r_gmres.x()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-6 * (1.0 + a.abs()),
                "unknown {k}: sparse {a} vs gmres {b}"
            );
        }
    }
}
