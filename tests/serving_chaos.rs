//! Serving-layer chaos suite.
//!
//! Every fault the serving layer claims to tolerate is injected here
//! deterministically, and the contract under test is always the same:
//! **each injected fault surfaces as exactly one typed report, and the
//! queue keeps draining** — in submission order, with nothing lost,
//! doubled, or silently dropped.
//!
//! Fault classes covered:
//!
//! - a device-model panic ([`FaultKind::Panic`]) caught at the
//!   supervision boundary (and, as the regression half, shown to kill
//!   the batch when supervision is turned off — the behaviour the old
//!   "never panics" doc claim glossed over);
//! - a wedged solve ([`FaultKind::Stall`]) tripping a wall-clock
//!   [`Budget::max_wall`] deadline;
//! - persistent singular factorizations failing a job with a typed
//!   error, and a one-shot singular fault rescued by a verbatim retry;
//! - a poisoned cached warm-start hint (NaN operating point) healed by
//!   the retry path clearing the hint;
//! - overload shed by a bounded queue;
//! - cancellation racing retry scheduling and racing
//!   `shutdown_and_drain` (seeded stress).
//!
//! Plus the GMRES regression: an iteration-starved Krylov solve on an
//! ILU(0)-hostile 10 GHz AC point must fall back to the direct solver
//! and match it, not return garbage.

use ahfic_num::GmresOptions;
use ahfic_serve::{
    Budget, CancelToken, JobError, JobQueue, JobRequest, JobSpec, QueueConfig, RetryPolicy,
    TranStatus,
};
use ahfic_spice::analysis::{
    FaultInjector, FaultKind, LadderConfig, Options, Session, SolverChoice, TranParams,
};
use ahfic_spice::circuit::Circuit;
use ahfic_spice::error::SpiceError;
use ahfic_spice::lint::LintPolicy;
use ahfic_spice::model::BjtModel;
use ahfic_spice::trace::{InMemorySink, TraceHandle};
use ahfic_spice::wave::SourceWave;
use std::sync::Arc;
use std::time::Duration;

fn divider(r2: f64) -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let b = c.node("b");
    c.vsource("V1", a, Circuit::gnd(), 2.0);
    c.resistor("R1", a, b, 1e3);
    c.resistor("R2", b, Circuit::gnd(), r2);
    c
}

fn rc_sin_deck() -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    let out = c.node("out");
    c.vsource_wave(
        "V1",
        a,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: 1e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.resistor("R1", a, out, 1e3);
    c.capacitor("C1", out, Circuit::gnd(), 1e-9);
    c
}

/// A diode-loaded divider: nonlinear, so a poisoned (NaN) warm start
/// genuinely poisons the device stamps instead of being healed by one
/// linear direct solve, yet plain Newton converges from a cold start.
fn diode_deck() -> Circuit {
    let mut c = Circuit::new();
    let a = c.node("a");
    c.vsource("V1", a, Circuit::gnd(), 0.75);
    let dm = c.add_diode_model(ahfic_spice::model::DiodeModel::default());
    c.diode("D1", a, Circuit::gnd(), dm, 1.0);
    c.resistor("R1", a, Circuit::gnd(), 10e3);
    c
}

fn no_ladder() -> LadderConfig {
    LadderConfig {
        damping: false,
        gmin_stepping: false,
        source_stepping: false,
        ptran: false,
    }
}

fn counter_total(sink: &InMemorySink, name: &str) -> f64 {
    sink.records()
        .iter()
        .filter(|r| r.name == name)
        .map(|r| r.value)
        .sum()
}

// ---------------------------------------------------------------------------
// Panic supervision — the "never panics" regression pair.

/// Without supervision, an injected device-model panic unwinds straight
/// through the worker pool and kills the whole batch — the failure mode
/// the old documentation claimed could not happen. This is the
/// regression half: if supervision ever silently stops covering the
/// job body, this test starts failing alongside the supervised one.
#[test]
fn unsupervised_device_model_panic_kills_the_batch() {
    let queue = JobQueue::new(QueueConfig::new().threads(2).supervise(false));
    let inj = FaultInjector::once(FaultKind::Panic, 0, 1);
    let mut jobs: Vec<JobRequest> = (0..4)
        .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
        .collect();
    jobs[1] = JobRequest::new(divider(1e3), JobSpec::Op)
        .label("boom")
        .options(Options::new().fault_injector(&inj));
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| queue.run(jobs)));
    assert!(
        crashed.is_err(),
        "without supervision the panic must propagate out of the pool"
    );
}

/// With supervision (the default), the same panic becomes exactly one
/// typed `WorkerPanic` report; every other job in the batch completes,
/// order is preserved, and the recovery is counted.
#[test]
fn supervised_device_model_panic_is_one_typed_report() {
    let sink = Arc::new(InMemorySink::new());
    let queue = JobQueue::new(QueueConfig::new().threads(2).trace(TraceHandle::new(&sink)));
    let inj = FaultInjector::once(FaultKind::Panic, 0, 1);
    let mut jobs: Vec<JobRequest> = (0..8)
        .map(|i| JobRequest::new(divider(1e3), JobSpec::Op).label(format!("j{i}")))
        .collect();
    jobs[5] = JobRequest::new(divider(1e3), JobSpec::Op)
        .label("boom")
        .options(Options::new().fault_injector(&inj));
    let reports = queue.run(jobs);
    assert_eq!(reports.len(), 8, "queue drains past the panic");
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.index(), i, "submission order preserved");
        if i == 5 {
            match r.outcome().as_ref().unwrap_err() {
                JobError::WorkerPanic { payload, job_id } => {
                    assert_eq!(*job_id, 5);
                    assert!(payload.contains("injected fault"), "{payload}");
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        } else {
            assert!(r.is_ok(), "job {i} must survive the neighbour's panic");
        }
    }
    assert_eq!(inj.fires(), 1);
    assert_eq!(queue.stats().panics_recovered, 1);
    assert_eq!(counter_total(&sink, "serve.panic_recovered"), 1.0);
}

/// A panicking job poisons nothing it shares: after the worker recycles
/// its parked sessions, the same worker solves the same deck again and
/// matches a clean queue bit for bit.
#[test]
fn worker_recycles_after_panic_and_later_jobs_match_clean_run() {
    let clean = JobQueue::new(QueueConfig::new().threads(1))
        .run(vec![JobRequest::new(divider(1e3), JobSpec::Op)]);
    let reference = clean[0]
        .outcome()
        .as_ref()
        .unwrap()
        .as_op()
        .unwrap()
        .x()
        .to_vec();

    let queue = JobQueue::new(QueueConfig::new().threads(1));
    let inj = FaultInjector::once(FaultKind::Panic, 0, 1);
    let reports = queue.run(vec![
        JobRequest::new(divider(1e3), JobSpec::Op)
            .label("boom")
            .options(Options::new().fault_injector(&inj)),
        JobRequest::new(divider(1e3), JobSpec::Op).label("after"),
    ]);
    assert!(reports[0].outcome().as_ref().unwrap_err().is_panic());
    let after = reports[1].outcome().as_ref().unwrap().as_op().unwrap();
    for (a, b) in after.x().iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits(), "post-panic solve must be clean");
    }
}

// ---------------------------------------------------------------------------
// Stall → wall-clock deadline.

/// A wedged operating-point solve (injected stall each iteration) trips
/// the wall-clock budget and surfaces as one typed `BudgetExhausted`
/// failure on the `wall_clock_ms` resource.
#[test]
fn stalled_op_trips_wall_deadline_as_typed_failure() {
    let sink = Arc::new(InMemorySink::new());
    let queue = JobQueue::new(QueueConfig::new().threads(1).trace(TraceHandle::new(&sink)));
    let inj = FaultInjector::recurring(FaultKind::Stall { millis: 20 }, 0, 1);
    let reports =
        queue.run(vec![JobRequest::new(divider(1e3), JobSpec::Op)
            .label("wedged")
            .options(Options::new().fault_injector(&inj).budget(
                Budget::unlimited().max_wall(Duration::from_millis(1)),
            ))]);
    match reports[0].outcome().as_ref().unwrap_err().error().unwrap() {
        SpiceError::BudgetExhausted { resource, .. } => assert_eq!(*resource, "wall_clock_ms"),
        other => panic!("expected wall-clock BudgetExhausted, got {other:?}"),
    }
    assert_eq!(queue.stats().deadline_exceeded, 1);
    assert_eq!(counter_total(&sink, "serve.deadline_exceeded"), 1.0);
}

/// A wedged transient degrades to a typed *partial* result — status
/// `BudgetExhausted` on `wall_clock_ms` with whatever waveform was
/// integrated before the deadline — and still counts as a deadline
/// trip.
#[test]
fn stalled_tran_degrades_to_typed_partial_at_deadline() {
    let queue = JobQueue::new(QueueConfig::new().threads(1));
    let inj = FaultInjector::recurring(FaultKind::Stall { millis: 20 }, 0, 1);
    let reports = queue.run(vec![JobRequest::new(
        rc_sin_deck(),
        JobSpec::Tran(TranParams::new(2e-6, 10e-9).with_uic()),
    )
    .options(
        Options::new()
            .fault_injector(&inj)
            .budget(Budget::unlimited().max_wall(Duration::from_millis(1))),
    )]);
    let t = reports[0]
        .outcome()
        .as_ref()
        .expect("deadline on a transient is a status, not an error")
        .as_tran()
        .unwrap();
    match t.status() {
        TranStatus::BudgetExhausted { resource, t, .. } => {
            assert_eq!(*resource, "wall_clock_ms");
            assert!(*t < 2e-6, "stopped well before t_stop");
        }
        other => panic!("expected BudgetExhausted partial, got {other:?}"),
    }
    assert_eq!(queue.stats().deadline_exceeded, 1);
}

// ---------------------------------------------------------------------------
// Retry-with-escalation.

/// A one-shot singular fault (poisoning both the plain solve and its
/// built-in gmin rescue) fails the first attempt; the verbatim retry —
/// no escalation for injected faults — runs clean and rescues the job,
/// with the full history in the report.
#[test]
fn one_shot_singular_fault_is_rescued_by_verbatim_retry() {
    let sink = Arc::new(InMemorySink::new());
    let queue = JobQueue::new(
        QueueConfig::new()
            .threads(1)
            .retry(RetryPolicy::attempts(2))
            .trace(TraceHandle::new(&sink)),
    );
    // Two fires cover attempt 1's plain Newton solve *and* the gmin
    // rescue pass the ladder tries on a singular factorization, so the
    // whole first attempt genuinely fails; the retry's solves are
    // clean.
    let inj = FaultInjector::recurring(FaultKind::SingularMatrix, 0, 1).with_max_fires(2);
    let reports = queue.run(vec![JobRequest::new(divider(1e3), JobSpec::Op)
        .label("flaky-singular")
        .options(Options::new().fault_injector(&inj).ladder(no_ladder()))]);
    assert!(reports[0].is_ok(), "{:?}", reports[0].outcome());
    let attempts = reports[0].attempts();
    assert_eq!(attempts.len(), 2, "{attempts:?}");
    assert!(attempts[0].outcome.contains("singular"), "{attempts:?}");
    assert!(
        !attempts[1].escalated,
        "singular faults are retried verbatim, not escalated"
    );
    assert_eq!(attempts[1].outcome, "ok");
    assert_eq!(queue.stats().retries, 1);
    assert_eq!(counter_total(&sink, "serve.retries"), 1.0);
}

/// A *persistent* singular fault exhausts the retry budget and fails
/// with the typed `Singular` error — one report, attempt history for
/// every try.
#[test]
fn persistent_singular_fault_fails_typed_after_retries() {
    let queue = JobQueue::new(
        QueueConfig::new()
            .threads(1)
            .retry(RetryPolicy::attempts(3)),
    );
    let inj = FaultInjector::recurring(FaultKind::SingularMatrix, 0, 1);
    let reports = queue.run(vec![JobRequest::new(divider(1e3), JobSpec::Op)
        .label("hard-singular")
        .options(Options::new().fault_injector(&inj).ladder(no_ladder()))]);
    let failure = reports[0].outcome().as_ref().unwrap_err();
    assert!(
        matches!(failure.error().unwrap(), SpiceError::Singular { .. }),
        "{failure:?}"
    );
    assert_eq!(reports[0].attempts().len(), 3, "one record per attempt");
    assert_eq!(queue.stats().retries, 2);
    assert_eq!(queue.stats().failed, 1);
}

/// A poisoned cached warm-start hint (all-NaN operating point) fails
/// the first attempt; the retry path clears the hint before re-running,
/// so the second attempt cold-starts and succeeds — with escalation
/// disabled and the ladder off, hint clearing is the *only* thing that
/// can rescue this job.
#[test]
fn poisoned_warm_hint_is_cleared_by_retry() {
    let queue = JobQueue::new(
        QueueConfig::new()
            .threads(1)
            .retry(RetryPolicy::attempts(2).escalate(false)),
    );
    let ckt = diode_deck();
    let deck = queue
        .cache()
        .get_or_compile(&ckt, LintPolicy::Deny)
        .unwrap();
    let n = deck.prepared_arc().num_unknowns;
    deck.store_op_hint(&vec![f64::NAN; n]);
    let reports = queue.run(vec![JobRequest::new(ckt, JobSpec::Op)
        .label("poisoned-hint")
        .options(Options::new().ladder(no_ladder()))]);
    assert!(
        reports[0].is_ok(),
        "retry must heal the poisoned hint: {:?}",
        reports[0].outcome()
    );
    let attempts = reports[0].attempts();
    assert_eq!(attempts.len(), 2, "{attempts:?}");
    assert!(!attempts[1].escalated, "escalation was off");
    assert_eq!(attempts[1].outcome, "ok");
    assert_eq!(queue.stats().retries, 1);
}

/// Injected non-convergence with the ladder off fails the first
/// attempt; the escalated retry restores the full continuation ladder
/// and succeeds.
#[test]
fn nonconvergence_escalates_onto_the_full_ladder() {
    let queue = JobQueue::new(
        QueueConfig::new()
            .threads(1)
            .retry(RetryPolicy::attempts(2)),
    );
    // Two fires: attempt 1's plain solve (ladder off → whole attempt
    // fails) and the escalated attempt 2's plain rung. Escalation is
    // load-bearing: only because the retry restored the full ladder
    // does a later rung rescue attempt 2 after its plain rung eats the
    // second fire.
    let inj = FaultInjector::recurring(FaultKind::NoConvergence, 0, 1).with_max_fires(2);
    let reports = queue.run(vec![JobRequest::new(divider(1e3), JobSpec::Op)
        .label("escalate-me")
        .options(Options::new().fault_injector(&inj).ladder(no_ladder()))]);
    assert!(reports[0].is_ok(), "{:?}", reports[0].outcome());
    assert_eq!(inj.fires(), 2, "both fires consumed");
    let attempts = reports[0].attempts();
    assert_eq!(attempts.len(), 2, "{attempts:?}");
    assert!(attempts[1].escalated, "retry ran escalated");
    assert_eq!(attempts[1].outcome, "ok");
}

// ---------------------------------------------------------------------------
// Every fault class in one bounded queue: exactly one typed report per
// job, drained in submission order.

#[test]
fn every_fault_class_surfaces_as_exactly_one_typed_report() {
    let sink = Arc::new(InMemorySink::new());
    let queue = JobQueue::new(
        QueueConfig::new()
            .threads(2)
            .capacity(5)
            .trace(TraceHandle::new(&sink)),
    );
    let panic_inj = FaultInjector::once(FaultKind::Panic, 0, 1);
    let stall_inj = FaultInjector::recurring(FaultKind::Stall { millis: 20 }, 0, 1);
    let singular_inj = FaultInjector::recurring(FaultKind::SingularMatrix, 0, 1);
    let jobs = vec![
        JobRequest::new(divider(1e3), JobSpec::Op).label("clean"),
        JobRequest::new(divider(1e3), JobSpec::Op)
            .label("panic")
            .options(Options::new().fault_injector(&panic_inj)),
        JobRequest::new(divider(1e3), JobSpec::Op)
            .label("deadline")
            .options(
                Options::new()
                    .fault_injector(&stall_inj)
                    .budget(Budget::unlimited().max_wall(Duration::from_millis(1))),
            ),
        JobRequest::new(divider(1e3), JobSpec::Op)
            .label("singular")
            .options(
                Options::new()
                    .fault_injector(&singular_inj)
                    .ladder(no_ladder()),
            ),
        JobRequest::new(divider(2e3), JobSpec::Op).label("clean-2"),
        JobRequest::new(divider(3e3), JobSpec::Op).label("overflow"),
    ];
    let reports = queue.run(jobs);
    assert_eq!(reports.len(), 6, "exactly one report per submitted job");
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.index(), i, "submission order preserved");
    }
    assert!(reports[0].is_ok());
    assert!(reports[1].outcome().as_ref().unwrap_err().is_panic());
    assert!(matches!(
        reports[2].outcome().as_ref().unwrap_err().error().unwrap(),
        SpiceError::BudgetExhausted {
            resource: "wall_clock_ms",
            ..
        }
    ));
    assert!(matches!(
        reports[3].outcome().as_ref().unwrap_err().error().unwrap(),
        SpiceError::Singular { .. }
    ));
    assert!(reports[4].is_ok());
    assert!(reports[5].outcome().as_ref().unwrap_err().is_shed());
    let stats = queue.stats();
    // Five accepted + one shed: `submitted` counts accepted only.
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.panics_recovered, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(counter_total(&sink, "serve.shed"), 1.0);
    assert_eq!(counter_total(&sink, "serve.jobs"), 6.0);
    assert_eq!(counter_total(&sink, "serve.failed"), 4.0);
}

// ---------------------------------------------------------------------------
// Cancellation races (seeded stress).

/// Cancellation racing the retry scheduler: jobs that fail retryably
/// forever are cancelled from another thread at seed-staggered moments.
/// Whatever the interleaving, every job yields exactly one report and
/// the run terminates — cancellation always wins over further retries.
#[test]
fn cancel_racing_retry_yields_exactly_one_report_per_job() {
    for seed in 0..6u64 {
        let queue = JobQueue::new(
            QueueConfig::new()
                .threads(2)
                .retry(RetryPolicy::attempts(50).backoff_base_ms(1).seed(seed)),
        );
        let tokens: Vec<CancelToken> = (0..4).map(|_| CancelToken::new()).collect();
        let jobs: Vec<JobRequest> = tokens
            .iter()
            .enumerate()
            .map(|(i, tok)| {
                let inj = FaultInjector::recurring(FaultKind::NoConvergence, 0, 1);
                JobRequest::new(divider(1e3 + i as f64), JobSpec::Op)
                    .label(format!("race-{seed}-{i}"))
                    .options(
                        Options::new()
                            .fault_injector(&inj)
                            .ladder(no_ladder())
                            // Escalation would rescue the job before
                            // the cancel lands; keep it failing.
                            .cancel_token(tok),
                    )
            })
            .collect();
        let canceller = {
            let tokens = tokens.clone();
            std::thread::spawn(move || {
                for (i, t) in tokens.iter().enumerate() {
                    std::thread::sleep(Duration::from_millis(seed % 3 + i as u64));
                    t.cancel();
                }
            })
        };
        let reports = queue.run(jobs);
        canceller.join().unwrap();
        assert_eq!(reports.len(), 4, "seed {seed}: one report per job");
        let mut seen = [false; 4];
        for r in &reports {
            assert!(
                !seen[r.index()],
                "seed {seed}: duplicate report {}",
                r.index()
            );
            seen[r.index()] = true;
            // Cancelled mid-attempt (typed Cancelled) or between
            // attempts (the last engine failure stands) — both are
            // legal; a hang, panic, or missing report is not.
            let failure = r.outcome().as_ref().unwrap_err();
            let e = failure.error().unwrap();
            assert!(
                matches!(
                    e,
                    SpiceError::Cancelled { .. } | SpiceError::NoConvergence { .. }
                ),
                "seed {seed}: unexpected terminal error {e:?}"
            );
        }
        assert!(seen.iter().all(|s| *s), "seed {seed}: report lost");
    }
}

/// Cancellation racing `shutdown_and_drain`: long transients are
/// submitted, then the queue is drained under a deadline shorter than
/// the work. Every accepted job must come back exactly once — finished,
/// cancelled partial, or shed — in submission order.
#[test]
fn drain_deadline_races_inflight_work_without_losing_reports() {
    for seed in 0..4u64 {
        let running = JobQueue::new(QueueConfig::new().threads(2)).start();
        const JOBS: usize = 8;
        for i in 0..JOBS {
            let id = running
                .submit(
                    JobRequest::new(rc_sin_deck(), JobSpec::Tran(TranParams::new(200e-6, 2e-9)))
                        .label(format!("drain-{seed}-{i}")),
                )
                .unwrap();
            assert_eq!(id, i);
        }
        let reports = running.shutdown_and_drain(Duration::from_millis(2 + seed * 5));
        assert_eq!(
            reports.len(),
            JOBS,
            "seed {seed}: one report per accepted job"
        );
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index(), i, "seed {seed}: submission order");
            match r.outcome() {
                Ok(out) => {
                    let t = out.as_tran().unwrap();
                    assert!(
                        matches!(
                            t.status(),
                            TranStatus::Complete | TranStatus::Cancelled { .. }
                        ),
                        "seed {seed} job {i}: {:?}",
                        t.status()
                    );
                }
                Err(e) => assert!(
                    e.is_shed() || e.error().map(|e| e.is_abort()).unwrap_or(false),
                    "seed {seed} job {i}: unexpected failure {e:?}"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// GMRES stagnation/starvation fallback regression.

/// A six-stage BJT amplifier chain — enough coupling structure at
/// 10 GHz that an iteration-starved restarted GMRES cannot converge
/// inside its budget.
fn amplifier_chain(stages: usize) -> Circuit {
    let mut c = Circuit::new();
    let vcc = c.node("vcc");
    c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
    let vin = c.node("vin");
    c.vsource_wave(
        "VIN",
        vin,
        Circuit::gnd(),
        SourceWave::Sin {
            offset: 0.0,
            ampl: 1e-3,
            freq: 100e6,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    );
    c.set_ac("VIN", 1.0, 0.0).unwrap();
    let mi = c.add_bjt_model(BjtModel::default());
    let mut prev = vin;
    for k in 0..stages {
        let b = c.node(&format!("b{k}"));
        let col = c.node(&format!("c{k}"));
        let e = c.node(&format!("e{k}"));
        c.resistor(&format!("RB1_{k}"), vcc, b, 47e3);
        c.resistor(&format!("RB2_{k}"), b, Circuit::gnd(), 10e3);
        c.capacitor(&format!("CIN{k}"), prev, b, 5e-12);
        c.resistor(&format!("RC{k}"), vcc, col, 1e3);
        c.resistor(&format!("RE{k}"), e, Circuit::gnd(), 470.0);
        c.capacitor(&format!("CE{k}"), e, Circuit::gnd(), 10e-12);
        c.bjt(&format!("Q{k}"), col, b, e, mi, 1.0);
        prev = col;
    }
    c.resistor("RL", prev, Circuit::gnd(), 10e3);
    c
}

/// An iteration-starved GMRES at the ILU(0)-hostile 10 GHz AC point
/// must fall back to the direct sparse solver and agree with it — the
/// fallback is observable on the `solver.gmres.fallbacks` counter, and
/// the answers match to direct-solve accuracy instead of carrying an
/// unconverged Krylov iterate into the waveform.
#[test]
fn starved_gmres_at_10ghz_falls_back_to_direct_solve() {
    let ckt = amplifier_chain(6);
    let freqs = [1e10];

    let reference = {
        let sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().solver(SolverChoice::Sparse));
        let op = sess.op().unwrap();
        sess.ac(op.x(), &freqs).unwrap()
    };

    let sink = Arc::new(InMemorySink::new());
    let starved = GmresOptions {
        restart: 4,
        tol: 1e-12,
        max_iters: 8,
    };
    let sess = Session::compile(&ckt).unwrap().with_options(
        Options::new()
            .solver(SolverChoice::Gmres(starved))
            .trace_handle(TraceHandle::new(&sink)),
    );
    let op = sess.op().unwrap();
    let wave = sess.ac(op.x(), &freqs).unwrap();

    assert!(
        counter_total(&sink, "solver.gmres.fallbacks") >= 1.0,
        "the starved Krylov solve must have been rescued by direct LU"
    );
    for name in &sess.prepared().unknown_names {
        let a = reference.signal(name).unwrap()[0];
        let b = wave.signal(name).unwrap()[0];
        let scale = a.abs().max(1e-12);
        assert!(
            (a - b).abs() <= 1e-8 * scale,
            "{name}: fallback answer {b:?} diverged from direct {a:?}"
        );
    }
}
