//! Integration tests over the geometry → model → simulation chain
//! (the paper's §4 experiments in reduced form).

use ahfic_geom::prelude::*;
use ahfic_rf::ringosc::{measure_ring_frequency, RingOscParams};
use ahfic_spice::analysis::Options;
use ahfic_spice::measure::{ft_sweep, peak_ft};

fn generator() -> ModelGenerator {
    ModelGenerator::new(ProcessData::default(), MaskRules::default())
}

/// Fig. 9's claim: the collector current of peak fT scales with emitter
/// area across the N1.2-xD family.
#[test]
fn fig9_peak_current_scales_with_emitter_area() {
    let g = generator();
    let opts = Options::default();
    let currents = ahfic_num::interp::logspace(0.1e-3, 20e-3, 9);
    let mut peaks = Vec::new();
    for shape in [
        TransistorShape::new(1.2, 6.0, 1, 2),
        TransistorShape::new(1.2, 24.0, 1, 2),
    ] {
        let model = g.generate(&shape);
        let pts = ft_sweep(&model, 3.0, &currents, &opts);
        assert!(pts.len() >= 7, "{} failed points", shape);
        let (ic_pk, ft_pk) = peak_ft(&pts).unwrap();
        assert!(ft_pk > 2e9 && ft_pk < 12e9, "{shape}: peak {ft_pk:.3e}");
        peaks.push((shape.emitter_area_um2(), ic_pk));
    }
    // 4x the area -> roughly 4x the peak-fT current (allow 2.5..6).
    let ratio = peaks[1].1 / peaks[0].1;
    assert!(
        ratio > 2.5 && ratio < 6.0,
        "peak current ratio {ratio} for 4x area"
    );
}

/// Table 1's claim in miniature: at a fixed tail current, the
/// right-sized N1.2-12D diff pair rings faster than the undersized
/// N1.2-6S, and area-factor scaling misses the difference between
/// equal-area shapes.
#[test]
fn table1_shape_ordering_reproduces() {
    let g = generator();
    let opts = Options::default();
    let params = RingOscParams {
        stages: 3,
        t_stop: 20e-9,
        dt_max: 5e-12,
        ..RingOscParams::default()
    };
    let follower = g.generate(&"N1.2-12D".parse().unwrap());
    let freq = |name: &str| {
        let pair = g.generate(&name.parse().unwrap());
        measure_ring_frequency(&params, &pair, &follower, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .frequency
    };
    let f_12d = freq("N1.2-12D");
    let f_6s = freq("N1.2-6S");
    let f_wide = freq("N2.4-6D");
    assert!(
        f_12d > 1.3 * f_6s,
        "12D ({f_12d:.3e}) should beat 6S ({f_6s:.3e})"
    );
    assert!(
        f_12d > 1.2 * f_wide,
        "12D ({f_12d:.3e}) should beat equal-area N2.4-6D ({f_wide:.3e})"
    );
}

/// The full Fig. 10 flow: a netlist whose BJT models are named after
/// shapes gets regenerated and still simulates.
#[test]
fn fig10_flow_annotates_netlist_end_to_end() {
    let deck = "\
        .model N1.2-6D NPN (IS=1e-16)\n\
        VCC vcc 0 5\n\
        RB vcc b 470k\n\
        RC vcc c 1k\n\
        Q1 c b 0 N1.2-6D\n";
    let mut ckt = ahfic_spice::parse::parse_netlist(deck).unwrap();
    let reports = ahfic_geom::flow::annotate_circuit(&mut ckt, &generator());
    assert_eq!(reports.len(), 1);
    // Placeholder card replaced with a full geometry-aware one.
    let m = &ckt.bjt_models[0];
    assert!(m.rb > 0.0 && m.cje > 0.0 && m.tf > 0.0);
    let prep = ahfic_spice::circuit::Prepared::compile(&ckt).unwrap();
    let op = ahfic_spice::analysis::Session::new(prep.clone())
        .op()
        .unwrap();
    let q = ahfic_spice::analysis::bjt_operating(&prep, &op.x, &Options::default(), "Q1").unwrap();
    assert!(q.ic > 1e-4 && q.ic < 5e-3, "ic = {:.3e}", q.ic);
}

/// Monte-Carlo process variation shifts generated fT but keeps it in the
/// technology band.
#[test]
fn process_variation_produces_plausible_spread() {
    let shape: TransistorShape = "N1.2-12D".parse().unwrap();
    let mut sampler = ProcessSampler::new(ProcessData::default(), MaskRules::default(), 0.08, 11);
    let opts = Options::default();
    let mut fts = Vec::new();
    for _ in 0..5 {
        let model = sampler.sample_model(&shape);
        let p = ahfic_spice::measure::ft_at_bias(&model, 3.0, 1.5e-3, &opts).unwrap();
        fts.push(p.ft);
    }
    let lo = fts.iter().cloned().fold(f64::MAX, f64::min);
    let hi = fts.iter().cloned().fold(f64::MIN, f64::max);
    assert!(lo > 1e9 && hi < 15e9, "spread {lo:.3e}..{hi:.3e}");
    assert!(hi / lo > 1.01, "variation should actually move fT");
}
