//! Umbrella crate for the AHFIC workspace.
//!
//! Re-exports every member crate so examples and integration tests can use
//! a single dependency. Library users should depend on the individual
//! crates ([`ahfic`], [`ahfic_spice`], …) instead.

pub use ahfic as core;
pub use ahfic_ahdl as ahdl;
pub use ahfic_celldb as celldb;
pub use ahfic_geom as geom;
pub use ahfic_num as num;
pub use ahfic_rf as rf;
pub use ahfic_spice as spice;
