//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the workspace vendors
//! the bench-definition surface it uses (`Criterion`, `bench_function`,
//! `benchmark_group`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! over a simple wall-clock harness: each benchmark is warmed up briefly,
//! then timed for a fixed number of batches, and the median batch time per
//! iteration is printed. No statistics beyond that — enough to compare
//! hot paths release-to-release offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier combining a function name and a parameter display value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Measured per-iteration times of each batch (ns).
    samples: Vec<f64>,
    batches: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up and batch sizing: grow the batch until it runs >=1 ms.
        let mut batch = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn run_one(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        batches: sample_count.max(3),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_by(|a, c| a.partial_cmp(c).expect("finite"));
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "{label:<40} median {} best {}",
        fmt_ns(median),
        fmt_ns(best)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for source compatibility).
    pub fn finish(self) {}
}

/// Declares the list of bench entry points.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("ladder", 40).to_string(), "ladder/40");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
