//! Offline stand-in for `serde_json`: renders and parses JSON text against
//! the vendored value-tree `serde` crate.
//!
//! Numbers are carried as `f64` (exact for integers below 2^53, which
//! covers everything the workspace persists) and rendered with Rust's
//! shortest round-trip float formatting.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if a non-finite number is encountered.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as indented JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] if a non-finite number is encountered.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error(e.0))
}

// ---- writer ----

fn write_value(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite number {x} is not valid JSON")));
            }
            if x.fract() == 0.0 && x.abs() < 9.0e15 {
                // Integral values render without a trailing ".0" so the
                // output looks like ordinary JSON integers.
                out.push_str(&format!("{}", *x as i64));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(
                items.iter(),
                items.len(),
                '[',
                ']',
                indent,
                level,
                out,
                |item, out| write_value(item, indent, level + 1, out),
            )?;
        }
        Value::Object(pairs) => {
            write_seq(
                pairs.iter(),
                pairs.len(),
                '{',
                '}',
                indent,
                level,
                out,
                |(k, val), out| {
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, indent, level + 1, out)
                },
            )?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut write_item: impl FnMut(I::Item, &mut String) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        write_item(item, out)?;
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; the
                            // writer never emits them (it escapes only
                            // control characters, which are in the BMP).
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(Error("raw control character in string".into()));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("cell \"A\"\n".into())),
            ("rev".into(), Value::Num(3.0)),
            (
                "points".into(),
                Value::Array(vec![
                    Value::Array(vec![Value::Num(1.5), Value::Num(-2.25e-9)]),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&-0.5f64).unwrap(), "-0.5");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{nope").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }
}
