//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors a
//! small property-testing harness with proptest's surface syntax:
//!
//! ```ignore
//! proptest! {
//!     #[test]
//!     fn holds(x in -1.0f64..1.0, v in proptest::collection::vec(0usize..9, 8)) {
//!         prop_assert!(x.abs() <= 1.0, "x = {x}");
//!     }
//! }
//! ```
//!
//! Differences from the real crate: no shrinking (failing inputs are
//! printed, not minimized), a fixed case count per test, and string
//! strategies accept only the regex subset the workspace uses
//! (literals, `(a|b|)` alternation, `[a-z]`/`[(){};,<>=-]` classes,
//! `{m,n}` repetition, `\PC` printable class, `\(`-style escapes).

pub mod strategy;

pub mod collection;

pub mod string_gen;

/// Runner internals used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Cases sampled per property.
    pub const CASES: usize = 64;

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Per-test deterministic random state.
    pub struct Runner {
        /// Generator the strategies draw from.
        pub rng: StdRng,
    }

    impl Runner {
        /// Seeds the generator from the test name (stable across runs).
        pub fn new(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Runner {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases sampled per property in the block.
    pub cases: usize,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `fn` (annotated `#[test]` in-source, as
/// with the real crate) runs [`test_runner::CASES`] sampled cases, or the
/// count from an optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg).cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::CASES; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cases:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: usize = $cases;
                let mut runner = $crate::test_runner::Runner::new(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut runner.rng);)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body; failure fails the case with the
/// formatted message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({lhs:?} vs {rhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds.
        #[test]
        fn float_range_in_bounds(x in -2.0f64..3.5) {
            prop_assert!((-2.0..3.5).contains(&x), "x = {x}");
        }

        /// Integer ranges stay in bounds.
        #[test]
        fn usize_range_in_bounds(n in 3usize..40) {
            prop_assert!((3..40).contains(&n));
        }

        /// Vectors honor their length spec.
        #[test]
        fn vec_len_fixed(v in crate::collection::vec(0.0f64..1.0, 17)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        /// Regex-subset strings match their shape.
        #[test]
        fn class_repeat(s in "[a-z]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        /// Alternation picks one of the branches.
        #[test]
        fn alternation(s in "(module|mod|)") {
            prop_assert!(s == "module" || s == "mod" || s.is_empty(), "s = {s:?}");
        }

        /// Printable-class strings contain no control characters.
        #[test]
        fn printable(s in "\\PC{0,200}") {
            prop_assert!(s.chars().count() <= 200);
            prop_assert!(!s.chars().any(char::is_control), "control char in {s:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::Runner::new("seed-test");
        let mut b = crate::test_runner::Runner::new("seed-test");
        for _ in 0..32 {
            assert_eq!(
                (0.0f64..1.0).sample(&mut a.rng),
                (0.0f64..1.0).sample(&mut b.rng)
            );
        }
    }
}
