//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::Range;

/// Length specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    /// Draws a length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// Strategy for vectors of `element` values with the given length spec.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
