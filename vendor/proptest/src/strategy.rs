//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end - self.start) as u64;
                let off = rng.random_range(0u64..span);
                self.start + off as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut StdRng) -> i64 {
        assert!(self.end > self.start, "empty range strategy");
        let span = (self.end as i128 - self.start as i128) as u64;
        let off = rng.random_range(0u64..span);
        (self.start as i128 + off as i128) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut StdRng) -> i32 {
        assert!(self.end > self.start, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        let off = rng.random_range(0u64..span);
        (self.start as i64 + off as i64) as i32
    }
}

/// String literals are regex-subset patterns (proptest's convention).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string_gen::generate(self, rng)
    }
}

/// Fixed values (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
