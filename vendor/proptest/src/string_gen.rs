//! Random string generation from a regex subset.
//!
//! Supports the constructs the workspace's property tests use: literal
//! characters, `\(`-style escapes, `(a|b|)` alternation groups, `[a-z]` /
//! `[(){};,<>=-]` character classes, `{m}` / `{m,n}` / `*` / `+` / `?`
//! repetition, `.`, and the classes `\PC` (printable), `\d`, `\w`, `\s`.
//! Unsupported syntax panics, so a typo in a pattern fails loudly rather
//! than silently generating the wrong corpus.

use rand::rngs::StdRng;
use rand::RngExt;

#[derive(Clone, Debug)]
enum Node {
    /// One of several branches (possibly empty).
    Alt(Vec<Vec<(Node, Repeat)>>),
    /// A literal character.
    Char(char),
    /// Inclusive character ranges.
    Class(Vec<(char, char)>),
    /// Any printable (non-control) character (`\PC`, `.`).
    Printable,
    /// ASCII digit (`\d`).
    Digit,
    /// ASCII word character (`\w`).
    Word,
    /// Whitespace (`\s`).
    Space,
}

#[derive(Clone, Copy, Debug)]
struct Repeat {
    min: usize,
    max: usize,
}

const ONCE: Repeat = Repeat { min: 1, max: 1 };

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// `a|b|c` — branches separated by `|`, ended by `)` or end of input.
    fn alternation(&mut self) -> Node {
        let mut branches = vec![self.concat()];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.concat());
        }
        Node::Alt(branches)
    }

    fn concat(&mut self) -> Vec<(Node, Repeat)> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            let rep = self.repeat();
            seq.push((atom, rep));
        }
        seq
    }

    fn atom(&mut self) -> Node {
        match self.bump().expect("atom") {
            '(' => {
                let inner = self.alternation();
                assert_eq!(self.bump(), Some(')'), "unclosed group in pattern");
                inner
            }
            '[' => self.class(),
            '\\' => self.escape(),
            '.' => Node::Printable,
            c if c == '*' || c == '+' || c == '?' || c == '{' => {
                panic!("dangling repetition `{c}` in pattern")
            }
            c => Node::Char(c),
        }
    }

    fn escape(&mut self) -> Node {
        match self.bump().expect("escape target") {
            'P' => {
                // `\PC` / `\P{C}`: complement of Unicode category C
                // (control/other) — i.e. printable.
                match self.bump() {
                    Some('C') => Node::Printable,
                    Some('{') => {
                        let mut name = String::new();
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                            name.push(c);
                        }
                        assert_eq!(name, "C", "only \\P{{C}} is supported");
                        Node::Printable
                    }
                    other => panic!("unsupported \\P form: {other:?}"),
                }
            }
            'd' => Node::Digit,
            'w' => Node::Word,
            's' => Node::Space,
            'n' => Node::Char('\n'),
            'r' => Node::Char('\r'),
            't' => Node::Char('\t'),
            c if c.is_ascii_punctuation() => Node::Char(c),
            other => panic!("unsupported escape \\{other} in pattern"),
        }
    }

    fn class(&mut self) -> Node {
        assert_ne!(self.peek(), Some('^'), "negated classes are unsupported");
        let mut ranges = Vec::new();
        loop {
            let c = self.bump().expect("unterminated character class");
            if c == ']' {
                break;
            }
            let lo = if c == '\\' {
                self.bump().expect("escape in class")
            } else {
                c
            };
            // `a-z` range, unless `-` is the final literal before `]`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.bump().expect("range end in class");
                let hi = if hi == '\\' {
                    self.bump().expect("escape in class")
                } else {
                    hi
                };
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        Node::Class(ranges)
    }

    fn repeat(&mut self) -> Repeat {
        match self.peek() {
            Some('*') => {
                self.bump();
                Repeat { min: 0, max: 8 }
            }
            Some('+') => {
                self.bump();
                Repeat { min: 1, max: 8 }
            }
            Some('?') => {
                self.bump();
                Repeat { min: 0, max: 1 }
            }
            Some('{') => {
                self.bump();
                let mut lo = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    lo.push(self.bump().unwrap());
                }
                let min: usize = lo.parse().expect("repeat lower bound");
                let max = if self.peek() == Some(',') {
                    self.bump();
                    let mut hi = String::new();
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        hi.push(self.bump().unwrap());
                    }
                    hi.parse().expect("repeat upper bound")
                } else {
                    min
                };
                assert_eq!(self.bump(), Some('}'), "unclosed repetition");
                assert!(max >= min, "inverted repetition bounds");
                Repeat { min, max }
            }
            _ => ONCE,
        }
    }
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let pick = rng.random_range(0usize..branches.len());
            for (atom, rep) in &branches[pick] {
                let n = rng.random_range(rep.min..rep.max + 1);
                for _ in 0..n {
                    emit(atom, rng, out);
                }
            }
        }
        Node::Char(c) => out.push(*c),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.random_range(0usize..ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            let c = char::from_u32(lo as u32 + rng.random_range(0u64..span as u64) as u32)
                .unwrap_or(lo);
            out.push(c);
        }
        Node::Printable => {
            // Mostly ASCII printable, sprinkled with multi-byte scalars to
            // exercise UTF-8 handling.
            if rng.random::<f64>() < 0.92 {
                out.push((0x20 + rng.random_range(0u64..0x5f) as u8) as char);
            } else {
                const EXOTIC: &[char] = &['é', 'Ω', '中', '🦀', 'ß', '→', '¤', 'þ'];
                out.push(EXOTIC[rng.random_range(0usize..EXOTIC.len())]);
            }
        }
        Node::Digit => out.push((b'0' + rng.random_range(0u64..10) as u8) as char),
        Node::Word => {
            const W: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
            out.push(W[rng.random_range(0usize..W.len())] as char);
        }
        Node::Space => {
            const S: &[char] = &[' ', '\t', '\n'];
            out.push(S[rng.random_range(0usize..S.len())]);
        }
    }
}

/// Generates one random string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported regex subset.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let ast = p.alternation();
    assert_eq!(
        p.pos,
        p.chars.len(),
        "trailing pattern characters at {} in {pattern:?}",
        p.pos
    );
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn literal_passthrough() {
        assert_eq!(generate("abc", &mut rng()), "abc");
    }

    #[test]
    fn escaped_metacharacters() {
        assert_eq!(generate(r"V\(y\) <- V\(x\);", &mut rng()), "V(y) <- V(x);");
        assert_eq!(generate(r"if \(1\) \{\}", &mut rng()), "if (1) {}");
    }

    #[test]
    fn fragment_pattern_from_ahdl_tests() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate(
                r"(V\(y\) <- V\(x\);|real t = 1;|if \(1\) \{\}|){0,3}",
                &mut r,
            );
            // Concatenation of 0..=3 picks from the four branches.
            assert!(s.len() <= 3 * 13, "{s:?}");
        }
    }

    #[test]
    fn class_with_punctuation() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[(){};,<>=-]{0,12}", &mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| "(){};,<>=-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn repeat_exact() {
        let s = generate("[a-a]{5}", &mut rng());
        assert_eq!(s, "aaaaa");
    }

    #[test]
    #[should_panic(expected = "unsupported escape")]
    fn unsupported_escape_panics() {
        generate(r"\q", &mut rng());
    }
}
