//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde` crate, *without* `syn`/`quote` (no
//! network, no external deps): the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — the only ones this
//! workspace uses — are structs with named fields and enums with unit
//! variants. Anything else panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item being derived.
enum Item {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, ... }`
    Enum { name: String, variants: Vec<String> },
}

/// Skips attribute `#[...]` pairs starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    i += 1;
    // Generic parameters are not supported (nothing in the workspace
    // derives on a generic type).
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stub does not support generic types ({name})");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => i += 1,
            None => panic!("serde derive: no braced body on {name}"),
        }
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body_tokens),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_unit_variants(&body_tokens),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Parses `field: Type, ...` skipping attributes and visibility; commas
/// inside angle brackets belong to the type, not the field list.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        i = skip_vis(tokens, i);
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after {fname}, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

/// Parses `Variant, ...`; any payload group means a data-carrying variant,
/// which the stub does not support.
fn parse_unit_variants(tokens: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!("serde derive stub only supports unit enum variants ({vname} has data)");
        }
        // Skip an optional `= discriminant` up to the comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(vname);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                             v.get(\"{f}\").unwrap_or(&serde::Value::Null))\
                             .map_err(|e| serde::DeError(\
                                 format!(\"{name}.{f}: {{}}\", e.0)))?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         if !matches!(v, serde::Value::Object(_)) {{\n\
                             return Err(serde::DeError::expected(\"object for {name}\", v));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::DeError(\
                                     format!(\"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             other => Err(serde::DeError::expected(\
                                 \"variant string for {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
