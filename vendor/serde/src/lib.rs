//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization framework with the same *spelling* as serde —
//! `#[derive(Serialize, Deserialize)]`, `serde_json::to_string`/`from_str`
//! — but a much simpler design: everything funnels through an owned
//! [`Value`] tree instead of serde's zero-copy visitor machinery. That is
//! plenty for the cell-database persistence this workspace needs.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A dynamically-typed serialized value (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always carried as `f64`; exact for |x| < 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(x) => Ok(*x as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v: Option<f64> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Num(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        m.insert("b".to_string(), 2.0);
        let v = m.to_value();
        let back = BTreeMap::<String, f64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn wrong_shape_is_error() {
        assert!(String::from_value(&Value::Num(1.0)).is_err());
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
    }
}
