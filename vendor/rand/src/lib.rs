//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the `rand` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — statistically strong for
//! simulation use (Monte-Carlo yield, noise sources, property tests), and
//! deterministic for a given seed. It is *not* cryptographically secure.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of standard-distribution values (the `random` method of the
/// real crate's `Rng`/`RngExt` extension trait).
pub trait RngExt: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform in `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from a range (half-open).
    fn random_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for source compatibility with `rand::Rng` users.
pub use self::RngExt as Rng;

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a `Range`.
pub trait UniformRange: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl UniformRange for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

impl UniformRange for usize {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<usize>) -> usize {
        assert!(range.end > range.start, "empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping (negligible bias for the
        // small spans simulation code uses).
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }
}

impl UniformRange for u64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<u64>) -> u64 {
        assert!(range.end > range.start, "empty range");
        let span = range.end - range.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }
}

impl UniformRange for i64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<i64>) -> i64 {
        assert!(range.end > range.start, "empty range");
        let span = (range.end as i128 - range.start as i128) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        (range.start as i128 + hi as i128) as i64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state,
            // guaranteed nonzero.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut t = z;
                t = (t ^ (t >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                t = (t ^ (t >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                t ^ (t >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = StdRng::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = StdRng::rotl(s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
