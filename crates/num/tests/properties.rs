//! Property-based cross-validation of the numeric kernels.

use ahfic_num::fft::{fft, ifft, real_spectrum};
use ahfic_num::goertzel::tone_amplitude;
use ahfic_num::interp::{lerp_at, linspace, logspace};
use ahfic_num::Complex;
use proptest::prelude::*;
use std::f64::consts::PI;

/// Naive O(n^2) DFT reference.
fn dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (m, &v) in x.iter().enumerate() {
                acc += v * Complex::from_polar(1.0, -2.0 * PI * (k * m) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

proptest! {
    /// The radix-2 FFT must agree with the naive DFT on random inputs.
    #[test]
    fn fft_matches_naive_dft(values in proptest::collection::vec(-10.0f64..10.0, 32)) {
        let x: Vec<Complex> = values
            .chunks(2)
            .map(|c| Complex::new(c[0], c[1]))
            .collect(); // 16 points
        let mut fast = x.clone();
        fft(&mut fast);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// fft → ifft is the identity.
    #[test]
    fn fft_ifft_identity(values in proptest::collection::vec(-5.0f64..5.0, 64)) {
        let x: Vec<Complex> = values.chunks(2).map(|c| Complex::new(c[0], c[1])).collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Goertzel and the FFT spectrum agree on on-grid tones.
    #[test]
    fn goertzel_matches_fft_bin(bin in 1usize..30, ampl in 0.1f64..5.0, phase in 0.0f64..6.2) {
        let n = 256usize;
        let fs = 256.0;
        let f0 = bin as f64; // exactly on the FFT grid
        let sig: Vec<f64> = (0..n)
            .map(|k| ampl * (2.0 * PI * f0 * k as f64 / fs + phase).sin())
            .collect();
        let g = tone_amplitude(&sig, fs, f0).abs();
        let (_, amps) = real_spectrum(&sig, fs);
        let f = amps[bin];
        prop_assert!((g - ampl).abs() < 1e-9, "goertzel {g}");
        prop_assert!((f - ampl).abs() < 1e-9, "fft {f}");
    }

    /// Linear interpolation is exact on affine data and bounded by the
    /// data range in general.
    #[test]
    fn lerp_exact_on_affine(a in -5.0f64..5.0, b in -5.0f64..5.0, x in 0.0f64..10.0) {
        let xs = linspace(0.0, 10.0, 11);
        let ys: Vec<f64> = xs.iter().map(|&t| a * t + b).collect();
        let v = lerp_at(&xs, &ys, x);
        prop_assert!((v - (a * x + b)).abs() < 1e-9 * (1.0 + (a * x + b).abs()));
    }

    /// Logspace is a geometric progression with exact endpoints.
    #[test]
    fn logspace_is_geometric(lo_exp in -6.0f64..0.0, span in 0.5f64..8.0, n in 3usize..40) {
        let lo = 10f64.powf(lo_exp);
        let hi = lo * 10f64.powf(span);
        let g = logspace(lo, hi, n);
        prop_assert!((g[0] - lo).abs() <= 1e-12 * lo);
        prop_assert!((g[n - 1] - hi).abs() <= 1e-9 * hi);
        let r0 = g[1] / g[0];
        for w in g.windows(2) {
            prop_assert!((w[1] / w[0] - r0).abs() < 1e-9 * r0);
        }
    }
}
