//! Sparse MNA kernels: triplet → CSC compilation and a left-looking
//! (Gilbert–Peierls) LU with symbolic-pattern reuse.
//!
//! Circuit matrices are extremely sparse (a handful of entries per row)
//! and, across a simulation, are refactored thousands of times with an
//! *identical* nonzero pattern — once per Newton iteration, timestep and
//! frequency point. This module exploits that:
//!
//! * [`TripletBuilder`] records the stamp pattern once and compiles it to
//!   compressed-sparse-column form, returning a slot map so later
//!   assemblies write values straight into the CSC array (no hashing, no
//!   allocation).
//! * [`SparseLu::factor`] runs the full pipeline once: a Markowitz-style
//!   least-entries-first column preorder, a symbolic depth-first
//!   reachability pass per column, and the numeric factorization with
//!   diagonal-preferring threshold pivoting.
//! * [`SparseLu::refactor`] replays the recorded pivot order and fill
//!   pattern on new values — pure numeric work, zero allocation — and
//!   [`SparseLu::solve_in_place`] back-substitutes without allocating.
//!
//! Everything is generic over [`Scalar`], so the same code serves the real
//! DC/transient path (`f64`) and the complex AC/noise path.

use crate::lu::SingularMatrixError;
use crate::{Matrix, Scalar};

/// Pattern-only accumulator of matrix entries in stamp order.
///
/// Duplicate `(row, col)` pushes are allowed (MNA stamps overlap) and are
/// summed into one stored entry at [`TripletBuilder::compile`] time.
#[derive(Clone, Debug)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(usize, usize)>,
}

impl TripletBuilder {
    /// Starts an empty `n`×`n` pattern.
    pub fn new(n: usize) -> Self {
        TripletBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Records one structural entry.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn add(&mut self, r: usize, c: usize) {
        assert!(r < self.n && c < self.n, "triplet ({r},{c}) out of range");
        self.entries.push((r, c));
    }

    /// Number of recorded (possibly duplicate) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compiles the pattern to CSC.
    ///
    /// Returns the zero-valued matrix and a *slot map*: entry `k` of the
    /// map is the index into the CSC value array that the `k`-th recorded
    /// triplet lands on. Replaying the same stamp sequence therefore needs
    /// only `values[slots[k]] += v`.
    pub fn compile<T: Scalar>(&self) -> (CscMatrix<T>, Vec<usize>) {
        let n = self.n;
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_unstable_by_key(|&k| {
            let (r, c) = self.entries[k];
            (c, r)
        });

        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::new();
        let mut slots = vec![0usize; self.entries.len()];
        let mut prev: Option<(usize, usize)> = None;
        for &k in &order {
            let (r, c) = self.entries[k];
            if prev != Some((r, c)) {
                row_idx.push(r);
                col_ptr[c + 1] += 1;
                prev = Some((r, c));
            }
            slots[k] = row_idx.len() - 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let nnz = row_idx.len();
        (
            CscMatrix {
                n,
                col_ptr,
                row_idx,
                values: vec![T::ZERO; nnz],
            },
            slots,
        )
    }
}

/// A square sparse matrix in compressed-sparse-column form.
///
/// The pattern (`col_ptr`/`row_idx`) is fixed at compile time; only
/// `values` changes between assemblies.
#[derive(Clone, Debug)]
pub struct CscMatrix<T> {
    pub(crate) n: usize,
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) row_idx: Vec<usize>,
    pub(crate) values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Read access to the value array (indexed by compile-time slots).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the value array (indexed by compile-time slots).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Resets all values to zero, keeping the pattern.
    pub fn clear_values(&mut self) {
        self.values.fill(T::ZERO);
    }

    /// Dense copy, for small systems and tests.
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[(self.row_idx[k], c)] = self.values[k];
            }
        }
        m
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.n];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product `A x` into a caller-provided buffer,
    /// avoiding the per-call allocation of [`CscMatrix::mul_vec`] — the
    /// variant used on hot paths such as the batched Newton residual
    /// check.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n()` or `y.len() != self.n()`.
    pub fn mul_vec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        assert_eq!(y.len(), self.n, "dimension mismatch");
        y.fill(T::ZERO);
        for (c, &xc) in x.iter().enumerate() {
            if xc.modulus() != 0.0 {
                for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                    y[self.row_idx[k]] += self.values[k] * xc;
                }
            }
        }
    }
}

impl CscMatrix<f64> {
    /// Matrix–vector product of a *real* pattern against a *complex*
    /// vector, `y = A·x`, into a caller-provided buffer.
    ///
    /// Periodic AC and Krylov callers hold the real compiled conductance
    /// pattern but sweep complex phasors through it; routing them here
    /// keeps one matvec path (same skip-zero column walk as
    /// [`CscMatrix::mul_vec_into`]) instead of duplicating the matrix
    /// into complex storage.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n()` or `y.len() != self.n()`.
    pub fn mul_vec_complex_into(&self, x: &[crate::Complex], y: &mut [crate::Complex]) {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        assert_eq!(y.len(), self.n, "dimension mismatch");
        y.fill(crate::Complex::ZERO);
        for (c, &xc) in x.iter().enumerate() {
            if xc.abs() != 0.0 {
                for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                    y[self.row_idx[k]] += xc.scale(self.values[k]);
                }
            }
        }
    }
}

/// Absolute pivot floor (matches the dense solver).
pub(crate) const PIVOT_EPS: f64 = 1e-300;

/// Relative threshold under which a replayed pivot is considered degraded
/// and [`SparseLu::refactor`] asks for a fresh factorization instead.
pub(crate) const REFACTOR_PIVOT_REL: f64 = 1e-12;

/// Diagonal-preference threshold: the structural diagonal is kept as pivot
/// whenever it is within this factor of the best column entry, so the
/// pivot order survives value changes across Newton iterations.
const DIAG_PREFERENCE: f64 = 0.1;

/// Sentinel for "row not yet pivoted" during the first factorization.
const UNSET: usize = usize::MAX;

/// Sparse LU factors `P·A·Q = L·U` with a reusable symbolic pattern.
///
/// Build once with [`SparseLu::factor`]; on later assemblies with the same
/// pattern call [`SparseLu::refactor`] (numeric-only, allocation-free) and
/// [`SparseLu::solve_in_place`].
#[derive(Clone, Debug)]
pub struct SparseLu<T> {
    pub(crate) n: usize,
    /// Column preorder: factor column `k` is original column `q[k]`.
    pub(crate) q: Vec<usize>,
    /// `pinv[orig_row]` = pivot position of that row.
    pub(crate) pinv: Vec<usize>,
    /// `L` columns (unit diagonal implicit); row indices are pivot
    /// positions, ascending within each column.
    pub(crate) l_colptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    pub(crate) l_vals: Vec<T>,
    /// Strict upper part of `U` by column; row indices are pivot positions
    /// `< k`, ascending.
    pub(crate) u_colptr: Vec<usize>,
    pub(crate) u_rows: Vec<usize>,
    pub(crate) u_vals: Vec<T>,
    /// `U` diagonal (the pivots).
    pub(crate) diag: Vec<T>,
    /// Dense scatter workspace, zero between operations.
    pub(crate) work: Vec<T>,
}

impl<T: Scalar> SparseLu<T> {
    /// Full factorization: fill-reducing preorder, symbolic analysis and
    /// numeric elimination with diagonal-preferring partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] (with the *original* column index)
    /// when no usable pivot exists.
    pub fn factor(a: &CscMatrix<T>) -> Result<Self, SingularMatrixError> {
        let n = a.n;
        // Markowitz-style static preorder: eliminate least-populated
        // columns first (ties by index, so the order is deterministic).
        // For MNA matrices this pushes dense hub nodes (supplies, ground
        // nets) to the end, which is where their fill-in hurts least.
        let mut q: Vec<usize> = (0..n).collect();
        q.sort_by_key(|&c| (a.col_ptr[c + 1] - a.col_ptr[c], c));

        let mut pinv = vec![UNSET; n];
        // Temporary per-column storage in original row ids.
        let mut l_cols: Vec<Vec<(usize, T)>> = vec![Vec::new(); n];
        let mut u_cols: Vec<Vec<(usize, T)>> = vec![Vec::new(); n];
        let mut diag = vec![T::ZERO; n];

        let mut x = vec![T::ZERO; n]; // indexed by original row
        let mut mark = vec![UNSET; n]; // stamp = column k when visited
        let mut topo: Vec<usize> = Vec::with_capacity(n); // finish order
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for k in 0..n {
            let j = q[k];
            // Scatter A(:,j) and find Reach_L of its pattern (symbolic).
            topo.clear();
            for idx in a.col_ptr[j]..a.col_ptr[j + 1] {
                let root = a.row_idx[idx];
                x[root] = a.values[idx];
                if mark[root] == k {
                    continue;
                }
                // Iterative DFS through the columns of L built so far.
                mark[root] = k;
                stack.push((root, 0));
                while let Some(top) = stack.len().checked_sub(1) {
                    let (node, child) = stack[top];
                    let deps: &[(usize, T)] = if pinv[node] == UNSET {
                        &[]
                    } else {
                        &l_cols[pinv[node]]
                    };
                    if child < deps.len() {
                        stack[top].1 += 1;
                        let next = deps[child].0;
                        if mark[next] != k {
                            mark[next] = k;
                            stack.push((next, 0));
                        }
                    } else {
                        topo.push(node);
                        stack.pop();
                    }
                }
            }

            // Numeric sparse triangular solve, dependencies first
            // (reverse finish order).
            for &i in topo.iter().rev() {
                let t = pinv[i];
                if t == UNSET {
                    continue;
                }
                let xi = x[i];
                if xi.modulus() != 0.0 {
                    for &(r, lv) in &l_cols[t] {
                        x[r] -= lv * xi;
                    }
                }
            }

            // Pivot: largest-modulus unpivoted entry, but keep the
            // structural diagonal when it is competitive so refactor's
            // frozen order stays stable across value changes.
            let mut best = UNSET;
            let mut best_mag = 0.0f64;
            for &i in &topo {
                if pinv[i] == UNSET {
                    let mag = x[i].modulus();
                    if mag.is_finite() && mag > best_mag {
                        best = i;
                        best_mag = mag;
                    }
                }
            }
            if best == UNSET || best_mag <= PIVOT_EPS {
                return Err(SingularMatrixError { column: j });
            }
            if pinv[j] == UNSET && mark[j] == k {
                let dmag = x[j].modulus();
                if dmag.is_finite() && dmag >= DIAG_PREFERENCE * best_mag && dmag > PIVOT_EPS {
                    best = j;
                }
            }
            let pivot = x[best];
            pinv[best] = k;
            diag[k] = pivot;

            // Split the pattern into U (pivoted rows) and L (the rest),
            // clearing the scatter array as we gather.
            for &i in &topo {
                let xi = x[i];
                x[i] = T::ZERO;
                if i == best {
                    continue;
                }
                match pinv[i] {
                    UNSET => l_cols[k].push((i, xi / pivot)),
                    t => u_cols[k].push((t, xi)),
                }
            }
        }

        // Freeze into flat CSC-style arrays with rows renumbered to pivot
        // positions and sorted ascending — ascending position order is a
        // valid topological order, which is what refactor replays.
        let mut lu = SparseLu {
            n,
            q,
            pinv,
            l_colptr: Vec::with_capacity(n + 1),
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            u_colptr: Vec::with_capacity(n + 1),
            u_rows: Vec::new(),
            u_vals: Vec::new(),
            diag,
            work: x, // already all zero
        };
        lu.l_colptr.push(0);
        lu.u_colptr.push(0);
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for k in 0..n {
            scratch.clear();
            scratch.extend(l_cols[k].iter().map(|&(i, v)| (lu.pinv[i], v)));
            scratch.sort_unstable_by_key(|&(p, _)| p);
            for &(p, v) in &scratch {
                lu.l_rows.push(p);
                lu.l_vals.push(v);
            }
            lu.l_colptr.push(lu.l_rows.len());

            scratch.clear();
            scratch.extend(u_cols[k].iter().copied());
            scratch.sort_unstable_by_key(|&(p, _)| p);
            for &(p, v) in &scratch {
                lu.u_rows.push(p);
                lu.u_vals.push(v);
            }
            lu.u_colptr.push(lu.u_rows.len());
        }
        Ok(lu)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` and `U` (fill-in included, diagonal excluded).
    pub fn factor_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len()
    }

    /// Numeric-only refactorization on new values with the recorded pivot
    /// order and fill pattern. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when a replayed pivot collapses
    /// (absolutely, or relative to its column) — the caller should fall
    /// back to a fresh [`SparseLu::factor`], which re-selects pivots.
    ///
    /// # Panics
    ///
    /// Panics if `a` has a different dimension than the factored matrix.
    /// Entries of `a` outside the original pattern are not detected here;
    /// keep the pattern fixed (that is the contract of the slot map).
    pub fn refactor(&mut self, a: &CscMatrix<T>) -> Result<(), SingularMatrixError> {
        assert_eq!(a.n, self.n, "refactor dimension mismatch");
        let x = &mut self.work;
        for k in 0..self.n {
            let j = self.q[k];
            let mut colmax = 0.0f64;
            for idx in a.col_ptr[j]..a.col_ptr[j + 1] {
                let v = a.values[idx];
                x[self.pinv[a.row_idx[idx]]] = v;
                colmax = colmax.max(v.modulus());
            }
            // Ascending pivot positions = topological order: every update
            // lands on a strictly larger position.
            for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                let t = self.u_rows[idx];
                let xt = x[t];
                x[t] = T::ZERO;
                self.u_vals[idx] = xt;
                if xt.modulus() != 0.0 {
                    for l in self.l_colptr[t]..self.l_colptr[t + 1] {
                        x[self.l_rows[l]] -= self.l_vals[l] * xt;
                    }
                }
            }
            let pivot = x[k];
            x[k] = T::ZERO;
            let pmag = pivot.modulus();
            if !(pmag.is_finite() && pmag > PIVOT_EPS && pmag >= REFACTOR_PIVOT_REL * colmax) {
                // Leave the scatter array clean before reporting failure.
                for l in self.l_colptr[k]..self.l_colptr[k + 1] {
                    x[self.l_rows[l]] = T::ZERO;
                }
                return Err(SingularMatrixError { column: j });
            }
            self.diag[k] = pivot;
            for l in self.l_colptr[k]..self.l_colptr[k + 1] {
                let r = self.l_rows[l];
                self.l_vals[l] = x[r] / pivot;
                x[r] = T::ZERO;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` in place (`b` becomes `x`). Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_in_place(&mut self, b: &mut [T]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let y = &mut self.work;
        // Row permutation: y = P b.
        for i in 0..self.n {
            y[self.pinv[i]] = b[i];
        }
        // Forward substitution with unit-diagonal L (column-major).
        for k in 0..self.n {
            let yk = y[k];
            if yk.modulus() != 0.0 {
                for l in self.l_colptr[k]..self.l_colptr[k + 1] {
                    y[self.l_rows[l]] -= self.l_vals[l] * yk;
                }
            }
        }
        // Back substitution with U (column-major).
        for k in (0..self.n).rev() {
            let yk = y[k] / self.diag[k];
            y[k] = yk;
            if yk.modulus() != 0.0 {
                for u in self.u_colptr[k]..self.u_colptr[k + 1] {
                    y[self.u_rows[u]] -= self.u_vals[u] * yk;
                }
            }
        }
        // Column permutation back to original unknown order; leave the
        // workspace zeroed for the next call.
        for k in 0..self.n {
            b[self.q[k]] = y[k];
            y[k] = T::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lu, Complex};

    /// Builds the CSC form of a dense matrix given as rows.
    fn csc_from_rows(rows: &[&[f64]]) -> (CscMatrix<f64>, Vec<usize>) {
        let n = rows.len();
        let mut tb = TripletBuilder::new(n);
        let mut vals = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    tb.add(r, c);
                    vals.push(v);
                }
            }
        }
        let (mut m, slots) = tb.compile::<f64>();
        for (k, &v) in vals.iter().enumerate() {
            m.values_mut()[slots[k]] += v;
        }
        (m, slots)
    }

    #[test]
    fn triplets_dedup_and_sum() {
        let mut tb = TripletBuilder::new(2);
        tb.add(0, 0);
        tb.add(0, 0); // duplicate: must sum into the same slot
        tb.add(1, 1);
        tb.add(1, 0);
        assert_eq!(tb.len(), 4);
        assert!(!tb.is_empty());
        let (mut m, slots) = tb.compile::<f64>();
        assert_eq!(m.nnz(), 3);
        assert_eq!(slots[0], slots[1]);
        for (k, v) in [(0, 2.0), (1, 3.0), (2, 5.0), (3, 7.0)] {
            m.values_mut()[slots[k]] += v;
        }
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 5.0);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(1, 0)], 7.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn solves_identity() {
        let (m, _) = csc_from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut lu = SparseLu::factor(&m).unwrap();
        assert_eq!(lu.dim(), 2);
        let mut b = [3.0, -4.0];
        lu.solve_in_place(&mut b);
        assert_eq!(b, [3.0, -4.0]);
    }

    #[test]
    fn solves_requiring_pivoting() {
        // Zero on the structural diagonal forces off-diagonal pivots.
        let (m, _) = csc_from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut lu = SparseLu::factor(&m).unwrap();
        let mut b = [5.0, 7.0];
        lu.solve_in_place(&mut b);
        assert!((b[0] - 7.0).abs() < 1e-14);
        assert!((b[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singularity() {
        let (m, _) = csc_from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(SparseLu::factor(&m).is_err());
    }

    #[test]
    fn matches_dense_with_fill_in() {
        // Arrow matrix: maximal fill-in if ordered badly; the preorder
        // must keep the hub column last.
        let rows: &[&[f64]] = &[
            &[10.0, 0.0, 0.0, 0.0, 1.0],
            &[0.0, 11.0, 0.0, 0.0, 2.0],
            &[0.0, 0.0, 12.0, 0.0, 3.0],
            &[0.0, 0.0, 0.0, 13.0, 4.0],
            &[1.0, 2.0, 3.0, 4.0, 20.0],
        ];
        let (m, _) = csc_from_rows(rows);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dense = lu::solve(m.to_dense(), &b).unwrap();
        let mut lu = SparseLu::factor(&m).unwrap();
        let mut x = b;
        lu.solve_in_place(&mut x);
        for k in 0..5 {
            assert!((x[k] - dense[k]).abs() < 1e-12, "x[{k}]");
        }
        // The arrow pattern admits a fill-free elimination order.
        assert_eq!(lu.factor_nnz(), m.nnz() - 5);
    }

    #[test]
    fn refactor_tracks_new_values() {
        let rows: &[&[f64]] = &[&[4.0, -1.0, 0.0], &[-1.0, 4.0, -1.0], &[0.0, -1.0, 4.0]];
        let (mut m, slots) = csc_from_rows(rows);
        let mut lu = SparseLu::factor(&m).unwrap();

        // Newton-style value change on the same pattern.
        m.clear_values();
        let new_vals = [7.0, -2.0, -2.0, 6.0, -3.0, -3.0, 9.0];
        for (k, &v) in new_vals.iter().enumerate() {
            m.values_mut()[slots[k]] += v;
        }
        lu.refactor(&m).unwrap();

        let b = [1.0, -2.0, 0.5];
        let dense = lu::solve(m.to_dense(), &b).unwrap();
        let mut x = b;
        lu.solve_in_place(&mut x);
        for k in 0..3 {
            assert!((x[k] - dense[k]).abs() < 1e-12, "x[{k}]");
        }
    }

    #[test]
    fn refactor_reports_degraded_pivot() {
        let rows: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        let (mut m, slots) = csc_from_rows(rows);
        let mut lu = SparseLu::factor(&m).unwrap();
        m.clear_values();
        m.values_mut()[slots[0]] = 1.0;
        m.values_mut()[slots[1]] = 0.0; // diagonal collapses
        assert!(lu.refactor(&m).is_err());
        // The workspace must stay clean for the next operation.
        m.values_mut()[slots[1]] = 2.0;
        lu.refactor(&m).unwrap();
        let mut b = [3.0, 8.0];
        lu.solve_in_place(&mut b);
        assert!((b[0] - 3.0).abs() < 1e-15 && (b[1] - 4.0).abs() < 1e-15);
    }

    #[test]
    fn complex_system() {
        let mut tb = TripletBuilder::new(2);
        tb.add(0, 0);
        tb.add(0, 1);
        tb.add(1, 0);
        tb.add(1, 1);
        let (mut m, slots) = tb.compile::<Complex>();
        let vals = [
            Complex::new(1.0, 1.0),
            Complex::new(0.0, -1.0),
            Complex::new(0.0, 1.0),
            Complex::new(2.0, 0.0),
        ];
        for (k, &v) in vals.iter().enumerate() {
            m.values_mut()[slots[k]] += v;
        }
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let dense = lu::solve(m.to_dense(), &b).unwrap();
        let mut x = b;
        let mut lu = SparseLu::factor(&m).unwrap();
        lu.solve_in_place(&mut x);
        for k in 0..2 {
            assert!((x[k] - dense[k]).abs() < 1e-13, "x[{k}]");
        }
    }

    #[test]
    fn ladder_matches_dense_over_refactor_sweep() {
        // Tridiagonal resistor-ladder conductance pattern, the canonical
        // MNA shape, across several value sets reusing one symbolic.
        let n = 40;
        let mut tb = TripletBuilder::new(n);
        for i in 0..n {
            tb.add(i, i);
            if i + 1 < n {
                tb.add(i, i + 1);
                tb.add(i + 1, i);
            }
        }
        let (mut m, slots) = tb.compile::<f64>();
        let mut lu: Option<SparseLu<f64>> = None;
        for sweep in 1..5 {
            m.clear_values();
            let g = sweep as f64;
            let mut k = 0;
            for i in 0..n {
                m.values_mut()[slots[k]] += 2.0 * g + 0.1 * i as f64;
                k += 1;
                if i + 1 < n {
                    m.values_mut()[slots[k]] += -g;
                    m.values_mut()[slots[k + 1]] += -g;
                    k += 2;
                }
            }
            match lu.as_mut() {
                None => lu = Some(SparseLu::factor(&m).unwrap()),
                Some(f) => f.refactor(&m).unwrap(),
            }
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let dense = lu::solve(m.to_dense(), &b).unwrap();
            let mut x = b.clone();
            lu.as_mut().unwrap().solve_in_place(&mut x);
            for i in 0..n {
                assert!((x[i] - dense[i]).abs() < 1e-10, "sweep {sweep} x[{i}]");
            }
            // Tridiagonal systems factor with zero fill-in.
            assert_eq!(lu.as_ref().unwrap().factor_nnz(), m.nnz() - n);
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let (m, _) = csc_from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 4.0], &[5.0, 0.0, 6.0]]);
        let x = [1.0, -1.0, 2.0];
        assert_eq!(m.mul_vec(&x), m.to_dense().mul_vec(&x));
    }

    #[test]
    fn mul_vec_complex_matches_dense() {
        use crate::Complex;
        let (m, _) = csc_from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 3.0, 4.0], &[5.0, 0.0, 6.0]]);
        let x = [
            Complex::new(1.0, -0.5),
            Complex::new(0.0, 2.0),
            Complex::new(-1.5, 0.25),
        ];
        let mut y = vec![Complex::ZERO; 3];
        m.mul_vec_complex_into(&x, &mut y);
        // Dense reference: promote the real matrix entrywise to complex.
        let d = m.to_dense();
        for r in 0..3 {
            let mut acc = Complex::ZERO;
            for c in 0..3 {
                acc += x[c].scale(d[(r, c)]);
            }
            assert!((y[r] - acc).abs() < 1e-15, "row {r}: {:?} vs {acc:?}", y[r]);
        }
    }
}
