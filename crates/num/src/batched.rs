//! Batched sparse LU: one symbolic factorization, N numeric variants.
//!
//! Monte-Carlo, corner and sweep studies re-solve the *same* circuit
//! with perturbed element values. Every variant therefore shares one
//! CSC pattern and — because the pivot order is chosen with a strong
//! diagonal preference — almost always one elimination schedule too.
//! [`CpuBatchedLu`] exploits that: it walks the schedule once per
//! column while carrying N variants' numbers side by side in
//! structure-of-arrays ("lane") layout, so the inner update loops
//! become contiguous lane-block operations fed to the SIMD kernels in
//! [`crate::simd`].
//!
//! # Layout
//!
//! All numeric arrays store lane blocks contiguously: entry `e` of lane
//! `b` lives at `e * lanes + b`. Matrix values handed to
//! [`CpuBatchedLu::refactor`] use the same convention over the CSC slot
//! index; right-hand sides use it over the row index.
//!
//! # Determinism contract
//!
//! Lane arithmetic mirrors [`SparseLu::refactor`] /
//! [`SparseLu::solve_in_place`] operation for operation — including the
//! skip-on-exact-zero shortcuts, which are replayed per lane so a
//! structural zero takes the identical path it takes in the scalar
//! code. A lane refactored and solved here is **bit-identical** to
//! factoring the reference matrix with [`SparseLu::factor`] and then
//! calling the scalar `refactor`/`solve_in_place` with that lane's
//! values.
//!
//! Lanes whose pivots degrade under the shared pivot order are flagged
//! (not errored): the caller falls back to a scalar solve for those
//! lanes and keeps the batch running for everyone else.

use crate::lu::SingularMatrixError;
use crate::scalar::Scalar;
use crate::simd::LaneKernels;
use crate::sparse::{CscMatrix, SparseLu, PIVOT_EPS, REFACTOR_PIVOT_REL};

/// Batched LU backend: refactor and solve N variants of one pattern.
///
/// This is the trait named by ROADMAP item 1; [`CpuBatchedLu`] is the
/// CPU implementation. The shape is deliberately backend-agnostic (flat
/// SoA buffers in, per-lane status out) so a GPU backend can implement
/// it later without changing the calling analyses.
pub trait BatchedLuSolver<T: Scalar> {
    /// Matrix dimension.
    fn dim(&self) -> usize;

    /// Number of variant lanes carried per operation.
    fn lanes(&self) -> usize;

    /// Numeric refactorization of every lane from slot-major SoA
    /// values (`vals[slot * lanes + lane]`) over `pattern`.
    ///
    /// Lanes whose replayed pivots collapse get `ok[lane] = false` (a
    /// finite substitute pivot keeps the remaining lanes' arithmetic
    /// clean); `ok` entries are never set back to `true`. `skip`
    /// preserves one lane's current factor values untouched — used to
    /// keep a freshly seeded reference factorization bit-exact.
    fn refactor(
        &mut self,
        pattern: &CscMatrix<T>,
        vals: &[T],
        ok: &mut [bool],
        skip: Option<usize>,
    );

    /// Solves all lanes in place over a row-major SoA right-hand side
    /// (`rhs[row * lanes + lane]`). Degraded lanes produce garbage in
    /// their own lane only.
    fn solve_in_place(&mut self, rhs: &mut [T]);
}

/// CPU implementation of [`BatchedLuSolver`] over the [`SparseLu`]
/// symbolic analysis, with lane loops dispatched through
/// [`LaneKernels`] (AVX2 or scalar, bit-identical either way).
#[derive(Clone, Debug)]
pub struct CpuBatchedLu<T> {
    lanes: usize,
    /// Reference-lane factorization: symbolic pattern, pivot order and
    /// the numeric values of the seeding [`SparseLu::factor`] run.
    seq: SparseLu<T>,
    /// `L` values, lane blocks per stored entry.
    l_vals: Vec<T>,
    /// Strict-upper `U` values, lane blocks per stored entry.
    u_vals: Vec<T>,
    /// Pivots, lane blocks per column.
    diag: Vec<T>,
    /// Dense scatter workspace (`n * lanes`), zero between operations.
    work: Vec<T>,
    /// One lane block of scratch (current pivot column / solve pivot).
    xt: Vec<T>,
    /// Per-lane column maxima for the pivot-degradation test.
    colmax: Vec<f64>,
}

/// How a lane block relates to exact zero, used to replay the scalar
/// code's skip-on-zero shortcuts per lane.
enum BlockClass {
    AllZero,
    AllNonZero,
    Mixed,
}

fn classify<T: Scalar>(block: &[T]) -> BlockClass {
    let nonzero = block.iter().filter(|v| v.modulus() != 0.0).count();
    if nonzero == 0 {
        BlockClass::AllZero
    } else if nonzero == block.len() {
        BlockClass::AllNonZero
    } else {
        BlockClass::Mixed
    }
}

impl<T: Scalar + LaneKernels> CpuBatchedLu<T> {
    /// Builds the batched solver by fully factoring `reference`
    /// (pivot selection runs on its values) and seeding lane
    /// `ref_lane` with that factorization's numeric values.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when the reference matrix has no
    /// usable pivot — the batch has no schedule to share in that case.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or `ref_lane >= lanes`.
    pub fn new(
        reference: &CscMatrix<T>,
        lanes: usize,
        ref_lane: usize,
    ) -> Result<Self, SingularMatrixError> {
        assert!(lanes >= 1, "need at least one lane");
        assert!(ref_lane < lanes, "reference lane out of range");
        let seq = SparseLu::factor(reference)?;
        let n = seq.dim();
        let mut me = CpuBatchedLu {
            lanes,
            l_vals: vec![T::ZERO; seq.l_vals.len() * lanes],
            u_vals: vec![T::ZERO; seq.u_vals.len() * lanes],
            diag: vec![T::ZERO; n * lanes],
            work: vec![T::ZERO; n * lanes],
            xt: vec![T::ZERO; lanes],
            colmax: vec![0.0; lanes],
            seq,
        };
        me.seed_lane(ref_lane);
        Ok(me)
    }

    /// Copies the reference factorization's numeric values into one
    /// lane's slots.
    fn seed_lane(&mut self, lane: usize) {
        let b = self.lanes;
        for (i, &v) in self.seq.l_vals.iter().enumerate() {
            self.l_vals[i * b + lane] = v;
        }
        for (i, &v) in self.seq.u_vals.iter().enumerate() {
            self.u_vals[i * b + lane] = v;
        }
        for (i, &v) in self.seq.diag.iter().enumerate() {
            self.diag[i * b + lane] = v;
        }
    }

    fn refactor_impl(
        &mut self,
        a: &CscMatrix<T>,
        vals: &[T],
        ok: &mut [bool],
        skip: Option<usize>,
    ) {
        let b = self.lanes;
        let n = self.seq.n;
        assert_eq!(a.n, n, "refactor dimension mismatch");
        assert_eq!(vals.len(), a.nnz() * b, "SoA value length mismatch");
        assert_eq!(ok.len(), b, "ok flag length mismatch");
        for k in 0..n {
            let j = self.seq.q[k];
            self.colmax.fill(0.0);
            // Scatter column j of every lane into pivot-row order.
            for idx in a.col_ptr[j]..a.col_ptr[j + 1] {
                let r = self.seq.pinv[a.row_idx[idx]];
                let src = &vals[idx * b..(idx + 1) * b];
                self.work[r * b..(r + 1) * b].copy_from_slice(src);
                for (cm, v) in self.colmax.iter_mut().zip(src) {
                    *cm = cm.max(v.modulus());
                }
            }
            // Eliminate with already-finished columns (ascending pivot
            // positions = topological order, as in the scalar code).
            for idx in self.seq.u_colptr[k]..self.seq.u_colptr[k + 1] {
                let t = self.seq.u_rows[idx];
                self.xt.copy_from_slice(&self.work[t * b..(t + 1) * b]);
                self.work[t * b..(t + 1) * b].fill(T::ZERO);
                self.u_vals[idx * b..(idx + 1) * b].copy_from_slice(&self.xt);
                match classify(&self.xt) {
                    BlockClass::AllZero => {}
                    BlockClass::AllNonZero => {
                        for l in self.seq.l_colptr[t]..self.seq.l_colptr[t + 1] {
                            let r = self.seq.l_rows[l];
                            T::lanes_sub_mul(
                                &mut self.work[r * b..(r + 1) * b],
                                &self.l_vals[l * b..(l + 1) * b],
                                &self.xt,
                            );
                        }
                    }
                    BlockClass::Mixed => {
                        // Replay the scalar skip-on-zero per lane.
                        for l in self.seq.l_colptr[t]..self.seq.l_colptr[t + 1] {
                            let r = self.seq.l_rows[l];
                            for (lane, &x) in self.xt.iter().enumerate() {
                                if x.modulus() != 0.0 {
                                    self.work[r * b + lane] -= self.l_vals[l * b + lane] * x;
                                }
                            }
                        }
                    }
                }
            }
            // Pivot test per lane; degraded lanes keep a finite
            // substitute so their garbage stays lane-contained.
            for (lane, lane_ok) in ok.iter_mut().enumerate() {
                let pivot = self.work[k * b + lane];
                let pmag = pivot.modulus();
                let good = pmag.is_finite()
                    && pmag > PIVOT_EPS
                    && pmag >= REFACTOR_PIVOT_REL * self.colmax[lane];
                if good {
                    self.diag[k * b + lane] = pivot;
                } else {
                    *lane_ok = false;
                    self.diag[k * b + lane] = T::ONE;
                }
            }
            self.work[k * b..(k + 1) * b].fill(T::ZERO);
            // Normalize the L column by the pivot block.
            for l in self.seq.l_colptr[k]..self.seq.l_colptr[k + 1] {
                let r = self.seq.l_rows[l];
                T::lanes_div(
                    &mut self.l_vals[l * b..(l + 1) * b],
                    &self.work[r * b..(r + 1) * b],
                    &self.diag[k * b..(k + 1) * b],
                );
                self.work[r * b..(r + 1) * b].fill(T::ZERO);
            }
        }
        if let Some(lane) = skip {
            self.seed_lane(lane);
        }
    }

    fn solve_impl(&mut self, rhs: &mut [T]) {
        let b = self.lanes;
        let n = self.seq.n;
        assert_eq!(rhs.len(), n * b, "SoA rhs length mismatch");
        // Row permutation: y = P b, lane blocks at a time.
        for i in 0..n {
            let p = self.seq.pinv[i];
            self.work[p * b..(p + 1) * b].copy_from_slice(&rhs[i * b..(i + 1) * b]);
        }
        // Forward substitution with unit-diagonal L.
        for k in 0..n {
            self.xt.copy_from_slice(&self.work[k * b..(k + 1) * b]);
            match classify(&self.xt) {
                BlockClass::AllZero => {}
                BlockClass::AllNonZero => {
                    for l in self.seq.l_colptr[k]..self.seq.l_colptr[k + 1] {
                        let r = self.seq.l_rows[l];
                        T::lanes_sub_mul(
                            &mut self.work[r * b..(r + 1) * b],
                            &self.l_vals[l * b..(l + 1) * b],
                            &self.xt,
                        );
                    }
                }
                BlockClass::Mixed => {
                    for l in self.seq.l_colptr[k]..self.seq.l_colptr[k + 1] {
                        let r = self.seq.l_rows[l];
                        for (lane, &x) in self.xt.iter().enumerate() {
                            if x.modulus() != 0.0 {
                                self.work[r * b + lane] -= self.l_vals[l * b + lane] * x;
                            }
                        }
                    }
                }
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            T::lanes_div(
                &mut self.xt,
                &self.work[k * b..(k + 1) * b],
                &self.diag[k * b..(k + 1) * b],
            );
            self.work[k * b..(k + 1) * b].copy_from_slice(&self.xt);
            match classify(&self.xt) {
                BlockClass::AllZero => {}
                BlockClass::AllNonZero => {
                    for u in self.seq.u_colptr[k]..self.seq.u_colptr[k + 1] {
                        let r = self.seq.u_rows[u];
                        T::lanes_sub_mul(
                            &mut self.work[r * b..(r + 1) * b],
                            &self.u_vals[u * b..(u + 1) * b],
                            &self.xt,
                        );
                    }
                }
                BlockClass::Mixed => {
                    for u in self.seq.u_colptr[k]..self.seq.u_colptr[k + 1] {
                        let r = self.seq.u_rows[u];
                        for (lane, &x) in self.xt.iter().enumerate() {
                            if x.modulus() != 0.0 {
                                self.work[r * b + lane] -= self.u_vals[u * b + lane] * x;
                            }
                        }
                    }
                }
            }
        }
        // Column permutation back to original unknown order; leave the
        // workspace zeroed for the next call.
        for k in 0..n {
            let q = self.seq.q[k];
            rhs[q * b..(q + 1) * b].copy_from_slice(&self.work[k * b..(k + 1) * b]);
            self.work[k * b..(k + 1) * b].fill(T::ZERO);
        }
    }
}

impl<T: Scalar + LaneKernels> BatchedLuSolver<T> for CpuBatchedLu<T> {
    fn dim(&self) -> usize {
        self.seq.dim()
    }

    fn lanes(&self) -> usize {
        self.lanes
    }

    fn refactor(
        &mut self,
        pattern: &CscMatrix<T>,
        vals: &[T],
        ok: &mut [bool],
        skip: Option<usize>,
    ) {
        self.refactor_impl(pattern, vals, ok, skip);
    }

    fn solve_in_place(&mut self, rhs: &mut [T]) {
        self.solve_impl(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Complex, TripletBuilder};

    /// A 5×5 pattern with off-diagonal coupling and fill-in potential.
    fn pattern() -> (CscMatrix<f64>, Vec<usize>) {
        let mut tb = TripletBuilder::new(5);
        let coords = coords();
        for &(r, c) in &coords {
            tb.add(r, c);
        }
        tb.compile::<f64>()
    }

    fn coords() -> Vec<(usize, usize)> {
        vec![
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 4),
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (3, 1),
            (0, 4),
            (4, 0),
            (3, 4),
        ]
    }

    fn lane_value(entry: usize, lane: usize) -> f64 {
        let base = [
            6.0, 7.5, 8.0, 5.5, 9.0, -1.0, -1.5, 0.5, -0.25, 1.25, 0.75, -0.5, 0.3,
        ];
        base[entry] * (1.0 + 0.01 * lane as f64)
    }

    fn lane_csc(lane: usize) -> CscMatrix<f64> {
        let (mut csc, slots) = pattern();
        for (e, &s) in slots.iter().enumerate() {
            csc.values_mut()[s] += lane_value(e, lane);
        }
        csc
    }

    fn soa_vals(lanes: usize) -> (CscMatrix<f64>, Vec<f64>) {
        let (csc, slots) = pattern();
        let mut vals = vec![0.0; csc.nnz() * lanes];
        for lane in 0..lanes {
            for (e, &s) in slots.iter().enumerate() {
                vals[s * lanes + lane] += lane_value(e, lane);
            }
        }
        (csc, vals)
    }

    #[test]
    fn seeded_lane_solves_like_full_factor_bitwise() {
        let a = lane_csc(0);
        let mut blu = CpuBatchedLu::new(&a, 1, 0).unwrap();
        let mut rhs = vec![1.0, -2.0, 0.5, 3.0, 0.0];
        let mut expect = rhs.clone();
        let mut lu = SparseLu::factor(&a).unwrap();
        lu.solve_in_place(&mut expect);
        blu.solve_in_place(&mut rhs);
        assert_eq!(
            rhs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batched_lanes_match_scalar_refactor_bitwise() {
        let lanes = 3;
        let reference = lane_csc(0);
        let (pat, vals) = soa_vals(lanes);
        let mut blu = CpuBatchedLu::new(&reference, lanes, 0).unwrap();
        let mut ok = vec![true; lanes];
        blu.refactor(&pat, &vals, &mut ok, None);
        assert_eq!(ok, vec![true; lanes]);
        let mut rhs_soa = vec![0.0; 5 * lanes];
        for lane in 0..lanes {
            for row in 0..5 {
                rhs_soa[row * lanes + lane] = (row as f64 + 1.0) * (lane as f64 - 1.0);
            }
        }
        blu.solve_in_place(&mut rhs_soa);
        for lane in 0..lanes {
            // Scalar comparator: factor the reference, then refactor to
            // this lane's values — the exact sequence the batch mirrors.
            let mut lu = SparseLu::factor(&reference).unwrap();
            lu.refactor(&lane_csc(lane)).unwrap();
            let mut b: Vec<f64> = (0..5)
                .map(|row| (row as f64 + 1.0) * (lane as f64 - 1.0))
                .collect();
            lu.solve_in_place(&mut b);
            for row in 0..5 {
                assert_eq!(
                    rhs_soa[row * lanes + lane].to_bits(),
                    b[row].to_bits(),
                    "lane {lane} row {row}"
                );
            }
        }
    }

    #[test]
    fn skip_lane_keeps_seeded_factor_values() {
        let lanes = 2;
        let reference = lane_csc(0);
        let (pat, vals) = soa_vals(lanes);
        let mut blu = CpuBatchedLu::new(&reference, lanes, 0).unwrap();
        let mut ok = vec![true; lanes];
        blu.refactor(&pat, &vals, &mut ok, Some(0));
        let mut rhs = vec![0.0; 5 * lanes];
        for row in 0..5 {
            rhs[row * lanes] = row as f64 - 2.0;
        }
        blu.solve_in_place(&mut rhs);
        // Lane 0 must still behave exactly like the plain factor.
        let mut expect: Vec<f64> = (0..5).map(|row| row as f64 - 2.0).collect();
        let mut lu = SparseLu::factor(&reference).unwrap();
        lu.solve_in_place(&mut expect);
        for row in 0..5 {
            assert_eq!(rhs[row * lanes].to_bits(), expect[row].to_bits());
        }
    }

    #[test]
    fn degraded_lane_is_flagged_and_contained() {
        let lanes = 3;
        let reference = lane_csc(0);
        let (pat, mut vals) = soa_vals(lanes);
        // Zero out lane 1 entirely: every pivot collapses.
        for s in 0..pat.nnz() {
            vals[s * lanes + 1] = 0.0;
        }
        let mut blu = CpuBatchedLu::new(&reference, lanes, 0).unwrap();
        let mut ok = vec![true; lanes];
        blu.refactor(&pat, &vals, &mut ok, None);
        assert_eq!(ok, vec![true, false, true]);
        let mut rhs = vec![0.0; 5 * lanes];
        for lane in [0usize, 2] {
            for row in 0..5 {
                rhs[row * lanes + lane] = 1.0 + row as f64 * 0.5;
            }
        }
        blu.solve_in_place(&mut rhs);
        for lane in [0usize, 2] {
            let mut lu = SparseLu::factor(&reference).unwrap();
            lu.refactor(&lane_csc(lane)).unwrap();
            let mut b: Vec<f64> = (0..5).map(|row| 1.0 + row as f64 * 0.5).collect();
            lu.solve_in_place(&mut b);
            for row in 0..5 {
                assert_eq!(rhs[row * lanes + lane].to_bits(), b[row].to_bits());
            }
        }
    }

    #[test]
    fn complex_lanes_match_scalar_refactor() {
        let lanes = 2;
        let (pat, slots) = {
            let mut tb = TripletBuilder::new(3);
            for &(r, c) in &[(0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (2, 0)] {
                tb.add(r, c);
            }
            tb.compile::<Complex>()
        };
        let val = |e: usize, lane: usize| {
            Complex::new(3.0 + e as f64 + lane as f64, 0.5 * e as f64 - lane as f64)
        };
        let mut reference = pat.clone();
        for (e, &s) in slots.iter().enumerate() {
            reference.values_mut()[s] += val(e, 0);
        }
        let mut vals = vec![Complex::ZERO; pat.nnz() * lanes];
        for lane in 0..lanes {
            for (e, &s) in slots.iter().enumerate() {
                vals[s * lanes + lane] += val(e, lane);
            }
        }
        let mut blu = CpuBatchedLu::new(&reference, lanes, 0).unwrap();
        let mut ok = vec![true; lanes];
        blu.refactor(&pat, &vals, &mut ok, None);
        assert_eq!(ok, vec![true; lanes]);
        let mut rhs = vec![Complex::ZERO; 3 * lanes];
        for lane in 0..lanes {
            for row in 0..3 {
                rhs[row * lanes + lane] = Complex::new(row as f64, lane as f64 + 1.0);
            }
        }
        blu.solve_in_place(&mut rhs);
        for lane in 0..lanes {
            let mut lane_m = pat.clone();
            for (e, &s) in slots.iter().enumerate() {
                lane_m.values_mut()[s] += val(e, lane);
            }
            let mut lu = SparseLu::factor(&reference).unwrap();
            lu.refactor(&lane_m).unwrap();
            let mut b: Vec<Complex> = (0..3)
                .map(|row| Complex::new(row as f64, lane as f64 + 1.0))
                .collect();
            lu.solve_in_place(&mut b);
            for row in 0..3 {
                assert_eq!(rhs[row * lanes + lane], b[row], "lane {lane} row {row}");
            }
        }
    }
}
