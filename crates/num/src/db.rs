//! Decibel conversions.
//!
//! RF measurements mix amplitude-ratio dB (`20 log10`) and power-ratio dB
//! (`10 log10`); keeping both behind named functions avoids the classic
//! factor-of-two mistakes.

/// Converts an amplitude (voltage/current) ratio to decibels: `20*log10(x)`.
///
/// Returns `-inf` for `x == 0` and NaN for negative input.
pub fn to_db_amplitude(x: f64) -> f64 {
    20.0 * x.log10()
}

/// Converts a power ratio to decibels: `10*log10(x)`.
pub fn to_db_power(x: f64) -> f64 {
    10.0 * x.log10()
}

/// Inverse of [`to_db_amplitude`].
pub fn from_db_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Inverse of [`to_db_power`].
pub fn from_db_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Power in dBm given power in watts.
pub fn watts_to_dbm(p_watts: f64) -> f64 {
    to_db_power(p_watts / 1e-3)
}

/// Power in watts given dBm.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    from_db_power(dbm) * 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_round_trip() {
        for &x in &[0.001, 0.5, 1.0, 3.3, 1e6] {
            assert!((from_db_amplitude(to_db_amplitude(x)) - x).abs() < 1e-9 * x);
        }
    }

    #[test]
    fn power_round_trip() {
        for &x in &[1e-9, 0.25, 1.0, 40.0] {
            assert!((from_db_power(to_db_power(x)) - x).abs() < 1e-9 * x);
        }
    }

    #[test]
    fn known_values() {
        assert!((to_db_amplitude(10.0) - 20.0).abs() < 1e-12);
        assert!((to_db_power(10.0) - 10.0).abs() < 1e-12);
        assert!((to_db_amplitude(2.0) - 6.0206).abs() < 1e-3);
        assert!((to_db_power(2.0) - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn dbm_reference() {
        assert!((watts_to_dbm(1e-3) - 0.0).abs() < 1e-12);
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-12);
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_amplitude_is_neg_inf() {
        assert!(to_db_amplitude(0.0).is_infinite());
        assert!(to_db_amplitude(0.0) < 0.0);
    }
}
