//! Lane-parallel kernels for the batched variant engine.
//!
//! The batched solvers in [`crate::batched`] keep N circuit variants'
//! numbers side by side ("lanes") and sweep all of them through the same
//! elimination schedule. The inner loops then become elementwise
//! operations over short contiguous lane blocks, which is exactly the
//! shape SIMD units want. This module provides those kernels with
//! runtime feature dispatch:
//!
//! - AVX2 on `x86_64` when the CPU supports it,
//! - a portable scalar fallback everywhere else,
//! - an `AHFIC_SIMD=scalar` environment override so CI (and bug
//!   hunters) can force the fallback on AVX2 hardware.
//!
//! # Determinism contract
//!
//! Every kernel is **bit-identical** between the scalar and AVX2 paths.
//! That is only possible because the kernels stick to operations the
//! vector unit implements with the same IEEE-754 semantics as scalar
//! code: add, subtract, multiply, divide, abs (sign-bit mask) and
//! compare-select. In particular there is **no FMA**: `dst -= a * b` is
//! compiled as an explicit multiply followed by a subtract in both
//! paths. The scalar fallback mirrors `vmaxpd` semantics
//! (`if new > acc { acc = new }`, second operand wins on NaN) so even
//! degenerate inputs reduce identically.

use crate::scalar::Scalar;
use crate::Complex;
use std::sync::OnceLock;

/// Instruction set selected for the lane kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar loops.
    Scalar,
    /// 256-bit AVX2 vectors (x86_64 only).
    Avx2,
}

/// The lane-kernel dispatch level for this process.
///
/// Detected once and cached: AVX2 if the CPU reports it, unless the
/// `AHFIC_SIMD` environment variable is set to `scalar` (any other
/// value is ignored and detection proceeds normally).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if std::env::var("AHFIC_SIMD").as_deref() == Ok("scalar") {
            return SimdLevel::Scalar;
        }
        detect()
    })
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

/// `dst[i] -= a[i] * b[i]` over the common length.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sub_mul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(dst.len(), a.len(), "lane length mismatch");
    assert_eq!(dst.len(), b.len(), "lane length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_level() == SimdLevel::Avx2 {
        // SAFETY: AVX2 support was verified by `simd_level`.
        unsafe { sub_mul_avx2(dst, a, b) };
        return;
    }
    sub_mul_scalar(dst, a, b);
}

/// `dst[i] = num[i] / den[i]` over the common length.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn div(dst: &mut [f64], num: &[f64], den: &[f64]) {
    assert_eq!(dst.len(), num.len(), "lane length mismatch");
    assert_eq!(dst.len(), den.len(), "lane length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_level() == SimdLevel::Avx2 {
        // SAFETY: AVX2 support was verified by `simd_level`.
        unsafe { div_avx2(dst, num, den) };
        return;
    }
    div_scalar(dst, num, den);
}

/// Newton convergence-metric reduction over a contiguous block:
/// `max_i |x_new[i] - x_old[i]| / (reltol * max(|x_new[i]|, |x_old[i]|) + tol_abs)`.
///
/// Returns 0.0 for empty input. The reduction uses `vmaxpd` semantics,
/// so a NaN ratio propagates into the result (callers guard finiteness
/// upstream, as the sequential Newton loop does).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn conv_metric(x_new: &[f64], x_old: &[f64], reltol: f64, tol_abs: f64) -> f64 {
    assert_eq!(x_new.len(), x_old.len(), "lane length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_level() == SimdLevel::Avx2 {
        // SAFETY: AVX2 support was verified by `simd_level`.
        return unsafe { conv_metric_avx2(x_new, x_old, reltol, tol_abs) };
    }
    conv_metric_scalar(x_new, x_old, reltol, tol_abs)
}

/// `vmaxpd(acc, v)`: keep `acc` only when it compares greater; the
/// second operand wins ties and NaNs, exactly like the AVX2 instruction.
#[inline]
fn maxpd(acc: f64, v: f64) -> f64 {
    if acc > v {
        acc
    } else {
        v
    }
}

pub(crate) fn sub_mul_scalar(dst: &mut [f64], a: &[f64], b: &[f64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d -= x * y;
    }
}

pub(crate) fn div_scalar(dst: &mut [f64], num: &[f64], den: &[f64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(num).zip(den) {
        *d = x / y;
    }
}

pub(crate) fn conv_metric_scalar(x_new: &[f64], x_old: &[f64], reltol: f64, tol_abs: f64) -> f64 {
    let mut m = 0.0f64;
    for (&xn, &xo) in x_new.iter().zip(x_old) {
        let diff = (xn - xo).abs();
        let tol = reltol * maxpd(xn.abs(), xo.abs()) + tol_abs;
        m = maxpd(m, diff / tol);
    }
    m
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::maxpd;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Clears the sign bit of each lane (IEEE abs, exact).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn abs_pd(v: __m256d) -> __m256d {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), v)
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and all slices share a length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn sub_mul_avx2(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm256_loadu_pd(dst.as_ptr().add(i));
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let bv = _mm256_loadu_pd(b.as_ptr().add(i));
            // Multiply then subtract — no FMA, to stay bit-identical
            // with the scalar fallback.
            let prod = _mm256_mul_pd(av, bv);
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_sub_pd(d, prod));
            i += 4;
        }
        while i < n {
            dst[i] -= a[i] * b[i];
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and all slices share a length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn div_avx2(dst: &mut [f64], num: &[f64], den: &[f64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            let nv = _mm256_loadu_pd(num.as_ptr().add(i));
            let dv = _mm256_loadu_pd(den.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_div_pd(nv, dv));
            i += 4;
        }
        while i < n {
            dst[i] = num[i] / den[i];
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and both slices share a length.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn conv_metric_avx2(
        x_new: &[f64],
        x_old: &[f64],
        reltol: f64,
        tol_abs: f64,
    ) -> f64 {
        let n = x_new.len();
        let rt = _mm256_set1_pd(reltol);
        let ta = _mm256_set1_pd(tol_abs);
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let xn = _mm256_loadu_pd(x_new.as_ptr().add(i));
            let xo = _mm256_loadu_pd(x_old.as_ptr().add(i));
            let diff = abs_pd(_mm256_sub_pd(xn, xo));
            let mag = _mm256_max_pd(abs_pd(xn), abs_pd(xo));
            let tol = _mm256_add_pd(_mm256_mul_pd(rt, mag), ta);
            acc = _mm256_max_pd(acc, _mm256_div_pd(diff, tol));
            i += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        // Reduce in lane order with the same maxpd rule the vector loop
        // used, so the scalar tail and the horizontal fold agree with
        // the pure-scalar path bit for bit.
        let mut m = 0.0f64;
        for &l in &lanes {
            m = maxpd(m, l);
        }
        while i < n {
            let diff = (x_new[i] - x_old[i]).abs();
            let tol = reltol * maxpd(x_new[i].abs(), x_old[i].abs()) + tol_abs;
            m = maxpd(m, diff / tol);
            i += 1;
        }
        m
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{conv_metric_avx2, div_avx2, sub_mul_avx2};

/// Elementwise lane operations a scalar type must provide so the
/// batched LU sweeps can run over it.
///
/// The `f64` implementation dispatches to the SIMD kernels above; the
/// [`Complex`] implementation uses plain loops (a complex multiply is
/// not a single vector op, and the AC solves are dominated by assembly
/// anyway). Both obey the same arithmetic contract: multiply **then**
/// subtract, no fused operations.
pub trait LaneKernels: Scalar {
    /// `dst[i] -= a[i] * b[i]`.
    fn lanes_sub_mul(dst: &mut [Self], a: &[Self], b: &[Self]);

    /// `dst[i] = num[i] / den[i]`.
    fn lanes_div(dst: &mut [Self], num: &[Self], den: &[Self]);
}

impl LaneKernels for f64 {
    #[inline]
    fn lanes_sub_mul(dst: &mut [f64], a: &[f64], b: &[f64]) {
        sub_mul(dst, a, b);
    }

    #[inline]
    fn lanes_div(dst: &mut [f64], num: &[f64], den: &[f64]) {
        div(dst, num, den);
    }
}

impl LaneKernels for Complex {
    fn lanes_sub_mul(dst: &mut [Complex], a: &[Complex], b: &[Complex]) {
        assert_eq!(dst.len(), a.len(), "lane length mismatch");
        assert_eq!(dst.len(), b.len(), "lane length mismatch");
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d -= x * y;
        }
    }

    fn lanes_div(dst: &mut [Complex], num: &[Complex], den: &[Complex]) {
        assert_eq!(dst.len(), num.len(), "lane length mismatch");
        assert_eq!(dst.len(), den.len(), "lane length mismatch");
        for ((d, &x), &y) in dst.iter_mut().zip(num).zip(den) {
            *d = x / y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggle(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic, sign-varying, wide-dynamic-range values.
        (0..n)
            .map(|i| {
                let k = (seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    % 1000) as f64;
                (k - 500.0) * (1.5f64).powi((i % 40) as i32 - 20)
            })
            .collect()
    }

    #[test]
    fn scalar_and_dispatched_sub_mul_agree_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 8, 17, 64] {
            let a = wiggle(n, 1);
            let b = wiggle(n, 2);
            let mut d1 = wiggle(n, 3);
            let mut d2 = d1.clone();
            sub_mul_scalar(&mut d1, &a, &b);
            sub_mul(&mut d2, &a, &b);
            assert_eq!(
                d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn scalar_and_dispatched_div_agree_bitwise() {
        for n in [0usize, 1, 5, 12, 64] {
            let num = wiggle(n, 4);
            let mut den = wiggle(n, 5);
            for v in &mut den {
                if *v == 0.0 {
                    *v = 1.0;
                }
            }
            let mut d1 = vec![0.0; n];
            let mut d2 = vec![0.0; n];
            div_scalar(&mut d1, &num, &den);
            div(&mut d2, &num, &den);
            assert_eq!(
                d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn scalar_and_dispatched_conv_metric_agree_bitwise() {
        for n in [0usize, 1, 4, 6, 33] {
            let xn = wiggle(n, 6);
            let xo = wiggle(n, 7);
            let m1 = conv_metric_scalar(&xn, &xo, 1e-3, 1e-9);
            let m2 = conv_metric(&xn, &xo, 1e-3, 1e-9);
            assert_eq!(m1.to_bits(), m2.to_bits(), "n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_paths_are_bit_identical_to_scalar() {
        // Direct comparison that does not depend on the process-wide
        // dispatch decision (which AHFIC_SIMD may have pinned).
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for n in [1usize, 4, 7, 16, 63] {
            let a = wiggle(n, 11);
            let b = wiggle(n, 12);
            let mut d1 = wiggle(n, 13);
            let mut d2 = d1.clone();
            sub_mul_scalar(&mut d1, &a, &b);
            // SAFETY: AVX2 presence checked above.
            unsafe { sub_mul_avx2(&mut d2, &a, &b) };
            assert_eq!(
                d1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );

            let mut q1 = vec![0.0; n];
            let mut q2 = vec![0.0; n];
            let mut den = wiggle(n, 14);
            for v in &mut den {
                if *v == 0.0 {
                    *v = 2.0;
                }
            }
            div_scalar(&mut q1, &a, &den);
            // SAFETY: AVX2 presence checked above.
            unsafe { div_avx2(&mut q2, &a, &den) };
            assert_eq!(q1, q2);

            let m1 = conv_metric_scalar(&a, &b, 1e-3, 1e-12);
            // SAFETY: AVX2 presence checked above.
            let m2 = unsafe { conv_metric_avx2(&a, &b, 1e-3, 1e-12) };
            assert_eq!(m1.to_bits(), m2.to_bits());
        }
    }

    #[test]
    fn complex_lane_kernels_match_scalar_ops() {
        let a: Vec<Complex> = (0..9)
            .map(|i| Complex::new(i as f64, -0.5 * i as f64))
            .collect();
        let b: Vec<Complex> = (0..9).map(|i| Complex::new(1.0 + i as f64, 0.25)).collect();
        let mut d: Vec<Complex> = (0..9).map(|i| Complex::new(0.5, i as f64)).collect();
        let expect: Vec<Complex> = d
            .iter()
            .zip(a.iter().zip(&b))
            .map(|(&d, (&a, &b))| d - a * b)
            .collect();
        Complex::lanes_sub_mul(&mut d, &a, &b);
        assert_eq!(d, expect);
        let mut q = vec![Complex::ZERO; 9];
        Complex::lanes_div(&mut q, &a, &b);
        for i in 0..9 {
            assert_eq!(q[i], a[i] / b[i]);
        }
    }
}
