//! ILU(0): incomplete LU factorization on the matrix's own sparsity
//! pattern, used as a right preconditioner for GMRES.
//!
//! The factorization never allocates fill-in — `L` and `U` live on
//! exactly the nonzero positions of `A` — so it is cheap enough to
//! refresh every Newton iteration (pure numeric work once the structure
//! is built, mirroring the [`SparseLu::refactor`] contract).
//!
//! Two MNA-specific wrinkles shape the implementation:
//!
//! * Circuit matrices arrive in CSC (stamp-compile order), but ILU(0)'s
//!   row-wise IKJ elimination wants CSR. The constructor builds a CSR
//!   mirror once, with a position map back into the CSC value array so
//!   refreshes are a single gather pass.
//! * Voltage-source branch rows have *structurally zero* diagonals, so a
//!   plain ILU(0) pivot would divide by zero. Pivots are kept in a
//!   separate array with a unit fallback for missing/tiny diagonals —
//!   safe here because the result is only a preconditioner: a weak pivot
//!   costs GMRES iterations, never correctness.
//!
//! [`SparseLu::refactor`]: crate::sparse::SparseLu::refactor

use crate::gmres::Preconditioner;
use crate::scalar::Scalar;
use crate::sparse::CscMatrix;

/// Pivot magnitudes below this fall back to the unit pivot.
const TINY_PIVOT: f64 = 1e-30;

/// An ILU(0) factorization of a [`CscMatrix`], applied as `z = U⁻¹L⁻¹r`.
#[derive(Clone, Debug)]
pub struct Ilu0<T> {
    n: usize,
    /// CSR row extents into `col_idx`/`vals`.
    row_ptr: Vec<usize>,
    /// Column index per CSR entry, ascending within each row.
    col_idx: Vec<usize>,
    /// Factored values: strict lower part holds `L` (unit diagonal
    /// implicit), upper part holds `U`.
    vals: Vec<T>,
    /// CSR position → CSC value index, for refreshes.
    csc_map: Vec<usize>,
    /// CSR position of each row's diagonal, `usize::MAX` if absent.
    diag_pos: Vec<usize>,
    /// Effective pivot per row (structural zeros replaced by one).
    pivot: Vec<T>,
}

impl<T: Scalar> Ilu0<T> {
    /// Builds the CSR mirror of `a`'s pattern and factors its values.
    pub fn new(a: &CscMatrix<T>) -> Self {
        let n = a.n();
        let nnz = a.nnz();
        let mut row_counts = vec![0usize; n];
        for &r in &a.row_idx {
            row_counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; n + 1];
        for i in 0..n {
            row_ptr[i + 1] = row_ptr[i] + row_counts[i];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut csc_map = vec![0usize; nnz];
        // Walking columns in ascending order leaves each CSR row sorted
        // by column, which the elimination below relies on.
        for j in 0..n {
            for k in a.col_ptr[j]..a.col_ptr[j + 1] {
                let r = a.row_idx[k];
                let pos = next[r];
                next[r] += 1;
                col_idx[pos] = j;
                csc_map[pos] = k;
            }
        }
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            let range = row_ptr[i]..row_ptr[i + 1];
            if let Some(off) = col_idx[range.clone()].iter().position(|&c| c == i) {
                diag_pos[i] = range.start + off;
            }
        }
        let mut ilu = Ilu0 {
            n,
            row_ptr,
            col_idx,
            vals: vec![T::ZERO; nnz],
            csc_map,
            diag_pos,
            pivot: vec![T::ONE; n],
        };
        ilu.refresh(a);
        ilu
    }

    /// True when `a` has the same shape this factorization was built for.
    /// (Pattern identity is the caller's contract — the solver tier
    /// invalidates its preconditioner whenever the stamp pattern
    /// recompiles.)
    pub fn matches(&self, a: &CscMatrix<T>) -> bool {
        a.n() == self.n && a.nnz() == self.vals.len()
    }

    /// Re-gathers `a`'s values through the CSC map and refactors.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s shape differs from the matrix this was built for
    /// (check [`Ilu0::matches`] first).
    pub fn refresh(&mut self, a: &CscMatrix<T>) {
        assert!(self.matches(a), "ILU pattern mismatch");
        let avals = a.values();
        for (v, &src) in self.vals.iter_mut().zip(&self.csc_map) {
            *v = avals[src];
        }
        self.factor();
    }

    /// Row-wise IKJ elimination restricted to the existing pattern.
    fn factor(&mut self) {
        let n = self.n;
        // Marker array: column → CSR position within the current row.
        let mut iw = vec![usize::MAX; n];
        for i in 0..n {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            for pos in lo..hi {
                iw[self.col_idx[pos]] = pos;
            }
            for pos in lo..hi {
                let k = self.col_idx[pos];
                if k >= i {
                    break;
                }
                // L(i,k) = a(i,k) / pivot(k); update the rest of row i
                // against row k of U, dropping outside the pattern.
                let lik = self.vals[pos] / self.pivot[k];
                self.vals[pos] = lik;
                let kd = self.diag_pos[k];
                let kend = self.row_ptr[k + 1];
                let kstart = if kd == usize::MAX {
                    // No diagonal in row k: everything right of column k
                    // belongs to U.
                    let mut s = self.row_ptr[k];
                    while s < kend && self.col_idx[s] <= k {
                        s += 1;
                    }
                    s
                } else {
                    kd + 1
                };
                for kp in kstart..kend {
                    let j = self.col_idx[kp];
                    let tgt = iw[j];
                    if tgt != usize::MAX {
                        let ukj = self.vals[kp];
                        let delta = lik * ukj;
                        self.vals[tgt] -= delta;
                    }
                }
            }
            let d = if self.diag_pos[i] != usize::MAX {
                self.vals[self.diag_pos[i]]
            } else {
                T::ZERO
            };
            self.pivot[i] = if d.modulus() > TINY_PIVOT { d } else { T::ONE };
            for pos in lo..hi {
                iw[self.col_idx[pos]] = usize::MAX;
            }
        }
    }
}

impl<T: Scalar> Preconditioner<T> for Ilu0<T> {
    fn apply(&self, r: &[T], z: &mut [T]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        // Forward solve L·y = r (unit diagonal).
        for i in 0..self.n {
            let mut acc = r[i];
            for pos in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[pos];
                if j >= i {
                    break;
                }
                acc -= self.vals[pos] * z[j];
            }
            z[i] = acc;
        }
        // Backward solve U·z = y using the effective pivots.
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            for pos in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[pos];
                if j > i {
                    acc -= self.vals[pos] * z[j];
                }
            }
            z[i] = acc / self.pivot[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::{gmres, GmresOptions};
    use crate::sparse::TripletBuilder;

    /// Tridiagonal test matrix with a tunable diagonal.
    fn tridiag(n: usize, diag: f64) -> CscMatrix<f64> {
        let mut tb = TripletBuilder::new(n);
        for i in 0..n {
            tb.add(i, i);
            if i + 1 < n {
                tb.add(i, i + 1);
                tb.add(i + 1, i);
            }
        }
        let (mut csc, slots) = tb.compile::<f64>();
        let mut si = slots.iter();
        for i in 0..n {
            csc.values_mut()[*si.next().unwrap()] = diag + 0.01 * i as f64;
            if i + 1 < n {
                csc.values_mut()[*si.next().unwrap()] = -1.0;
                csc.values_mut()[*si.next().unwrap()] = -1.0;
            }
        }
        csc
    }

    #[test]
    fn exact_for_tridiagonal() {
        // ILU(0) on a tridiagonal matrix is a *complete* LU (no fill
        // exists to drop), so M⁻¹A = I and GMRES converges in one step.
        let a = tridiag(10, 4.0);
        let ilu = Ilu0::new(&a);
        let b: Vec<f64> = (0..10).map(|i| 1.0 + i as f64).collect();
        let mut x = vec![0.0; 10];
        let out = gmres(&mut (&a), &ilu, &b, &mut x, &GmresOptions::default());
        assert!(out.converged);
        assert!(out.iterations <= 2, "expected ≈1 iter, got {out:?}");
        let mut ax = vec![0.0; 10];
        a.mul_vec_into(&x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn refresh_tracks_new_values() {
        let a = tridiag(8, 4.0);
        let mut ilu = Ilu0::new(&a);
        let a2 = tridiag(8, 7.0);
        assert!(ilu.matches(&a2));
        ilu.refresh(&a2);
        let b = vec![1.0; 8];
        let mut x = vec![0.0; 8];
        let out = gmres(&mut (&a2), &ilu, &b, &mut x, &GmresOptions::default());
        assert!(out.converged && out.iterations <= 2, "{out:?}");
    }

    #[test]
    fn zero_structural_diagonal_falls_back() {
        // 2×2 MNA-style saddle: [[g, 1], [1, 0]] — the branch row has no
        // diagonal. The preconditioner must stay finite and usable.
        let mut tb = TripletBuilder::new(2);
        tb.add(0, 0);
        tb.add(0, 1);
        tb.add(1, 0);
        let (mut csc, slots) = tb.compile::<f64>();
        csc.values_mut()[slots[0]] = 1e-3;
        csc.values_mut()[slots[1]] = 1.0;
        csc.values_mut()[slots[2]] = 1.0;
        let ilu = Ilu0::new(&csc);
        let b = [1.0, 2.0];
        let mut x = vec![0.0; 2];
        let out = gmres(&mut (&csc), &ilu, &b, &mut x, &GmresOptions::default());
        assert!(out.converged, "{out:?}");
        // True solution: x = [2, 1 − 2e-3].
        assert!((x[0] - 2.0).abs() < 1e-8, "{x:?}");
        assert!((x[1] - (1.0 - 2e-3)).abs() < 1e-8, "{x:?}");
    }
}
