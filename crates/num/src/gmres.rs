//! Restarted GMRES with right preconditioning.
//!
//! The Krylov tier exists for two callers with very different matrices:
//!
//! * the MNA solve path, where the operator is a compiled [`CscMatrix`]
//!   and an ILU(0) preconditioner makes the iteration converge in a
//!   handful of steps, and
//! * shooting-Newton periodic steady state, where the operator is the
//!   *monodromy* sensitivity map `v ↦ (M − I)·v` that is never formed —
//!   each application integrates the circuit over one period.
//!
//! Both reduce to the same [`LinearOperator`] trait: a dimension and a
//! matrix-vector product. GMRES itself is the textbook restarted
//! formulation (Saad, *Iterative Methods for Sparse Linear Systems*,
//! ch. 6): Arnoldi with modified Gram–Schmidt, the Hessenberg system
//! reduced incrementally by Givens rotations so the residual norm is
//! available every iteration without a solve.
//!
//! Everything is generic over [`Scalar`] with the complex-safe rotation
//! `c = |a|/t`, `s = (a/|a|)·conj(b)/t`, which degenerates to the familiar
//! real rotation when `T = f64` (where `conj` is the identity).

use crate::scalar::Scalar;
use crate::sparse::CscMatrix;

/// A linear map `y = A·x`, possibly matrix-free.
///
/// `apply` takes `&mut self` so matrix-free operators (e.g. the shooting
/// monodromy map, which re-integrates the circuit per product) can reuse
/// internal scratch state between applications.
pub trait LinearOperator<T: Scalar> {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Computes `y = A·x`. Both slices have length [`LinearOperator::dim`].
    fn apply(&mut self, x: &[T], y: &mut [T]);
}

impl<T: Scalar> LinearOperator<T> for &CscMatrix<T> {
    fn dim(&self) -> usize {
        self.n()
    }

    fn apply(&mut self, x: &[T], y: &mut [T]) {
        self.mul_vec_into(x, y);
    }
}

/// Right preconditioner: computes `z = M⁻¹·r`.
///
/// Right preconditioning keeps the *true* residual `b − A·x` as the
/// quantity GMRES monitors, so the convergence tolerance keeps its
/// meaning regardless of how crude `M` is.
pub trait Preconditioner<T: Scalar> {
    /// Applies the inverse preconditioner: `z = M⁻¹·r`.
    fn apply(&self, r: &[T], z: &mut [T]);
}

/// The no-op preconditioner (`M = I`) for matrix-free callers.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityPrecond;

impl<T: Scalar> Preconditioner<T> for IdentityPrecond {
    fn apply(&self, r: &[T], z: &mut [T]) {
        z.copy_from_slice(r);
    }
}

/// Knobs for the restarted iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GmresOptions {
    /// Krylov subspace dimension before a restart (Saad's `m`).
    pub restart: usize,
    /// Relative residual target: converged when `‖b − A·x‖ ≤ tol·‖b‖`.
    pub tol: f64,
    /// Total matvec budget across all restart cycles.
    pub max_iters: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 30,
            tol: 1e-10,
            max_iters: 400,
        }
    }
}

/// What a [`gmres`] run did, whether or not it converged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GmresOutcome {
    /// True when the relative-residual target was met.
    pub converged: bool,
    /// Inner (Arnoldi) iterations consumed, i.e. operator applications
    /// beyond the per-cycle residual evaluation.
    pub iterations: usize,
    /// Restart cycles *beyond* the first.
    pub restarts: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖` estimate.
    pub residual: f64,
    /// True when the run bailed early because two consecutive restart
    /// cycles made no residual progress (preconditioner lost its grip)
    /// — iterating further would only burn the matvec budget.
    pub stagnated: bool,
}

fn norm<T: Scalar>(v: &[T]) -> f64 {
    v.iter()
        .map(|x| x.modulus() * x.modulus())
        .sum::<f64>()
        .sqrt()
}

fn dot_conj<T: Scalar>(u: &[T], w: &[T]) -> T {
    let mut acc = T::ZERO;
    for (&ui, &wi) in u.iter().zip(w) {
        acc += ui.conj() * wi;
    }
    acc
}

fn scale_into<T: Scalar>(v: &mut [T], k: f64) {
    let k = T::from_f64(k);
    for x in v {
        *x = *x * k;
    }
}

/// Solves `A·x = b` by restarted GMRES, overwriting `x` (whose incoming
/// contents seed the iteration — pass zeros for a cold start).
///
/// `precond` is applied on the right: the iteration builds the Krylov
/// space of `A·M⁻¹` and maps the coefficients back through `M⁻¹` when
/// forming the update, so the reported residual is the true one.
///
/// # Panics
///
/// Panics if `b`/`x` lengths disagree with `op.dim()` or if
/// `opts.restart` is zero.
pub fn gmres<T: Scalar>(
    op: &mut dyn LinearOperator<T>,
    precond: &dyn Preconditioner<T>,
    b: &[T],
    x: &mut [T],
    opts: &GmresOptions,
) -> GmresOutcome {
    let n = op.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(x.len(), n, "solution length mismatch");
    assert!(opts.restart > 0, "restart must be positive");

    let mut out = GmresOutcome {
        converged: false,
        iterations: 0,
        restarts: 0,
        residual: 0.0,
        stagnated: false,
    };
    if n == 0 {
        out.converged = true;
        return out;
    }
    let bnorm = norm(b);
    if bnorm == 0.0 {
        x.fill(T::ZERO);
        out.converged = true;
        return out;
    }
    let target = opts.tol * bnorm;
    let m = opts.restart.min(n).min(opts.max_iters.max(1));

    // Arnoldi basis and scratch. `basis[i]` is vᵢ; `z`/`w` hold M⁻¹vⱼ and
    // A·M⁻¹vⱼ; `hcol[j]` stores Hessenberg column j (length j+2).
    let mut basis: Vec<Vec<T>> = Vec::with_capacity(m + 1);
    let mut z = vec![T::ZERO; n];
    let mut w = vec![T::ZERO; n];
    let mut hcols: Vec<Vec<T>> = Vec::with_capacity(m);
    let mut giv_c: Vec<T> = Vec::with_capacity(m);
    let mut giv_s: Vec<T> = Vec::with_capacity(m);
    let mut g: Vec<T> = Vec::with_capacity(m + 1);

    let mut first_cycle = true;
    let mut prev_cycle_rel = f64::INFINITY;
    let mut stagnant_cycles = 0u32;
    loop {
        // True residual r = b − A·x.
        op.apply(x, &mut w);
        let mut r: Vec<T> = b.iter().zip(&w).map(|(&bi, &axi)| bi - axi).collect();
        let beta = norm(&r);
        out.residual = beta / bnorm;
        if beta <= target {
            out.converged = true;
            return out;
        }
        if out.iterations >= opts.max_iters {
            return out;
        }
        // Stagnation bail: two consecutive restart cycles that each
        // shaved less than 0.1% off the true residual mean the Krylov
        // space (as preconditioned) has nothing left to offer — stop
        // here so the caller can fall back to a direct solve instead of
        // burning the rest of the matvec budget on a plateau. One flat
        // cycle is not enough: weakly preconditioned solves creeping
        // toward tolerance can have a slow cycle while still making
        // real progress, and must not be cut over to direct-LU cost
        // (or a typed NoConvergence) prematurely.
        if out.residual >= prev_cycle_rel * 0.999 {
            stagnant_cycles += 1;
            if stagnant_cycles >= 2 {
                out.stagnated = true;
                return out;
            }
        } else {
            stagnant_cycles = 0;
        }
        prev_cycle_rel = out.residual;
        if !first_cycle {
            out.restarts += 1;
        }
        first_cycle = false;

        scale_into(&mut r, 1.0 / beta);
        basis.clear();
        basis.push(r);
        hcols.clear();
        giv_c.clear();
        giv_s.clear();
        g.clear();
        g.push(T::from_f64(beta));

        let mut k = 0; // columns accumulated this cycle
        while k < m && out.iterations < opts.max_iters {
            let j = k;
            precond.apply(&basis[j], &mut z);
            op.apply(&z, &mut w);
            out.iterations += 1;

            // Modified Gram–Schmidt against the basis so far.
            let mut hcol = Vec::with_capacity(j + 2);
            for vi in basis.iter().take(j + 1) {
                let hij = dot_conj(vi, &w);
                for (wx, &vx) in w.iter_mut().zip(vi) {
                    *wx -= hij * vx;
                }
                hcol.push(hij);
            }
            let hnext = norm(&w);
            hcol.push(T::from_f64(hnext));

            // Apply the accumulated rotations to the new column, then
            // compute this column's rotation to annihilate the subdiagonal.
            for i in 0..j {
                let a = hcol[i];
                let b2 = hcol[i + 1];
                hcol[i] = giv_c[i] * a + giv_s[i] * b2;
                hcol[i + 1] = giv_c[i] * b2 - giv_s[i].conj() * a;
            }
            let a = hcol[j];
            let b2 = hcol[j + 1];
            let amod = a.modulus();
            let t = (amod * amod + hnext * hnext).sqrt();
            let (c, s) = if t == 0.0 {
                (T::ONE, T::ZERO)
            } else if amod == 0.0 {
                // Pure subdiagonal: rotate it straight onto the diagonal.
                (T::ZERO, b2.conj() * T::from_f64(1.0 / hnext))
            } else {
                let c = T::from_f64(amod / t);
                let phase = a * T::from_f64(1.0 / amod);
                (c, phase * b2.conj() * T::from_f64(1.0 / t))
            };
            hcol[j] = c * a + s * b2;
            hcol[j + 1] = T::ZERO;
            let gj = g[j];
            g.push(T::ZERO - s.conj() * gj);
            g[j] = c * gj;
            giv_c.push(c);
            giv_s.push(s);
            hcols.push(hcol);
            k += 1;

            out.residual = g[k].modulus() / bnorm;
            let happy = hnext <= f64::EPSILON * t.max(1.0);
            if g[k].modulus() <= target || happy {
                break;
            }
            scale_into(&mut w, 1.0 / hnext);
            basis.push(w.clone());
        }

        if k == 0 {
            // No progress possible (operator returned zero on the residual
            // direction); report the stagnant residual.
            return out;
        }

        // Back-substitute the k×k triangular system R·y = g.
        let mut y = vec![T::ZERO; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (jj, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                acc -= hcols[jj][i] * *yj;
            }
            y[i] = acc / hcols[i][i];
        }
        // x += M⁻¹·(V·y): accumulate the basis combination, precondition
        // once, and add.
        w.fill(T::ZERO);
        for (vi, &yi) in basis.iter().zip(&y) {
            for (wx, &vx) in w.iter_mut().zip(vi) {
                *wx += vx * yi;
            }
        }
        precond.apply(&w, &mut z);
        for (xi, &zi) in x.iter_mut().zip(&z) {
            *xi += zi;
        }

        if out.residual <= opts.tol || out.iterations >= opts.max_iters {
            // Confirm against the true residual on the next loop entry;
            // the rotation estimate can drift slightly after restarts.
            op.apply(x, &mut w);
            let resid = b
                .iter()
                .zip(&w)
                .map(|(&bi, &axi)| {
                    let d = bi - axi;
                    d.modulus() * d.modulus()
                })
                .sum::<f64>()
                .sqrt();
            out.residual = resid / bnorm;
            out.converged = resid <= target * (1.0 + 1e-12);
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::matrix::Matrix;
    use crate::sparse::TripletBuilder;

    fn dense_op<T: Scalar>(m: Matrix<T>) -> impl LinearOperator<T> {
        struct DenseOp<T>(Matrix<T>);
        impl<T: Scalar> LinearOperator<T> for DenseOp<T> {
            fn dim(&self) -> usize {
                self.0.rows()
            }
            fn apply(&mut self, x: &[T], y: &mut [T]) {
                y.copy_from_slice(&self.0.mul_vec(x));
            }
        }
        DenseOp(m)
    }

    #[test]
    fn solves_small_real_system() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0][..],
            &[1.0, 3.0, 1.0][..],
            &[0.0, 1.0, 2.0][..],
        ]);
        let b = [1.0, 2.0, 3.0];
        let expect = crate::lu::solve(a.clone(), &b).unwrap();
        let mut op = dense_op(a);
        let mut x = vec![0.0; 3];
        let out = gmres(
            &mut op,
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions::default(),
        );
        assert!(out.converged, "did not converge: {out:?}");
        for (xi, ei) in x.iter().zip(&expect) {
            assert!((xi - ei).abs() < 1e-8, "{x:?} vs {expect:?}");
        }
    }

    #[test]
    fn solves_complex_system() {
        let a = Matrix::from_rows(&[
            &[Complex::new(3.0, 1.0), Complex::new(0.5, -0.2)][..],
            &[Complex::new(-0.1, 0.4), Complex::new(2.0, -1.0)][..],
        ]);
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let expect = crate::lu::solve(a.clone(), &b).unwrap();
        let mut op = dense_op(a);
        let mut x = vec![Complex::ZERO; 2];
        let out = gmres(
            &mut op,
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions::default(),
        );
        assert!(out.converged, "did not converge: {out:?}");
        for (xi, ei) in x.iter().zip(&expect) {
            assert!((*xi - *ei).abs() < 1e-8, "{x:?} vs {expect:?}");
        }
    }

    #[test]
    fn restart_path_still_converges() {
        // A 12×12 diagonally dominant sparse system with restart=3 forces
        // several cycles through the restart bookkeeping.
        let n = 12;
        let mut tb = TripletBuilder::new(n);
        for i in 0..n {
            tb.add(i, i);
            if i + 1 < n {
                tb.add(i, i + 1);
                tb.add(i + 1, i);
            }
        }
        let (mut csc, slots) = tb.compile();
        let mut si = slots.iter();
        for i in 0..n {
            csc.values_mut()[*si.next().unwrap()] = 4.0 + i as f64 * 0.1;
            if i + 1 < n {
                csc.values_mut()[*si.next().unwrap()] = -1.0;
                csc.values_mut()[*si.next().unwrap()] = -0.5;
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut x = vec![0.0; n];
        let mut op = &csc;
        let out = gmres(
            &mut op,
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 3,
                tol: 1e-10,
                max_iters: 400,
            },
        );
        assert!(out.converged, "{out:?}");
        assert!(out.restarts > 0, "expected restarts: {out:?}");
        // Verify against the residual directly.
        let mut ax = vec![0.0; n];
        csc.mul_vec_into(&x, &mut ax);
        let resid: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        assert!(resid < 1e-8, "residual {resid}");
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = Matrix::from_rows(&[&[2.0, 0.0][..], &[0.0, 2.0][..]]);
        let mut op = dense_op(a);
        let mut x = vec![5.0, -3.0];
        let out = gmres(
            &mut op,
            &IdentityPrecond,
            &[0.0, 0.0],
            &mut x,
            &GmresOptions::default(),
        );
        assert!(out.converged);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(out.iterations, 0);
    }
}
