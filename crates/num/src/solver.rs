//! The pluggable linear-solver tier: one trait, three backends.
//!
//! Every analysis in `ahfic-spice` — operating point, transient, AC,
//! noise, the batched variant engine, and periodic steady state — funnels
//! its inner linear solves through [`LinearSolver`]. The trait separates
//! *what* is solved (a [`SystemRef`] view of the assembled MNA matrix)
//! from *how*:
//!
//! * [`DenseLuSolver`] — partial-pivot LU on a dense [`Matrix`],
//!   refactoring into reused buffers ([`LuFactors`] semantics unchanged);
//! * [`SparseLuSolver`] — the Gilbert–Peierls CSC LU with symbolic-pattern
//!   replay ([`SparseLu`] semantics unchanged);
//! * [`GmresIluSolver`] — restarted GMRES right-preconditioned by ILU(0),
//!   for the large Jacobians periodic steady state produces, where a
//!   direct factorization's fill-in dominates.
//!
//! The two LU backends reproduce the exact factor/refactor/fallback
//! sequences the analyses used before this tier existed, so Dense and
//! Sparse results are bit-identical to the hard-wired paths they replace.
//!
//! `solve` re-receives the system view rather than caching it at
//! `prepare` time: the Krylov backend performs its matvecs against the
//! live matrix without storing a copy, and the LU backends simply ignore
//! the argument.

use crate::gmres::{gmres, GmresOptions, IdentityPrecond, LinearOperator};
use crate::ilu::Ilu0;
use crate::lu::{LuFactors, SingularMatrixError};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::sparse::{CscMatrix, SparseLu};
use std::fmt;

/// Borrowed view of an assembled linear system.
#[derive(Clone, Copy)]
pub enum SystemRef<'a, T: Scalar> {
    /// Dense storage.
    Dense(&'a Matrix<T>),
    /// Compressed-sparse-column storage.
    Sparse(&'a CscMatrix<T>),
}

impl<T: Scalar> SystemRef<'_, T> {
    /// System dimension.
    pub fn dim(&self) -> usize {
        match self {
            SystemRef::Dense(m) => m.rows(),
            SystemRef::Sparse(m) => m.n(),
        }
    }
}

/// Why a [`LinearSolver`] could not produce a solution.
#[derive(Clone, Debug, PartialEq)]
pub enum LinearSolveError {
    /// A direct factorization broke down at `column`.
    Singular {
        /// Pivot column at which elimination failed.
        column: usize,
    },
    /// The iterative backend ran out of its iteration budget.
    NoConvergence {
        /// Matvec iterations consumed before giving up.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
}

impl fmt::Display for LinearSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearSolveError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            LinearSolveError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solve stalled after {iterations} iterations (relative residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for LinearSolveError {}

impl From<SingularMatrixError> for LinearSolveError {
    fn from(e: SingularMatrixError) -> Self {
        LinearSolveError::Singular { column: e.column }
    }
}

/// Work counters an iterative backend accumulates; always zero for the
/// direct backends. Drained with [`LinearSolver::take_counters`] so the
/// caller can fold them into its own telemetry between solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterationCounters {
    /// Inner GMRES (Arnoldi) iterations.
    pub gmres_iterations: u64,
    /// GMRES restart cycles beyond each solve's first.
    pub gmres_restarts: u64,
    /// Preconditioner (re)factorizations.
    pub precond_refactors: u64,
    /// Solves rescued by the direct-LU fallback after the Krylov
    /// iteration stagnated or ran out of budget.
    pub fallbacks: u64,
}

impl IterationCounters {
    /// Whether anything was counted.
    pub fn is_zero(&self) -> bool {
        *self == IterationCounters::default()
    }
}

/// A pluggable backend for repeated solves against one evolving system.
///
/// Contract: call [`LinearSolver::prepare`] after each assembly (values
/// changed, same pattern), then [`LinearSolver::solve`] any number of
/// times against different right-hand sides. Call
/// [`LinearSolver::invalidate`] whenever the *pattern* changes so cached
/// symbolic work is dropped.
pub trait LinearSolver<T: Scalar>: Send {
    /// Factors (or refreshes the preconditioner for) the system.
    ///
    /// # Errors
    ///
    /// [`LinearSolveError::Singular`] when a direct factorization breaks
    /// down. The iterative backend never fails here.
    fn prepare(&mut self, a: SystemRef<'_, T>) -> Result<(), LinearSolveError>;

    /// Solves `a·x = b` into `x` using the state from the last
    /// [`LinearSolver::prepare`]. `a` must be the same system that was
    /// prepared (the LU backends ignore it; the Krylov backend matvecs
    /// against it).
    ///
    /// # Errors
    ///
    /// [`LinearSolveError::NoConvergence`] when the iterative backend
    /// exhausts its budget. The direct backends never fail here.
    fn solve(
        &mut self,
        a: SystemRef<'_, T>,
        b: &[T],
        x: &mut Vec<T>,
    ) -> Result<(), LinearSolveError>;

    /// Drops cached factors / preconditioners (the pattern changed).
    fn invalidate(&mut self);

    /// Returns and resets the iteration counters accumulated since the
    /// last call. Direct backends return zeros.
    fn take_counters(&mut self) -> IterationCounters {
        IterationCounters::default()
    }
}

/// Dense partial-pivot LU backend.
#[derive(Default)]
pub struct DenseLuSolver<T: Scalar> {
    lu: Option<LuFactors<T>>,
}

impl<T: Scalar> DenseLuSolver<T> {
    /// Creates an empty backend; the first `prepare` factors from scratch.
    pub fn new() -> Self {
        DenseLuSolver { lu: None }
    }
}

impl<T: Scalar> LinearSolver<T> for DenseLuSolver<T> {
    fn prepare(&mut self, a: SystemRef<'_, T>) -> Result<(), LinearSolveError> {
        let SystemRef::Dense(mat) = a else {
            unreachable!("dense backend paired with sparse kernel");
        };
        match &mut self.lu {
            Some(f) => f.refactor_from(mat)?,
            None => self.lu = Some(LuFactors::factor(mat.clone())?),
        }
        Ok(())
    }

    fn solve(
        &mut self,
        _a: SystemRef<'_, T>,
        b: &[T],
        x: &mut Vec<T>,
    ) -> Result<(), LinearSolveError> {
        // A missing factor is a caller sequencing bug (solve before
        // prepare), not a data-dependent condition.
        #[allow(clippy::expect_used)]
        self.lu.as_ref().expect("factored").solve_into(b, x);
        Ok(())
    }

    fn invalidate(&mut self) {
        self.lu = None;
    }
}

/// Gilbert–Peierls sparse LU backend with symbolic-pattern replay.
#[derive(Default)]
pub struct SparseLuSolver<T: Scalar> {
    lu: Option<SparseLu<T>>,
}

impl<T: Scalar> SparseLuSolver<T> {
    /// Creates an empty backend; the first `prepare` factors from scratch.
    pub fn new() -> Self {
        SparseLuSolver { lu: None }
    }
}

impl<T: Scalar> LinearSolver<T> for SparseLuSolver<T> {
    fn prepare(&mut self, a: SystemRef<'_, T>) -> Result<(), LinearSolveError> {
        let SystemRef::Sparse(m) = a else {
            unreachable!("sparse backend paired with dense kernel");
        };
        match &mut self.lu {
            // Numeric replay of the frozen pivot order; if a replayed
            // pivot degrades, fall back to a full re-pivot on the same
            // pattern — exactly the sequence the workspace used before
            // this trait existed.
            Some(f) => f
                .refactor(m)
                .or_else(|_| SparseLu::factor(m).map(|nf| *f = nf))?,
            None => self.lu = Some(SparseLu::factor(m)?),
        }
        Ok(())
    }

    fn solve(
        &mut self,
        _a: SystemRef<'_, T>,
        b: &[T],
        x: &mut Vec<T>,
    ) -> Result<(), LinearSolveError> {
        x.clear();
        x.extend_from_slice(b);
        // Same sequencing invariant as the dense backend.
        #[allow(clippy::expect_used)]
        self.lu.as_mut().expect("factored").solve_in_place(x);
        Ok(())
    }

    fn invalidate(&mut self) {
        self.lu = None;
    }
}

/// Adapter presenting a dense [`Matrix`] as a [`LinearOperator`] so the
/// Krylov backend stays total over both kernel kinds.
struct DenseOp<'a, T: Scalar>(&'a Matrix<T>);

impl<T: Scalar> LinearOperator<T> for DenseOp<'_, T> {
    fn dim(&self) -> usize {
        self.0.rows()
    }

    fn apply(&mut self, x: &[T], y: &mut [T]) {
        y.copy_from_slice(&self.0.mul_vec(x));
    }
}

/// Restarted GMRES with an ILU(0) right preconditioner.
///
/// `prepare` refreshes the preconditioner from the current values (a pure
/// numeric pass once the pattern is built); `solve` iterates matrix-free
/// against the live system view. Dense systems are handled too —
/// unpreconditioned, since ILU(0) is a sparse-pattern construct — so the
/// backend never panics on kernel kind.
///
/// When the Krylov iteration stagnates (no residual progress over two
/// consecutive restart cycles) or exhausts its matvec budget, the
/// backend falls back
/// to a direct LU solve of the same system — counted in
/// [`IterationCounters::fallbacks`] — instead of surfacing
/// [`LinearSolveError::NoConvergence`]. High-frequency AC matrices where
/// ILU(0) loses its grip thereby degrade to direct-solver cost, not to a
/// failed analysis. Disable with [`GmresIluSolver::without_fallback`] to
/// observe the typed error.
pub struct GmresIluSolver<T: Scalar> {
    opts: GmresOptions,
    ilu: Option<Ilu0<T>>,
    counters: IterationCounters,
    fallback: bool,
    sparse_fb: Option<SparseLu<T>>,
    dense_fb: Option<LuFactors<T>>,
}

impl<T: Scalar> GmresIluSolver<T> {
    /// Creates a backend with the given iteration knobs and the direct
    /// fallback armed.
    pub fn new(opts: GmresOptions) -> Self {
        GmresIluSolver {
            opts,
            ilu: None,
            counters: IterationCounters::default(),
            fallback: true,
            sparse_fb: None,
            dense_fb: None,
        }
    }

    /// Disables the direct-LU rescue so a stalled iteration surfaces as
    /// [`LinearSolveError::NoConvergence`].
    pub fn without_fallback(mut self) -> Self {
        self.fallback = false;
        self
    }

    /// Direct-LU rescue for a solve the Krylov iteration gave up on.
    ///
    /// Factors from the *live* system view on every call (numeric replay
    /// of a cached symbolic pattern when one exists), because `prepare`
    /// may have refreshed the values since the last fallback.
    fn direct_rescue(
        &mut self,
        a: SystemRef<'_, T>,
        b: &[T],
        x: &mut Vec<T>,
    ) -> Result<(), LinearSolveError> {
        match a {
            SystemRef::Sparse(m) => {
                match &mut self.sparse_fb {
                    Some(f) => f
                        .refactor(m)
                        .or_else(|_| SparseLu::factor(m).map(|nf| *f = nf))?,
                    slot => *slot = Some(SparseLu::factor(m)?),
                }
                x.clear();
                x.extend_from_slice(b);
                // Just installed above; the sequencing invariant is local.
                #[allow(clippy::expect_used)]
                self.sparse_fb.as_mut().expect("factored").solve_in_place(x);
            }
            SystemRef::Dense(m) => {
                match &mut self.dense_fb {
                    Some(f) => f.refactor_from(m)?,
                    slot => *slot = Some(LuFactors::factor(m.clone())?),
                }
                #[allow(clippy::expect_used)]
                self.dense_fb.as_ref().expect("factored").solve_into(b, x);
            }
        }
        self.counters.fallbacks += 1;
        Ok(())
    }
}

impl<T: Scalar> LinearSolver<T> for GmresIluSolver<T> {
    fn prepare(&mut self, a: SystemRef<'_, T>) -> Result<(), LinearSolveError> {
        if let SystemRef::Sparse(m) = a {
            match &mut self.ilu {
                Some(p) if p.matches(m) => p.refresh(m),
                slot => *slot = Some(Ilu0::new(m)),
            }
            self.counters.precond_refactors += 1;
        }
        Ok(())
    }

    fn solve(
        &mut self,
        a: SystemRef<'_, T>,
        b: &[T],
        x: &mut Vec<T>,
    ) -> Result<(), LinearSolveError> {
        let n = a.dim();
        x.clear();
        x.resize(n, T::ZERO);
        let out = match a {
            SystemRef::Sparse(m) => {
                let mut op = m;
                match &self.ilu {
                    Some(p) => gmres(&mut op, p, b, x, &self.opts),
                    None => gmres(&mut op, &IdentityPrecond, b, x, &self.opts),
                }
            }
            SystemRef::Dense(m) => {
                let mut op = DenseOp(m);
                gmres(&mut op, &IdentityPrecond, b, x, &self.opts)
            }
        };
        self.counters.gmres_iterations += out.iterations as u64;
        self.counters.gmres_restarts += out.restarts as u64;
        if out.converged {
            Ok(())
        } else if self.fallback {
            self.direct_rescue(a, b, x)
        } else {
            Err(LinearSolveError::NoConvergence {
                iterations: out.iterations,
                residual: out.residual,
            })
        }
    }

    fn invalidate(&mut self) {
        self.ilu = None;
        self.sparse_fb = None;
        self.dense_fb = None;
    }

    fn take_counters(&mut self) -> IterationCounters {
        std::mem::take(&mut self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn spd_csc(n: usize) -> CscMatrix<f64> {
        let mut tb = TripletBuilder::new(n);
        for i in 0..n {
            tb.add(i, i);
            if i + 1 < n {
                tb.add(i, i + 1);
                tb.add(i + 1, i);
            }
        }
        let (mut csc, slots) = tb.compile::<f64>();
        let mut si = slots.iter();
        for i in 0..n {
            csc.values_mut()[*si.next().unwrap()] = 3.0 + (i as f64) * 0.2;
            if i + 1 < n {
                csc.values_mut()[*si.next().unwrap()] = -1.0;
                csc.values_mut()[*si.next().unwrap()] = -1.0;
            }
        }
        csc
    }

    fn dense_of(csc: &CscMatrix<f64>) -> Matrix<f64> {
        csc.to_dense()
    }

    /// All three backends agree on the same well-conditioned system.
    #[test]
    fn backends_agree() {
        let n = 20;
        let csc = spd_csc(n);
        let dense = dense_of(&csc);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();

        let mut xd = Vec::new();
        let mut dl = DenseLuSolver::new();
        dl.prepare(SystemRef::Dense(&dense)).unwrap();
        dl.solve(SystemRef::Dense(&dense), &b, &mut xd).unwrap();

        let mut xs = Vec::new();
        let mut sl = SparseLuSolver::new();
        sl.prepare(SystemRef::Sparse(&csc)).unwrap();
        sl.solve(SystemRef::Sparse(&csc), &b, &mut xs).unwrap();

        let mut xg = Vec::new();
        let mut gm = GmresIluSolver::new(GmresOptions::default());
        gm.prepare(SystemRef::Sparse(&csc)).unwrap();
        gm.solve(SystemRef::Sparse(&csc), &b, &mut xg).unwrap();

        for i in 0..n {
            assert!((xd[i] - xs[i]).abs() < 1e-10, "dense vs sparse at {i}");
            assert!((xd[i] - xg[i]).abs() < 1e-7, "dense vs gmres at {i}");
        }
        let c = gm.take_counters();
        assert!(c.gmres_iterations > 0 && c.precond_refactors == 1, "{c:?}");
        assert!(gm.take_counters().is_zero(), "counters drain on take");
    }

    /// Singular systems surface the pivot column through the trait.
    #[test]
    fn singular_maps_column() {
        let mut tb = TripletBuilder::new(2);
        tb.add(0, 0);
        let (mut csc, slots) = tb.compile::<f64>();
        csc.values_mut()[slots[0]] = 1.0;
        let mut sl = SparseLuSolver::new();
        let err = sl.prepare(SystemRef::Sparse(&csc)).unwrap_err();
        assert!(matches!(err, LinearSolveError::Singular { .. }), "{err:?}");
    }

    /// With the rescue disarmed, GMRES reports no-convergence with its
    /// iteration count.
    #[test]
    fn gmres_budget_exhaustion_is_typed() {
        let csc = spd_csc(30);
        let b = vec![1.0; 30];
        let mut gm = GmresIluSolver::new(GmresOptions {
            restart: 2,
            tol: 1e-300, // unreachable target
            max_iters: 3,
        })
        .without_fallback();
        gm.prepare(SystemRef::Sparse(&csc)).unwrap();
        let mut x = Vec::new();
        let err = gm.solve(SystemRef::Sparse(&csc), &b, &mut x).unwrap_err();
        match err {
            LinearSolveError::NoConvergence { iterations, .. } => assert!(iterations <= 3),
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    /// The default backend rescues the same stalled solve with a direct
    /// factorization and counts it.
    #[test]
    fn gmres_fallback_rescues_stalled_solve() {
        let n = 30;
        let csc = spd_csc(n);
        let b = vec![1.0; n];
        let mut gm = GmresIluSolver::new(GmresOptions {
            restart: 2,
            tol: 1e-300, // unreachable target: every solve stalls
            max_iters: 3,
        });
        gm.prepare(SystemRef::Sparse(&csc)).unwrap();
        let mut x = Vec::new();
        gm.solve(SystemRef::Sparse(&csc), &b, &mut x).unwrap();
        let c = gm.take_counters();
        assert_eq!(c.fallbacks, 1, "{c:?}");

        // The rescued solution is the direct one.
        let mut sl = SparseLuSolver::new();
        sl.prepare(SystemRef::Sparse(&csc)).unwrap();
        let mut xref = Vec::new();
        sl.solve(SystemRef::Sparse(&csc), &b, &mut xref).unwrap();
        for i in 0..n {
            assert!((x[i] - xref[i]).abs() < 1e-12, "at {i}");
        }

        // Dense systems are rescued through the dense LU path.
        let dense = dense_of(&csc);
        let mut gmd = GmresIluSolver::new(GmresOptions {
            restart: 2,
            tol: 1e-300,
            max_iters: 3,
        });
        gmd.prepare(SystemRef::Dense(&dense)).unwrap();
        let mut xd = Vec::new();
        gmd.solve(SystemRef::Dense(&dense), &b, &mut xd).unwrap();
        assert_eq!(gmd.take_counters().fallbacks, 1);
        for i in 0..n {
            assert!((xd[i] - xref[i]).abs() < 1e-10, "dense rescue at {i}");
        }
    }

    /// Two consecutive restart cycles with no residual progress bail
    /// out early instead of burning the whole matvec budget.
    #[test]
    fn gmres_stagnation_bails_before_budget() {
        let csc = spd_csc(30);
        let b = vec![1.0; 30];
        let mut x = vec![0.0; 30];
        let mut op = &csc;
        let out = gmres(
            &mut op,
            &IdentityPrecond,
            &b,
            &mut x,
            &GmresOptions {
                restart: 2,
                tol: 1e-300,
                max_iters: 100_000,
            },
        );
        assert!(!out.converged);
        assert!(out.stagnated, "{out:?}");
        assert!(
            out.iterations < 100_000,
            "stagnation should cut the budget short: {out:?}"
        );
    }
}
