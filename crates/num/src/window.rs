//! Window (taper) functions for leakage control in spectral analysis.

use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No taper (all ones).
    #[default]
    Rect,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

impl Window {
    /// Sample `k` of an `n`-point window, `k < n`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n` or `n == 0`.
    pub fn coeff(self, k: usize, n: usize) -> f64 {
        assert!(n > 0 && k < n, "window index out of range");
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * PI * k as f64 / (n - 1) as f64;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * x.cos(),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Generates the full `n`-point window.
    pub fn generate(self, n: usize) -> Vec<f64> {
        (0..n).map(|k| self.coeff(k, n)).collect()
    }

    /// Applies the window to `signal`, returning a new vector.
    pub fn apply(self, signal: &[f64]) -> Vec<f64> {
        let n = signal.len();
        signal
            .iter()
            .enumerate()
            .map(|(k, &v)| v * self.coeff(k, n))
            .collect()
    }

    /// Coherent gain (mean of the coefficients); divide measured tone
    /// amplitudes by this to undo the window attenuation.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.generate(n).iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_ones() {
        assert!(Window::Rect.generate(8).iter().all(|&v| v == 1.0));
        assert_eq!(Window::Rect.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_is_symmetric_and_zero_ended() {
        let w = Window::Hann.generate(64);
        assert!(w[0].abs() < 1e-12);
        assert!(w[63].abs() < 1e-12);
        for k in 0..32 {
            assert!((w[k] - w[63 - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn hann_peak_is_one() {
        let w = Window::Hann.generate(65);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_ends_nonzero() {
        let w = Window::Hamming.generate(32);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_coherent_gain_near_042() {
        let g = Window::Blackman.coherent_gain(4096);
        assert!((g - 0.42).abs() < 1e-3);
    }

    #[test]
    fn apply_scales_signal() {
        let s = vec![2.0; 8];
        let out = Window::Hann.apply(&s);
        let w = Window::Hann.generate(8);
        for k in 0..8 {
            assert!((out[k] - 2.0 * w[k]).abs() < 1e-15);
        }
    }

    #[test]
    fn single_point_window_is_one() {
        assert_eq!(Window::Hann.coeff(0, 1), 1.0);
    }
}
