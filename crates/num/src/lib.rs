//! Numeric substrate for the AHFIC analog design kit.
//!
//! This crate provides the dense numerical kernels every other crate in the
//! workspace builds on:
//!
//! - [`Complex`] — a minimal, `f64`-based complex number with the full set
//!   of arithmetic operators and the transcendental functions circuit
//!   simulation needs;
//! - [`Matrix`] and [`lu`] — dense column-major matrices and LU
//!   factorization with partial pivoting, generic over real and complex
//!   scalars (the MNA solvers in `ahfic-spice` use both);
//! - [`fft`] — an in-place radix-2 FFT and helpers for spectra of real
//!   signals;
//! - [`goertzel`] — single-bin DFT evaluation, the workhorse behind tone
//!   power measurements (image-rejection ratio, THD);
//! - [`window`] — Hann/Hamming/Blackman tapers for leakage control;
//! - [`stats`], [`interp`], [`db`] — small helpers (mean/stddev, linear and
//!   log interpolation, decibel conversions) shared by the measurement code.
//!
//! # Example
//!
//! ```
//! use ahfic_num::{Complex, db::to_db_power, goertzel::tone_power};
//!
//! // Power of a 1 kHz tone sampled at 48 kHz.
//! let fs = 48e3;
//! let signal: Vec<f64> = (0..4800)
//!     .map(|n| (2.0 * std::f64::consts::PI * 1e3 * n as f64 / fs).sin())
//!     .collect();
//! let p = tone_power(&signal, fs, 1e3);
//! assert!((to_db_power(p) - to_db_power(0.5)).abs() < 0.1);
//! let j = Complex::new(0.0, 1.0);
//! assert!((j * j + Complex::ONE).abs() < 1e-15);
//! ```

// A malformed input must surface as a typed error, never a panic:
// `unwrap`/`expect` in non-test code warns (CI promotes warnings to
// errors), with local `#[allow]`s where an invariant guarantees success.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod batched;
pub mod complex;
pub mod db;
pub mod fft;
pub mod gmres;
pub mod goertzel;
pub mod ilu;
pub mod interp;
pub mod lu;
pub mod matrix;
pub mod scalar;
pub mod simd;
pub mod solver;
pub mod sparse;
pub mod stats;
pub mod window;

pub use batched::{BatchedLuSolver, CpuBatchedLu};
pub use complex::Complex;
pub use gmres::{GmresOptions, GmresOutcome, IdentityPrecond, LinearOperator, Preconditioner};
pub use ilu::Ilu0;
pub use lu::LuFactors;
pub use matrix::Matrix;
pub use scalar::Scalar;
pub use simd::{LaneKernels, SimdLevel};
pub use solver::{
    DenseLuSolver, GmresIluSolver, IterationCounters, LinearSolveError, LinearSolver, SystemRef,
};
pub use sparse::{CscMatrix, SparseLu, TripletBuilder};
