//! Dense row-major matrix used by the MNA assembly code.

use crate::Scalar;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows x cols` matrix over a [`Scalar`].
///
/// The MNA engines in `ahfic-spice` assemble into this type and hand it to
/// [`crate::lu::LuFactors`] for solving. Element access is through
/// `m[(r, c)]` indexing.
///
/// # Example
///
/// ```
/// use ahfic_num::Matrix;
/// let mut m = Matrix::<f64>::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// assert_eq!(m.diag_product_modulus(), 8.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major nested slice.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::ZERO;
        }
    }

    /// Adds `v` to entry `(r, c)` — the fundamental "stamp" operation of
    /// modified nodal analysis.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: T) {
        self[(r, c)] += v;
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // row-major dot products
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![T::ZERO; self.rows];
        for r in 0..self.rows {
            let mut acc = T::ZERO;
            let base = r * self.cols;
            for c in 0..self.cols {
                acc += self.data[base + c] * x[c];
            }
            y[r] = acc;
        }
        y
    }

    /// Product of the moduli of the diagonal entries; a quick singularity
    /// smell test used in diagnostics.
    pub fn diag_product_modulus(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)].modulus()).product()
    }

    /// Maximum modulus over all entries (infinity-ish norm ingredient).
    pub fn max_modulus(&self) -> f64 {
        self.data.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::<f64>::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        m.add_at(0, 0, 1.0);
        m.add_at(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 3.5);
    }

    #[test]
    fn mul_vec_known_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn complex_matrix_product() {
        let j = Complex::J;
        let m = Matrix::from_rows(&[&[j, Complex::ZERO], &[Complex::ZERO, j]]);
        let y = m.mul_vec(&[Complex::ONE, j]);
        assert_eq!(y, vec![j, -Complex::ONE]);
    }

    #[test]
    fn clear_keeps_dims() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.clear();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.max_modulus(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_wrong_len_panics() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m.mul_vec(&[1.0]);
    }
}
