//! Scalar abstraction so the LU solver works over `f64` and [`Complex`].

use crate::Complex;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A field scalar usable by the dense linear algebra kernels.
///
/// Implemented for `f64` and [`Complex`]. The trait is sealed in spirit —
/// downstream crates are not expected to implement it — but it is left open
/// so tests can use wrapper types.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Default
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Magnitude used for pivot selection (absolute value / modulus).
    fn modulus(self) -> f64;

    /// Embeds a real number.
    fn from_f64(x: f64) -> Self;

    /// Complex conjugate; the identity for real scalars. The Krylov tier
    /// needs this for Hermitian inner products and Givens rotations that
    /// stay correct over both fields.
    fn conj(self) -> Self;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }

    #[inline]
    fn conj(self) -> f64 {
        self
    }
}

impl Scalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    const ONE: Complex = Complex::ONE;

    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn from_f64(x: f64) -> Complex {
        Complex::from_re(x)
    }

    #[inline]
    fn conj(self) -> Complex {
        Complex::conj(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(items: &[T]) -> T {
        let mut acc = T::ZERO;
        for &x in items {
            acc += x;
        }
        acc
    }

    #[test]
    fn works_for_f64() {
        assert_eq!(generic_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(f64::from_f64(2.5), 2.5);
        assert_eq!((-3.0f64).modulus(), 3.0);
    }

    #[test]
    fn works_for_complex() {
        let s = generic_sum(&[Complex::new(1.0, 1.0), Complex::new(2.0, -1.0)]);
        assert_eq!(s, Complex::new(3.0, 0.0));
        assert!((Complex::new(3.0, 4.0).modulus() - 5.0).abs() < 1e-15);
    }
}
