//! Radix-2 FFT and spectrum helpers for real signals.

use crate::Complex;
use std::f64::consts::PI;

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
///
/// # Example
///
/// ```
/// use ahfic_num::{fft::fft, Complex};
/// let mut x = vec![Complex::ONE; 4];
/// fft(&mut x);
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin holds the sum
/// assert!(x[1].abs() < 1e-12);
/// ```
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (includes the `1/N` normalization).
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = *v / n;
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Next power of two at or above `n` (minimum 1).
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

/// Computes the single-sided amplitude spectrum of a real signal.
///
/// The signal is zero-padded to a power of two. Returns `(freqs_hz,
/// amplitudes)` for bins `0..=N/2`; amplitudes are scaled so a full-scale
/// sine of amplitude `A` that falls exactly on a bin reads `A` (DC and
/// Nyquist read their exact level).
#[allow(clippy::needless_range_loop)]
pub fn real_spectrum(signal: &[f64], fs: f64) -> (Vec<f64>, Vec<f64>) {
    let n_sig = signal.len();
    let n = next_pow2(n_sig);
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_re(x)).collect();
    buf.resize(n, Complex::ZERO);
    fft(&mut buf);
    let half = n / 2;
    let mut freqs = Vec::with_capacity(half + 1);
    let mut amps = Vec::with_capacity(half + 1);
    for k in 0..=half {
        freqs.push(k as f64 * fs / n as f64);
        // Scale by the *signal* length so zero padding does not dilute
        // amplitude; double interior bins for single-sided view.
        let scale = if k == 0 || k == half { 1.0 } else { 2.0 };
        amps.push(scale * buf[k].abs() / n_sig as f64);
    }
    (freqs, amps)
}

/// Index of the spectrum bin nearest `f` given sample rate `fs` and FFT
/// size `n`.
pub fn bin_of(f: f64, fs: f64, n: usize) -> usize {
    ((f * n as f64 / fs).round() as usize).min(n / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_fft_ifft() {
        let orig: Vec<Complex> = (0..16)
            .map(|k| Complex::new((k as f64).sin(), (k as f64 * 0.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds() {
        let sig: Vec<Complex> = (0..64)
            .map(|k| Complex::from_re((0.7 * k as f64).sin()))
            .collect();
        let time_energy: f64 = sig.iter().map(|v| v.norm_sqr()).sum();
        let mut x = sig.clone();
        fft(&mut x);
        let freq_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn spectrum_finds_tone_amplitude() {
        let fs = 1024.0;
        let f0 = 64.0; // exactly on a bin for n=1024
        let sig: Vec<f64> = (0..1024)
            .map(|k| 0.8 * (2.0 * PI * f0 * k as f64 / fs).sin())
            .collect();
        let (freqs, amps) = real_spectrum(&sig, fs);
        let k = bin_of(f0, fs, 1024);
        assert!((freqs[k] - f0).abs() < 1e-9);
        assert!((amps[k] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex::ZERO; 6];
        fft(&mut x);
    }
}
