//! A minimal `f64` complex number.
//!
//! The workspace deliberately avoids external numeric crates; this type
//! covers everything the AC solver and spectrum code need: field
//! arithmetic, conjugation, polar conversion and `exp`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j*im` over `f64`.
///
/// # Example
///
/// ```
/// use ahfic_num::Complex;
/// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((z - 2.0 * Complex::J).abs() < 1e-15);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar magnitude and phase (radians).
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Complex::new(mag * phase.cos(), mag * phase.sin())
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`; cheaper than [`abs`](Self::abs) when only
    /// relative comparison or power is needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Phase angle in degrees.
    #[inline]
    pub fn arg_deg(self) -> f64 {
        self.arg().to_degrees()
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z` is zero, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_axioms_hold_on_samples() {
        let z = Complex::new(3.0, -4.0);
        let w = Complex::new(-1.5, 2.5);
        assert!(close(z + w, w + z));
        assert!(close(z * w, w * z));
        assert!(close(z * (w + Complex::ONE), z * w + z));
        assert!(close(z * z.recip(), Complex::ONE));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-15);
        assert!((Complex::J.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((Complex::J.arg_deg() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (Complex::J * std::f64::consts::PI).exp();
        assert!(close(z, -Complex::ONE));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-7.0, 3.0);
        let r = z.sqrt();
        assert!(close(r * r, z));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let z = Complex::new(1.0, 2.0);
        let w = Complex::new(-3.0, 0.5);
        assert!(close(z / w, z * w.recip()));
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex::new(1.0, 1.0);
        assert!(close(z * 2.0, Complex::new(2.0, 2.0)));
        assert!(close(2.0 * z, z * 2.0));
        assert!(close(z + 1.0, Complex::new(2.0, 1.0)));
        assert!(close(z / 2.0, Complex::new(0.5, 0.5)));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(close(total, Complex::new(6.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
    }
}
