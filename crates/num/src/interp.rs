//! Interpolation and sweep-grid helpers.

/// Linear interpolation of `y(x)` on a sorted grid `xs`/`ys`.
///
/// Clamps outside the grid (returns the end value).
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or are empty.
pub fn lerp_at(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "grid length mismatch");
    assert!(!xs.is_empty(), "empty grid");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let i = match xs.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => return ys[i],
        Err(i) => i,
    };
    let t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
    ys[i - 1] + t * (ys[i] - ys[i - 1])
}

/// Finds the `x` at which linearly interpolated `y(x)` first crosses
/// `target`, scanning left to right. Returns `None` if it never crosses.
pub fn first_crossing(xs: &[f64], ys: &[f64], target: f64) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    for i in 1..xs.len() {
        let (y0, y1) = (ys[i - 1], ys[i]);
        if (y0 - target) == 0.0 {
            return Some(xs[i - 1]);
        }
        if (y0 - target) * (y1 - target) < 0.0 {
            let t = (target - y0) / (y1 - y0);
            return Some(xs[i - 1] + t * (xs[i] - xs[i - 1]));
        }
    }
    None
}

/// `n` points linearly spaced over `[a, b]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|k| a + (b - a) * k as f64 / (n - 1) as f64)
        .collect()
}

/// `n` points logarithmically spaced over `[a, b]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either endpoint is non-positive.
pub fn logspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(a > 0.0 && b > 0.0, "logspace endpoints must be positive");
    linspace(a.ln(), b.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Parabolic (three-point) refinement of a peak location: given samples
/// `y0, y1, y2` at `x1-h, x1, x1+h` with `y1` the discrete maximum, returns
/// the interpolated abscissa of the true peak.
pub fn parabolic_peak(x1: f64, h: f64, y0: f64, y1: f64, y2: f64) -> f64 {
    let denom = y0 - 2.0 * y1 + y2;
    if denom.abs() < 1e-300 {
        return x1;
    }
    let delta = 0.5 * (y0 - y2) / denom;
    x1 + delta.clamp(-1.0, 1.0) * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_exact_and_between() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 40.0];
        assert_eq!(lerp_at(&xs, &ys, 1.0), 10.0);
        assert_eq!(lerp_at(&xs, &ys, 0.5), 5.0);
        assert_eq!(lerp_at(&xs, &ys, 1.5), 25.0);
    }

    #[test]
    fn lerp_clamps() {
        let xs = [0.0, 1.0];
        let ys = [3.0, 7.0];
        assert_eq!(lerp_at(&xs, &ys, -5.0), 3.0);
        assert_eq!(lerp_at(&xs, &ys, 5.0), 7.0);
    }

    #[test]
    fn crossing_found() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 2.0, -2.0];
        let x = first_crossing(&xs, &ys, 1.0).unwrap();
        assert!((x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_missing() {
        assert_eq!(first_crossing(&[0.0, 1.0], &[0.0, 0.5], 2.0), None);
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(-1.0, 1.0, 5);
        assert_eq!(g, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1.0, 100.0, 3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn parabolic_peak_recovers_vertex() {
        // y = -(x-0.3)^2 sampled at -1, 0, 1
        let f = |x: f64| -(x - 0.3) * (x - 0.3);
        let x = parabolic_peak(0.0, 1.0, f(-1.0), f(0.0), f(1.0));
        assert!((x - 0.3).abs() < 1e-12);
    }
}
