//! Single-bin DFT (Goertzel-style) tone measurement.
//!
//! Tone-power measurements (image-rejection ratio, harmonic distortion)
//! need the complex amplitude of a signal at one *known* frequency that is
//! generally not on an FFT bin grid. Direct correlation against
//! `exp(-j*2*pi*f*t)` over an integer number of cycles is exact for that
//! job and cheaper than a padded FFT, so that is what this module does.

use crate::Complex;
use std::f64::consts::PI;

/// Complex amplitude of the component of `signal` at frequency `f` (Hz),
/// sampled at `fs`.
///
/// Uses direct correlation over the longest prefix of `signal` covering an
/// integer number of periods of `f` (falling back to the whole signal if
/// less than one period fits). A pure tone `A*sin(2*pi*f*t + phi)` returns
/// a complex value with magnitude `A`.
///
/// # Panics
///
/// Panics if `signal` is empty or `fs <= 0`.
pub fn tone_amplitude(signal: &[f64], fs: f64, f: f64) -> Complex {
    assert!(!signal.is_empty(), "empty signal");
    assert!(fs > 0.0, "sample rate must be positive");
    let n = integer_period_len(signal.len(), fs, f);
    let w = 2.0 * PI * f / fs;
    let mut acc = Complex::ZERO;
    for (k, &x) in signal[..n].iter().enumerate() {
        acc += Complex::from_polar(1.0, -w * k as f64) * x;
    }
    // 2/N scaling recovers the amplitude of a real sinusoid.
    acc * (2.0 / n as f64)
}

/// Power (mean square) of the component of `signal` at frequency `f`.
///
/// For a sine of amplitude `A` this returns `A^2 / 2`.
pub fn tone_power(signal: &[f64], fs: f64, f: f64) -> f64 {
    let a = tone_amplitude(signal, fs, f);
    a.norm_sqr() / 2.0
}

/// RMS of the component at `f`.
pub fn tone_rms(signal: &[f64], fs: f64, f: f64) -> f64 {
    tone_power(signal, fs, f).sqrt()
}

/// Longest prefix length covering an integer number of periods of `f`.
///
/// Using an integer number of cycles removes spectral leakage without any
/// window. If `f == 0` the full length is used (DC average).
fn integer_period_len(len: usize, fs: f64, f: f64) -> usize {
    if f <= 0.0 {
        return len;
    }
    let samples_per_period = fs / f;
    // Round rather than floor the period count, then back off until the
    // window fits: floor alone can land on 119.999999 periods and truncate
    // mid-cycle, leaking fundamental energy into every harmonic bin.
    let mut periods = (len as f64 / samples_per_period).round();
    while periods >= 1.0 && (periods * samples_per_period).round() as usize > len {
        periods -= 1.0;
    }
    if periods < 1.0 {
        len
    } else {
        ((periods * samples_per_period).round() as usize).clamp(1, len)
    }
}

/// Mean (DC component) of a signal.
pub fn dc(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().sum::<f64>() / signal.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(fs: f64, f: f64, a: f64, phi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| a * (2.0 * PI * f * k as f64 / fs + phi).sin())
            .collect()
    }

    #[test]
    fn recovers_amplitude_on_grid() {
        let sig = sine(1000.0, 50.0, 2.0, 0.3, 1000);
        let a = tone_amplitude(&sig, 1000.0, 50.0);
        assert!((a.abs() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn recovers_amplitude_off_grid() {
        // 47.3 Hz is not on any FFT grid for n=5000, but integer-cycle
        // truncation keeps the estimate tight.
        let sig = sine(1000.0, 47.3, 1.5, 1.1, 5000);
        let a = tone_amplitude(&sig, 1000.0, 47.3);
        assert!((a.abs() - 1.5).abs() < 1e-3, "got {}", a.abs());
    }

    #[test]
    fn rejects_orthogonal_tone() {
        let sig = sine(1000.0, 100.0, 1.0, 0.0, 2000);
        let p = tone_power(&sig, 1000.0, 50.0);
        assert!(p < 1e-20);
    }

    #[test]
    fn power_of_unit_sine_is_half() {
        let sig = sine(8000.0, 400.0, 1.0, 0.0, 8000);
        assert!((tone_power(&sig, 8000.0, 400.0) - 0.5).abs() < 1e-10);
        assert!((tone_rms(&sig, 8000.0, 400.0) - 0.5f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn separates_two_tones() {
        let fs = 10_000.0;
        let mut sig = sine(fs, 500.0, 1.0, 0.0, 10_000);
        let t2 = sine(fs, 1500.0, 0.25, 0.7, 10_000);
        for (a, b) in sig.iter_mut().zip(t2.iter()) {
            *a += b;
        }
        assert!((tone_amplitude(&sig, fs, 500.0).abs() - 1.0).abs() < 1e-9);
        assert!((tone_amplitude(&sig, fs, 1500.0).abs() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn dc_average() {
        assert_eq!(dc(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(dc(&[]), 0.0);
    }

    #[test]
    fn phase_is_meaningful() {
        // sin with phi=0 correlated against exp(-jwt): amplitude phase
        // should track added phase offsets.
        let a0 = tone_amplitude(&sine(1000.0, 50.0, 1.0, 0.0, 1000), 1000.0, 50.0);
        let a1 = tone_amplitude(&sine(1000.0, 50.0, 1.0, 0.5, 1000), 1000.0, 50.0);
        let dphi = (a1.arg() - a0.arg() - 0.5).abs();
        assert!(dphi < 1e-9 || (dphi - 2.0 * PI).abs() < 1e-9);
    }
}
