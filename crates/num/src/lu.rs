//! LU factorization with partial pivoting, generic over [`Scalar`].
//!
//! This is the linear-solver core of the whole workspace: every Newton
//! iteration of the DC/transient engines and every frequency point of the
//! AC engine in `ahfic-spice` funnels through [`LuFactors::solve`].

use crate::{Matrix, Scalar};
use std::fmt;

/// Error returned when a matrix is singular to working precision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Pivot column at which elimination broke down.
    pub column: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.column)
    }
}

impl std::error::Error for SingularMatrixError {}

/// An LU factorization `P*A = L*U` of a square matrix.
///
/// # Example
///
/// ```
/// use ahfic_num::{Matrix, LuFactors};
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuFactors::factor(a)?;
/// let x = lu.solve(&[3.0, 4.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), ahfic_num::lu::SingularMatrixError>(())
/// ```
#[derive(Clone)]
pub struct LuFactors<T> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    n: usize,
}

impl<T: Scalar> fmt::Debug for LuFactors<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LuFactors")
            .field("n", &self.n)
            .field("perm", &self.perm)
            .field("lu", &self.lu)
            .finish()
    }
}

/// Relative pivot threshold below which elimination is declared singular.
const PIVOT_EPS: f64 = 1e-300;

impl<T: Scalar> LuFactors<T> {
    /// Factors `a` in place (Doolittle with partial pivoting).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if no usable pivot exists in some
    /// column.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: Matrix<T>) -> Result<Self, SingularMatrixError> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "LU requires a square matrix");
        let mut f = LuFactors {
            lu: a,
            perm: (0..n).collect(),
            n,
        };
        f.eliminate()?;
        Ok(f)
    }

    /// Refactors new values into the existing buffers — the dense
    /// counterpart of `SparseLu::refactor`, for reuse across Newton
    /// iterations and frequency points without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if `a` is singular; the factors are
    /// garbage afterwards until a successful refactor.
    ///
    /// # Panics
    ///
    /// Panics if `a` has a different dimension than the stored factors.
    pub fn refactor_from(&mut self, a: &Matrix<T>) -> Result<(), SingularMatrixError> {
        assert_eq!(a.rows(), self.n, "refactor dimension mismatch");
        assert_eq!(a.cols(), self.n, "refactor dimension mismatch");
        self.lu.as_mut_slice().copy_from_slice(a.as_slice());
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.eliminate()
    }

    fn eliminate(&mut self) -> Result<(), SingularMatrixError> {
        let n = self.n;
        let a = &mut self.lu;
        let perm = &mut self.perm;
        for k in 0..n {
            // Pivot selection: largest modulus in column k at/below row k.
            let mut best = k;
            let mut best_mag = a[(k, k)].modulus();
            for r in (k + 1)..n {
                let mag = a[(r, k)].modulus();
                if mag > best_mag {
                    best = r;
                    best_mag = mag;
                }
            }
            // NaN-safe: a NaN pivot magnitude must also be rejected.
            if !(best_mag.is_finite() && best_mag > PIVOT_EPS) {
                return Err(SingularMatrixError { column: k });
            }
            if best != k {
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(best, c)];
                    a[(best, c)] = tmp;
                }
                perm.swap(k, best);
            }
            let pivot = a[(k, k)];
            for r in (k + 1)..n {
                let factor = a[(r, k)] / pivot;
                a[(r, k)] = factor;
                if factor.modulus() != 0.0 {
                    for c in (k + 1)..n {
                        let akc = a[(k, c)];
                        a[(r, c)] -= factor * akc;
                    }
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular index windows read clearest
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut x: Vec<T> = (0..n).map(|i| b[self.perm[i]]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
        x
    }

    /// Solves `A x = b` into a caller-provided buffer, reusing its
    /// capacity — the hot-loop variant of [`LuFactors::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // triangular index windows read clearest
    pub fn solve_into(&self, b: &[T], x: &mut Vec<T>) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        x.clear();
        x.extend((0..n).map(|i| b[self.perm[i]]));
        for r in 1..n {
            let mut acc = x[r];
            for c in 0..r {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for c in (r + 1)..n {
                acc -= self.lu[(r, c)] * x[c];
            }
            x[r] = acc / self.lu[(r, r)];
        }
    }
}

/// Convenience one-shot solve of `A x = b`.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if `a` is singular.
pub fn solve<T: Scalar>(a: Matrix<T>, b: &[T]) -> Result<Vec<T>, SingularMatrixError> {
    Ok(LuFactors::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    #[test]
    fn solves_identity() {
        let x = solve(Matrix::<f64>::identity(4), &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solves_requiring_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(LuFactors::factor(a).is_err());
    }

    #[test]
    fn residual_small_on_fixed_system() {
        let a = Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let b = [11.0, -16.0, 17.0];
        let x = solve(a.clone(), &b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn complex_system() {
        // (1+j) x = 2j  =>  x = 2j / (1+j) = 1 + j
        let a = Matrix::from_rows(&[&[Complex::new(1.0, 1.0)]]);
        let x = solve(a, &[Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, 1.0)).abs() < 1e-14);
    }

    #[test]
    fn factor_once_solve_many() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = LuFactors::factor(a).unwrap();
        assert_eq!(lu.dim(), 2);
        let x1 = lu.solve(&[4.0, 3.0]);
        let x2 = lu.solve(&[8.0, 6.0]);
        for i in 0..2 {
            assert!((2.0 * x1[i] - x2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_and_solve_into_reuse_buffers() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let mut lu = LuFactors::factor(a).unwrap();
        // New values, same buffers — including a pivot flip.
        let b = Matrix::from_rows(&[&[0.0, 2.0], &[5.0, 1.0]]);
        lu.refactor_from(&b).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[4.0, 11.0], &mut x);
        let back = b.mul_vec(&x);
        assert!((back[0] - 4.0).abs() < 1e-12 && (back[1] - 11.0).abs() < 1e-12);
        // A singular refactor reports, and a later good one recovers.
        assert!(lu
            .refactor_from(&Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]))
            .is_err());
        lu.refactor_from(&Matrix::identity(2)).unwrap();
        lu.solve_into(&[7.0, 8.0], &mut x);
        assert_eq!(x, vec![7.0, 8.0]);
    }

    #[test]
    fn display_of_error() {
        let e = SingularMatrixError { column: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
    }
}
