//! Small descriptive statistics used by measurement post-processing.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Root-mean-square value.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Minimum value; `None` for an empty slice or if any value is NaN-free
/// minimum cannot be established.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(m) => Some(m.min(x)),
    })
}

/// Maximum value; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(m) => Some(m.max(x)),
    })
}

/// Peak-to-peak span; `0.0` for an empty slice.
pub fn peak_to_peak(xs: &[f64]) -> f64 {
    match (min(xs), max(xs)) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => 0.0,
    }
}

/// Index of the maximum value; `None` for an empty slice.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            None => best = Some((i, x)),
            Some((_, bx)) if x > bx => best = Some((i, x)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(peak_to_peak(&[]), 0.0);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0; 10]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn extremes() {
        let xs = [1.0, -2.0, 5.0, 0.0];
        assert_eq!(min(&xs), Some(-2.0));
        assert_eq!(max(&xs), Some(5.0));
        assert_eq!(peak_to_peak(&xs), 7.0);
        assert_eq!(argmax(&xs), Some(2));
    }

    #[test]
    fn argmax_takes_first_of_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
    }
}
