//! Oscillation-frequency measurement from transient waveforms.

use crate::error::{Result, SpiceError};
use crate::wave::Waveform;

/// Result of an oscillation measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OscMeasurement {
    /// Fundamental frequency (Hz), averaged over the observed cycles.
    pub frequency: f64,
    /// Average period (s).
    pub period: f64,
    /// Number of full cycles used for the estimate.
    pub cycles: usize,
    /// Peak-to-peak amplitude over the analysis window.
    pub amplitude_pp: f64,
}

/// Measures the free-running frequency of `signal` by averaging the
/// spacing of interpolated rising crossings of its mean value, ignoring
/// the first `settle_frac` of the record (startup transient).
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] if fewer than three rising crossings
/// (two full cycles) are found.
pub fn oscillation_frequency(
    wave: &Waveform,
    signal: &str,
    settle_frac: f64,
) -> Result<OscMeasurement> {
    let y = wave.signal(signal)?;
    let t = wave.axis();
    if y.len() < 8 {
        return Err(SpiceError::Measure(format!(
            "signal {signal} too short for oscillation measurement"
        )));
    }
    let start = ((y.len() as f64) * settle_frac.clamp(0.0, 0.95)) as usize;
    let window = &y[start..];
    let tw = &t[start..];
    let mean = window.iter().sum::<f64>() / window.len() as f64;
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for &v in window {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    // Hysteresis band avoids counting noise wiggles as crossings.
    let band = 0.05 * (hi - lo);
    let mut crossings: Vec<f64> = Vec::new();
    let mut armed = false;
    for k in 1..window.len() {
        if window[k - 1] < mean - band {
            armed = true;
        }
        if armed && window[k - 1] <= mean && window[k] > mean {
            let frac = (mean - window[k - 1]) / (window[k] - window[k - 1]);
            crossings.push(tw[k - 1] + frac * (tw[k] - tw[k - 1]));
            armed = false;
        }
    }
    if crossings.len() < 3 {
        return Err(SpiceError::Measure(format!(
            "signal {signal}: only {} rising crossings found (need >= 3); not oscillating?",
            crossings.len()
        )));
    }
    let cycles = crossings.len() - 1;
    let period = (crossings[crossings.len() - 1] - crossings[0]) / cycles as f64;
    Ok(OscMeasurement {
        frequency: 1.0 / period,
        period,
        cycles,
        amplitude_pp: hi - lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn synth(f: f64, fs: f64, n: usize, offset: f64) -> Waveform {
        let mut w = Waveform::new("time");
        w.push_signal("v(x)");
        for k in 0..n {
            let t = k as f64 / fs;
            w.push_sample(t, &[offset + (2.0 * PI * f * t).sin()]);
        }
        w
    }

    #[test]
    fn measures_pure_tone() {
        let w = synth(1e9, 50e9, 2000, 0.0);
        let m = oscillation_frequency(&w, "v(x)", 0.1).unwrap();
        assert!(
            (m.frequency - 1e9).abs() / 1e9 < 1e-4,
            "f = {}",
            m.frequency
        );
        assert!(m.cycles >= 20);
        assert!((m.amplitude_pp - 2.0).abs() < 0.01);
    }

    #[test]
    fn offset_does_not_matter() {
        let w = synth(2e9, 80e9, 4000, 3.3);
        let m = oscillation_frequency(&w, "v(x)", 0.2).unwrap();
        assert!((m.frequency - 2e9).abs() / 2e9 < 1e-4);
    }

    #[test]
    fn rejects_dc_signal() {
        let mut w = Waveform::new("time");
        w.push_signal("v(x)");
        for k in 0..100 {
            w.push_sample(k as f64, &[1.0]);
        }
        assert!(oscillation_frequency(&w, "v(x)", 0.0).is_err());
    }

    #[test]
    fn rejects_too_short() {
        let w = synth(1e9, 50e9, 4, 0.0);
        assert!(oscillation_frequency(&w, "v(x)", 0.0).is_err());
    }

    #[test]
    fn settle_fraction_skips_startup() {
        // Signal silent for first half, then oscillates.
        let mut w = Waveform::new("time");
        w.push_signal("v(x)");
        let fs = 50e9;
        for k in 0..4000 {
            let t = k as f64 / fs;
            let v = if k < 2000 {
                0.0
            } else {
                (2.0 * PI * 1e9 * t).sin()
            };
            w.push_sample(t, &[v]);
        }
        let m = oscillation_frequency(&w, "v(x)", 0.6).unwrap();
        assert!((m.frequency - 1e9).abs() / 1e9 < 1e-3);
    }
}
