//! Transition-frequency (fT) extraction.
//!
//! The measurement mirrors bench practice: the device is biased at a
//! target collector current with a fixed `VCE`, a unit AC current is
//! injected into the base, and `|h21| = |i_c| / |i_b|` is read from an AC
//! solve at a frequency inside the -20 dB/decade region; `fT` is then the
//! gain-bandwidth extrapolation `f * |h21|(f)`.

use crate::analysis::ac::ac_sweep_impl as ac_sweep;
use crate::analysis::op::op_from_eval as op_from;
use crate::analysis::{bjt_operating, Options};
use crate::circuit::{Circuit, Prepared};
use crate::error::{Result, SpiceError};
use crate::model::BjtModel;
use crate::wave::SourceWave;
use ahfic_num::interp::parabolic_peak;

/// One point of an fT-vs-Ic characteristic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FtPoint {
    /// Collector bias current (A).
    pub ic: f64,
    /// Base bias current that produced it (A).
    pub ib: f64,
    /// Extrapolated transition frequency (Hz).
    pub ft: f64,
    /// `|h21|` at the measurement frequency.
    pub h21: f64,
    /// Measurement frequency (Hz).
    pub f_meas: f64,
}

/// Measures fT of `model` at collector current `ic_target` and fixed
/// collector-emitter voltage `vce`.
///
/// # Errors
///
/// Propagates OP/AC failures; [`SpiceError::Measure`] when the bias
/// search cannot reach the target current (e.g. beyond achievable Ic).
pub fn ft_at_bias(model: &BjtModel, vce: f64, ic_target: f64, opts: &Options) -> Result<FtPoint> {
    if ic_target <= 0.0 {
        return Err(SpiceError::Measure("ic_target must be positive".into()));
    }
    let mut ckt = Circuit::new();
    let nc = ckt.node("c");
    let nb = ckt.node("b");
    ckt.vsource("VCE", nc, Circuit::gnd(), vce);
    ckt.isource("IB", Circuit::gnd(), nb, ic_target / model.bf.max(1.0));
    ckt.set_ac("IB", 1.0, 0.0)?;
    let mi = ckt.add_bjt_model(model.clone());
    ckt.bjt("Q1", nc, nb, Circuit::gnd(), mi, 1.0);
    let mut prep = Prepared::compile(&ckt)?;

    // Secant iteration on log(ic) vs log(ib): the relation is close to
    // linear on those axes across both the ideal and high-injection
    // regions, so convergence is fast.
    let mut ib = ic_target / model.bf.max(1.0);
    let mut x_prev: Option<Vec<f64>> = None;
    let mut history: Option<(f64, f64)> = None; // (ln ib, ln ic)
    let mut ic = 0.0;
    let mut converged = false;
    for _ in 0..60 {
        prep.circuit.set_source_wave("IB", SourceWave::Dc(ib))?;
        let r = op_from(&prep, opts, x_prev.as_deref())?;
        let q = bjt_operating(&prep, &r.x, opts, "Q1")?;
        ic = q.ic;
        x_prev = Some(r.x);
        if ic <= 0.0 {
            ib *= 2.0;
            continue;
        }
        if (ic / ic_target - 1.0).abs() < 1e-4 {
            converged = true;
            break;
        }
        let (lib, lic) = (ib.ln(), ic.ln());
        let slope = match history {
            Some((plib, plic)) if (lic - plic).abs() > 1e-12 => {
                ((lib - plib) / (lic - plic)).clamp(0.2, 5.0)
            }
            _ => 1.0,
        };
        history = Some((lib, lic));
        ib = (lib + slope * (ic_target.ln() - lic)).exp();
    }
    if !converged {
        return Err(SpiceError::Measure(format!(
            "bias search failed: target ic = {ic_target:.3e} A, reached {ic:.3e} A"
        )));
    }
    let x_op = x_prev.expect("op solved");

    // Pick a measurement frequency inside the -20 dB/dec region
    // (3 < |h21| < 100) and extrapolate.
    let mut f_meas = 1e9;
    let mut last = None;
    for _ in 0..24 {
        let w = ac_sweep(&prep, &x_op, opts, &[f_meas])?;
        let h21 = w.signal("i(VCE)")?[0].abs();
        last = Some((f_meas, h21));
        if h21 > 100.0 {
            f_meas *= 4.0;
        } else if h21 < 3.0 {
            if f_meas < 1e3 {
                break; // device has essentially no current gain
            }
            f_meas /= 4.0;
        } else {
            break;
        }
    }
    let (f_meas, h21) = last.expect("at least one AC point");
    Ok(FtPoint {
        ic: ic_target,
        ib,
        ft: f_meas * h21,
        h21,
        f_meas,
    })
}

/// Sweeps fT over a list of collector currents, skipping points where the
/// bias search fails (e.g. currents beyond the device's reach).
pub fn ft_sweep(model: &BjtModel, vce: f64, ic_values: &[f64], opts: &Options) -> Vec<FtPoint> {
    ic_values
        .iter()
        .filter_map(|&ic| ft_at_bias(model, vce, ic, opts).ok())
        .collect()
}

/// Peak of an fT characteristic: `(ic_at_peak, ft_peak)`, refined with
/// parabolic interpolation on a log-current axis.
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] for an empty sweep.
pub fn peak_ft(points: &[FtPoint]) -> Result<(f64, f64)> {
    if points.is_empty() {
        return Err(SpiceError::Measure("empty fT sweep".into()));
    }
    let mut best = 0usize;
    for (k, p) in points.iter().enumerate() {
        if p.ft > points[best].ft {
            best = k;
        }
    }
    if best == 0 || best + 1 >= points.len() {
        return Ok((points[best].ic, points[best].ft));
    }
    let (l, m, r) = (&points[best - 1], &points[best], &points[best + 1]);
    // Assume log-spaced currents; refine on ln(ic).
    let h = ((r.ic.ln() - l.ic.ln()) / 2.0).abs();
    let lic = parabolic_peak(m.ic.ln(), h, l.ft, m.ft, r.ft);
    Ok((lic.exp(), m.ft.max(l.ft).max(r.ft)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_num::interp::logspace;

    fn rf_model() -> BjtModel {
        BjtModel {
            name: "rf".into(),
            is_: 2e-17,
            bf: 120.0,
            vaf: 40.0,
            ikf: 8e-3,
            ise: 5e-19,
            ne: 1.8,
            rb: 80.0,
            rbm: 15.0,
            irb: 1e-4,
            re: 1.5,
            rc: 25.0,
            cje: 80e-15,
            vje: 0.9,
            mje: 0.35,
            tf: 16e-12,
            xtf: 4.0,
            vtf: 2.5,
            itf: 30e-3,
            cjc: 45e-15,
            vjc: 0.65,
            mjc: 0.4,
            xcjc: 0.7,
            tr: 0.5e-9,
            cjs: 90e-15,
            vjs: 0.6,
            mjs: 0.35,
            ..BjtModel::default()
        }
    }

    #[test]
    fn bias_search_hits_target_current() {
        let opts = Options::default();
        let p = ft_at_bias(&rf_model(), 3.0, 1e-3, &opts).unwrap();
        assert!(p.ib > 0.0 && p.ib < 1e-3);
        assert!(p.h21 >= 3.0 && p.h21 <= 100.0);
    }

    #[test]
    fn ft_is_ghz_class_and_peaks_interior() {
        let opts = Options::default();
        let currents = logspace(0.05e-3, 20e-3, 13);
        let pts = ft_sweep(&rf_model(), 3.0, &currents, &opts);
        assert!(pts.len() >= 10, "only {} points", pts.len());
        let (ic_pk, ft_pk) = peak_ft(&pts).unwrap();
        assert!(ft_pk > 1e9 && ft_pk < 20e9, "peak ft = {ft_pk:.3e}");
        // Peak should be at a moderate current, not at either end.
        assert!(ic_pk > currents[0] * 1.5 && ic_pk < currents[12] / 1.5);
        // Roll-off on both sides.
        assert!(pts[0].ft < 0.8 * ft_pk);
        assert!(pts.last().unwrap().ft < 0.8 * ft_pk);
    }

    #[test]
    fn ft_tracks_small_signal_estimate() {
        // At moderate current the circuit-level h21 extrapolation should
        // be close to gm/(2 pi (cpi+cmu)) from the device equations.
        let opts = Options::default();
        let model = rf_model();
        let p = ft_at_bias(&model, 3.0, 2e-3, &opts).unwrap();
        // Rebuild the bias point to get the small-signal estimate.
        let mut ckt = Circuit::new();
        let nc = ckt.node("c");
        let nb = ckt.node("b");
        ckt.vsource("VCE", nc, Circuit::gnd(), 3.0);
        ckt.isource("IB", Circuit::gnd(), nb, p.ib);
        let mi = ckt.add_bjt_model(model);
        ckt.bjt("Q1", nc, nb, Circuit::gnd(), mi, 1.0);
        let sess = crate::analysis::Session::compile(&ckt).unwrap();
        let r = sess.op().unwrap();
        let q = bjt_operating(sess.prepared(), r.x(), &opts, "Q1").unwrap();
        let est = q.ft();
        assert!(
            (p.ft - est).abs() / est < 0.35,
            "circuit {:.3e} vs estimate {est:.3e}",
            p.ft
        );
    }

    #[test]
    fn rejects_nonpositive_target() {
        assert!(ft_at_bias(&rf_model(), 3.0, 0.0, &Options::default()).is_err());
    }

    #[test]
    fn peak_of_empty_sweep_errors() {
        assert!(peak_ft(&[]).is_err());
    }
}
