//! Measurement extraction on simulation results: fT, oscillation
//! frequency, harmonic distortion and AC gain/bandwidth.

pub mod acgain;
pub mod ft;
pub mod osc;
pub mod thd;

pub use acgain::{characterize, gain_ratio, AcCharacterization};
pub use ft::{ft_at_bias, ft_sweep, peak_ft, FtPoint};
pub use osc::{oscillation_frequency, OscMeasurement};
pub use thd::{harmonics, thd, HarmonicAnalysis};
