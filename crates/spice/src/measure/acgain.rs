//! AC gain / bandwidth extraction from frequency sweeps.

use crate::error::{Result, SpiceError};
use crate::wave::AcWaveform;
use ahfic_num::db::to_db_amplitude;
use ahfic_num::interp::{first_crossing, lerp_at};

/// Small-signal transfer characterization of one output signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcCharacterization {
    /// Reference (usually midband/first-point) gain magnitude.
    pub gain: f64,
    /// Reference gain in dB.
    pub gain_db: f64,
    /// Phase at the reference frequency (degrees).
    pub phase_deg: f64,
    /// Reference frequency (Hz).
    pub f_ref: f64,
    /// -3 dB bandwidth (Hz), if the sweep reaches it.
    pub bw_3db: Option<f64>,
}

/// Characterizes `signal` from an AC sweep: gain/phase at `f_ref`
/// (interpolated) and the frequency where the magnitude first falls 3 dB
/// below that reference.
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] for missing signals or empty sweeps.
pub fn characterize(wave: &AcWaveform, signal: &str, f_ref: f64) -> Result<AcCharacterization> {
    let mags = wave.magnitude(signal)?;
    let phases = wave.phase_deg(signal)?;
    let freqs = wave.freqs();
    if freqs.is_empty() {
        return Err(SpiceError::Measure("empty AC sweep".into()));
    }
    let gain = lerp_at(freqs, &mags, f_ref);
    let phase_deg = lerp_at(freqs, &phases, f_ref);
    let target = gain / 2.0f64.sqrt();
    // Scan only above the reference frequency for the roll-off.
    let start = freqs.partition_point(|&f| f < f_ref);
    let bw_3db = if start < freqs.len() {
        first_crossing(&freqs[start..], &mags[start..], target)
    } else {
        None
    };
    Ok(AcCharacterization {
        gain,
        gain_db: to_db_amplitude(gain),
        phase_deg,
        f_ref,
        bw_3db,
    })
}

/// Gain magnitude of `out` relative to `inp` at each frequency.
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] when either signal is missing.
pub fn gain_ratio(wave: &AcWaveform, out: &str, inp: &str) -> Result<Vec<f64>> {
    let o = wave.signal(out)?;
    let i = wave.signal(inp)?;
    Ok(o.iter()
        .zip(i.iter())
        .map(|(a, b)| {
            let d = b.abs();
            if d == 0.0 {
                f64::INFINITY
            } else {
                a.abs() / d
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahfic_num::Complex;

    /// Synthesizes a single-pole response with DC gain `a0` and pole `fp`.
    fn one_pole(a0: f64, fp: f64, freqs: &[f64]) -> AcWaveform {
        let mut w = AcWaveform::new();
        w.push_signal("v(out)");
        w.push_signal("v(in)");
        for &f in freqs {
            let h = Complex::from_re(a0) / (Complex::ONE + Complex::new(0.0, f / fp));
            w.push_sample(f, &[h, Complex::ONE]);
        }
        w
    }

    #[test]
    fn finds_3db_point_of_one_pole() {
        let freqs: Vec<f64> = (0..400)
            .map(|k| 10f64.powf(3.0 + k as f64 * 0.01))
            .collect();
        let w = one_pole(10.0, 1e5, &freqs);
        let c = characterize(&w, "v(out)", 1e3).unwrap();
        assert!((c.gain - 10.0).abs() < 1e-3);
        assert!((c.gain_db - 20.0).abs() < 1e-2);
        let bw = c.bw_3db.expect("bandwidth found");
        assert!((bw - 1e5).abs() / 1e5 < 0.02, "bw = {bw:.3e}");
    }

    #[test]
    fn no_bandwidth_when_sweep_too_short() {
        let freqs: Vec<f64> = vec![1e3, 2e3, 5e3];
        let w = one_pole(10.0, 1e6, &freqs);
        let c = characterize(&w, "v(out)", 1e3).unwrap();
        assert!(c.bw_3db.is_none());
    }

    #[test]
    fn gain_ratio_divides() {
        let freqs = vec![1e3, 1e4];
        let mut w = AcWaveform::new();
        w.push_signal("v(out)");
        w.push_signal("v(in)");
        w.push_sample(1e3, &[Complex::from_re(4.0), Complex::from_re(2.0)]);
        w.push_sample(1e4, &[Complex::from_re(1.0), Complex::ZERO]);
        let g = gain_ratio(&w, "v(out)", "v(in)").unwrap();
        assert_eq!(g[0], 2.0);
        assert!(g[1].is_infinite());
        let _ = freqs;
    }

    #[test]
    fn phase_at_pole_is_minus_45() {
        let freqs: Vec<f64> = (0..200)
            .map(|k| 10f64.powf(3.0 + k as f64 * 0.02))
            .collect();
        let w = one_pole(1.0, 1e4, &freqs);
        let c = characterize(&w, "v(out)", 1e4).unwrap();
        assert!((c.phase_deg + 45.0).abs() < 1.0, "phase = {}", c.phase_deg);
    }
}
