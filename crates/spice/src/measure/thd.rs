//! Total harmonic distortion measurement on transient waveforms.

use crate::error::{Result, SpiceError};
use crate::wave::Waveform;
use ahfic_num::goertzel::tone_amplitude;

/// Harmonic decomposition of a signal.
#[derive(Clone, Debug, PartialEq)]
pub struct HarmonicAnalysis {
    /// Fundamental frequency (Hz).
    pub f0: f64,
    /// Amplitude of each harmonic, index 0 = fundamental.
    pub amplitudes: Vec<f64>,
    /// Total harmonic distortion ratio (not dB): `sqrt(sum h_k^2)/h_1`.
    pub thd: f64,
}

impl HarmonicAnalysis {
    /// THD in dB (20 log10 of the ratio).
    pub fn thd_db(&self) -> f64 {
        20.0 * self.thd.log10()
    }
}

/// Measures the first `n_harmonics` harmonics of `signal` at fundamental
/// `f0`, skipping the first `settle_frac` of the record.
///
/// The waveform is resampled onto a uniform grid before tone extraction
/// so adaptive-timestep transient data is handled correctly.
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] for missing signals, too-short records
/// or `n_harmonics == 0`.
pub fn harmonics(
    wave: &Waveform,
    signal: &str,
    f0: f64,
    n_harmonics: usize,
    settle_frac: f64,
) -> Result<HarmonicAnalysis> {
    if n_harmonics == 0 {
        return Err(SpiceError::Measure("need at least one harmonic".into()));
    }
    let y = wave.signal(signal)?;
    let t = wave.axis();
    let start = ((y.len() as f64) * settle_frac.clamp(0.0, 0.95)) as usize;
    if y.len() - start < 16 {
        return Err(SpiceError::Measure(format!(
            "signal {signal} too short after settling window"
        )));
    }
    let span = t[t.len() - 1] - t[start];
    let native = y.len() - start;
    // If the record is already uniformly sampled, use it directly —
    // resampling would add interpolation distortion. Otherwise resample.
    let dt0 = (span) / (native - 1) as f64;
    let uniform = t[start..]
        .windows(2)
        .all(|w| ((w[1] - w[0]) - dt0).abs() <= 1e-6 * dt0);
    let (fs, yy): (f64, Vec<f64>) = if uniform {
        (1.0 / dt0, y[start..].to_vec())
    } else {
        let mut sub = Waveform::new("time");
        sub.push_signal("y");
        for k in start..y.len() {
            sub.push_sample(t[k], &[y[k]]);
        }
        let wanted = ((8.0 * n_harmonics as f64 * f0 * span) as usize).max(native);
        sub.resample_uniform("y", wanted.max(16))?
    };
    let amplitudes: Vec<f64> = (1..=n_harmonics)
        .map(|k| tone_amplitude(&yy, fs, k as f64 * f0).abs())
        .collect();
    let fund = amplitudes[0].max(1e-300);
    let dist: f64 = amplitudes[1..].iter().map(|a| a * a).sum::<f64>().sqrt();
    Ok(HarmonicAnalysis {
        f0,
        amplitudes,
        thd: dist / fund,
    })
}

/// Convenience wrapper returning only the THD ratio with 5 harmonics.
///
/// # Errors
///
/// Same as [`harmonics`].
pub fn thd(wave: &Waveform, signal: &str, f0: f64, settle_frac: f64) -> Result<f64> {
    Ok(harmonics(wave, signal, f0, 5, settle_frac)?.thd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn synth(components: &[(f64, f64)], fs: f64, n: usize) -> Waveform {
        let mut w = Waveform::new("time");
        w.push_signal("v(x)");
        for k in 0..n {
            let t = k as f64 / fs;
            let v: f64 = components
                .iter()
                .map(|&(f, a)| a * (2.0 * PI * f * t).sin())
                .sum();
            w.push_sample(t, &[v]);
        }
        w
    }

    #[test]
    fn pure_tone_has_negligible_thd() {
        let w = synth(&[(1e6, 1.0)], 100e6, 4000);
        let h = harmonics(&w, "v(x)", 1e6, 5, 0.0).unwrap();
        assert!(h.thd < 1e-6, "thd = {}", h.thd);
        assert!((h.amplitudes[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn known_distortion_measured() {
        // 10 % second harmonic, 5 % third.
        let w = synth(&[(1e6, 1.0), (2e6, 0.1), (3e6, 0.05)], 100e6, 8000);
        let h = harmonics(&w, "v(x)", 1e6, 5, 0.0).unwrap();
        let expect = (0.1f64 * 0.1 + 0.05 * 0.05).sqrt();
        assert!((h.thd - expect).abs() < 2e-3, "thd = {}", h.thd);
        assert!((h.thd_db() - 20.0 * h.thd.log10()).abs() < 1e-9);
    }

    #[test]
    fn thd_wrapper_matches() {
        let w = synth(&[(1e6, 1.0), (2e6, 0.2)], 100e6, 8000);
        let t = thd(&w, "v(x)", 1e6, 0.0).unwrap();
        assert!((t - 0.2).abs() < 5e-3);
    }

    #[test]
    fn zero_harmonics_rejected() {
        let w = synth(&[(1e6, 1.0)], 100e6, 1000);
        assert!(harmonics(&w, "v(x)", 1e6, 0, 0.0).is_err());
    }
}
