//! Circuit netlist representation and builder API.
//!
//! A [`Circuit`] owns interned nodes, model cards and a flat element list.
//! Analyses compile it into a [`Prepared`] system that assigns every MNA
//! unknown (node voltages, then branch currents) a dense index and creates
//! the internal nodes implied by device parasitic resistances.

use crate::devices::{build_devices, Device};
use crate::error::{Result, SpiceError};
use crate::lint::{LintDiagnostic, LintPolicy};
use crate::model::{BjtModel, DiodeModel};
use crate::wave::SourceWave;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A memoryless behavioral function `f(controls) -> value` used by
/// [`ElementKind::BehavioralV`] sources. Cheap to clone (shared).
///
/// Equality compares identity (the same underlying closure), which is
/// what circuit-copy semantics need.
#[derive(Clone)]
pub struct BehavioralFn(BehavioralClosure);

/// The shared closure type behind [`BehavioralFn`]. `Send + Sync` so a
/// compiled [`Prepared`] can be shared across analysis worker threads.
type BehavioralClosure = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

impl BehavioralFn {
    /// Wraps a closure.
    pub fn new(f: impl Fn(&[f64]) -> f64 + Send + Sync + 'static) -> Self {
        BehavioralFn(Arc::new(f))
    }

    /// Evaluates the function.
    #[inline]
    pub fn eval(&self, controls: &[f64]) -> f64 {
        (self.0)(controls)
    }

    /// Stable identity of the underlying shared closure (the address of
    /// its allocation): what [`PartialEq`] compares and what deck
    /// content hashing folds in for behavioral sources, since the
    /// closure body itself cannot be hashed.
    pub fn identity(&self) -> usize {
        Arc::as_ptr(&self.0) as *const u8 as usize
    }

    /// Partial derivative w.r.t. control `i`, by central differences.
    pub fn derivative(&self, controls: &[f64], i: usize) -> f64 {
        let h = 1e-6 * (1.0 + controls[i].abs());
        let mut lo = controls.to_vec();
        let mut hi = controls.to_vec();
        lo[i] -= h;
        hi[i] += h;
        (self.eval(&hi) - self.eval(&lo)) / (2.0 * h)
    }
}

impl fmt::Debug for BehavioralFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BehavioralFn(<closure>)")
    }
}

impl PartialEq for BehavioralFn {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Identifier of a circuit node. `NodeId::GROUND` is node `0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// True if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// AC stimulus of an independent source.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcStimulus {
    /// Magnitude (V or A).
    pub mag: f64,
    /// Phase in degrees.
    pub phase_deg: f64,
}

impl Default for AcStimulus {
    fn default() -> Self {
        AcStimulus {
            mag: 0.0,
            phase_deg: 0.0,
        }
    }
}

/// One circuit element.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// Unique element name (`R1`, `Q3`, …).
    pub name: String,
    /// Element behaviour and connectivity.
    pub kind: ElementKind,
}

/// The element variants understood by the simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum ElementKind {
    /// Linear resistor between `p` and `n`.
    Resistor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Resistance in ohms (must be non-zero).
        r: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Capacitance in farads.
        c: f64,
    },
    /// Linear inductor (adds a branch-current unknown).
    Inductor {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Inductance in henries.
        l: f64,
    },
    /// Independent voltage source (adds a branch-current unknown). The
    /// branch current is measured flowing *into* the `p` terminal, the
    /// SPICE convention.
    Vsource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Transient/DC waveform.
        wave: SourceWave,
        /// AC analysis stimulus.
        ac: AcStimulus,
    },
    /// Independent current source; positive current flows from `p`
    /// through the source to `n`.
    Isource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Transient/DC waveform.
        wave: SourceWave,
        /// AC analysis stimulus.
        ac: AcStimulus,
    },
    /// Voltage-controlled voltage source `E`: `v(p,n) = gain * v(cp,cn)`.
    Vcvs {
        /// Positive output terminal.
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source `G`: `i(p->n) = gm * v(cp,cn)`.
    Vccs {
        /// Current exits here into the circuit… (SPICE: current flows
        /// from `p` through the source to `n`).
        p: NodeId,
        /// Return terminal.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Current-controlled current source `F`: `i = gain * i(vsource)`.
    Cccs {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Name of the voltage source sensing the controlling current.
        vsource: String,
        /// Current gain.
        gain: f64,
    },
    /// Current-controlled voltage source `H`: `v(p,n) = r * i(vsource)`.
    Ccvs {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Name of the voltage source sensing the controlling current.
        vsource: String,
        /// Transresistance in ohms.
        r: f64,
    },
    /// Junction diode (anode `p`, cathode `n`).
    Diode {
        /// Anode.
        p: NodeId,
        /// Cathode.
        n: NodeId,
        /// Index into [`Circuit::diode_models`].
        model: usize,
        /// Area multiplier.
        area: f64,
    },
    /// Behavioral voltage source: `v(p,n) = f(v(controls...))`, a
    /// memoryless nonlinear controlled source (the "AHDL block inside the
    /// circuit simulator" of mixed-level design). Adds a branch-current
    /// unknown; linearized by numeric differentiation each Newton
    /// iteration.
    BehavioralV {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Controlling nodes, passed to `func` in order.
        controls: Vec<NodeId>,
        /// The behavioral function.
        func: BehavioralFn,
    },
    /// Bipolar transistor (collector, base, emitter, substrate).
    Bjt {
        /// Collector.
        c: NodeId,
        /// Base.
        b: NodeId,
        /// Emitter.
        e: NodeId,
        /// Substrate (ground if not wired).
        s: NodeId,
        /// Index into [`Circuit::bjt_models`].
        model: usize,
        /// Area multiplier (SPICE `AREA` scaling).
        area: f64,
    },
    /// Mutual-inductor coupling (`K` card) between two named inductors:
    /// `M = k * sqrt(L1 * L2)`. Adds no unknowns of its own; it stamps
    /// cross terms onto the coupled inductors' branch rows. Validated at
    /// compile time (both names must be inductors, `|k| <= 1`).
    MutualInd {
        /// Name of the first coupled inductor.
        l1: String,
        /// Name of the second coupled inductor.
        l2: String,
        /// Coupling coefficient, `-1 <= k <= 1`.
        k: f64,
    },
}

/// A complete circuit: nodes, models, elements and initial conditions.
///
/// # Example
///
/// ```
/// use ahfic_spice::circuit::Circuit;
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.vsource("V1", vin, Circuit::gnd(), 5.0);
/// ckt.resistor("R1", vin, out, 1e3);
/// ckt.resistor("R2", out, Circuit::gnd(), 1e3);
/// assert_eq!(ckt.num_nodes(), 3); // ground + 2
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_lookup: HashMap<String, usize>,
    /// 1-based netlist line each element came from, index-aligned with
    /// `elements`; `None` for builder-API circuits.
    element_lines: Vec<Option<usize>>,
    /// Registered BJT model cards.
    pub bjt_models: Vec<BjtModel>,
    /// Registered diode model cards.
    pub diode_models: Vec<DiodeModel>,
    /// Node initial conditions applied by `tran` when starting with UIC.
    ics: Vec<(NodeId, f64)>,
}

impl Circuit {
    /// Creates an empty circuit (ground pre-registered).
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            ..Default::default()
        };
        c.node_lookup.insert("0".to_string(), NodeId(0));
        c.node_lookup.insert("gnd".to_string(), NodeId(0));
        c
    }

    /// The ground node.
    pub fn gnd() -> NodeId {
        NodeId::GROUND
    }

    /// Interns (or retrieves) a named node.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.node_lookup.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_lookup.insert(key, id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_lookup.get(&name.to_ascii_lowercase()).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total node count including ground and any interned internals.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// All elements, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Finds an element index by name.
    pub fn find_element(&self, name: &str) -> Option<usize> {
        self.element_lookup.get(&name.to_ascii_lowercase()).copied()
    }

    fn push_element(&mut self, name: impl Into<String>, kind: ElementKind) -> usize {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        assert!(
            !self.element_lookup.contains_key(&key),
            "duplicate element name {name}"
        );
        let idx = self.elements.len();
        self.element_lookup.insert(key, idx);
        self.elements.push(Element { name, kind });
        self.element_lines.push(None);
        idx
    }

    /// Records the 1-based netlist line an element was parsed from, so
    /// lint diagnostics can point back into the deck.
    pub fn set_element_line(&mut self, idx: usize, line: usize) {
        self.element_lines[idx] = Some(line);
    }

    /// Netlist line provenance of an element, when known.
    pub fn element_line(&self, idx: usize) -> Option<usize> {
        self.element_lines.get(idx).copied().flatten()
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics on duplicate element name or non-positive resistance.
    pub fn resistor(&mut self, name: &str, p: NodeId, n: NodeId, r: f64) -> usize {
        assert!(r > 0.0, "resistor {name} must have positive resistance");
        self.push_element(name, ElementKind::Resistor { p, n, r })
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, name: &str, p: NodeId, n: NodeId, c: f64) -> usize {
        assert!(c >= 0.0, "capacitor {name} must be non-negative");
        self.push_element(name, ElementKind::Capacitor { p, n, c })
    }

    /// Adds an inductor.
    pub fn inductor(&mut self, name: &str, p: NodeId, n: NodeId, l: f64) -> usize {
        assert!(l > 0.0, "inductor {name} must be positive");
        self.push_element(name, ElementKind::Inductor { p, n, l })
    }

    /// Adds a mutual-inductor coupling (`K` card) between two named
    /// inductors. References are resolved — and `|k| <= 1` enforced — at
    /// [`Prepared::compile`] time, so the inductors may be added later.
    pub fn mutual(&mut self, name: &str, l1: &str, l2: &str, k: f64) -> usize {
        self.push_element(
            name,
            ElementKind::MutualInd {
                l1: l1.to_string(),
                l2: l2.to_string(),
                k,
            },
        )
    }

    /// Adds a DC voltage source.
    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, dc: f64) -> usize {
        self.vsource_wave(name, p, n, SourceWave::Dc(dc))
    }

    /// Adds a voltage source with an arbitrary waveform.
    pub fn vsource_wave(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave) -> usize {
        self.push_element(
            name,
            ElementKind::Vsource {
                p,
                n,
                wave,
                ac: AcStimulus::default(),
            },
        )
    }

    /// Adds a DC current source (current flows from `p` through the source
    /// to `n`).
    pub fn isource(&mut self, name: &str, p: NodeId, n: NodeId, dc: f64) -> usize {
        self.isource_wave(name, p, n, SourceWave::Dc(dc))
    }

    /// Adds a current source with an arbitrary waveform.
    pub fn isource_wave(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave) -> usize {
        self.push_element(
            name,
            ElementKind::Isource {
                p,
                n,
                wave,
                ac: AcStimulus::default(),
            },
        )
    }

    /// Sets the AC stimulus of an existing independent source.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] if the element is missing or is not
    /// an independent source.
    pub fn set_ac(&mut self, name: &str, mag: f64, phase_deg: f64) -> Result<()> {
        let idx = self
            .find_element(name)
            .ok_or_else(|| SpiceError::Netlist(format!("no element named {name}")))?;
        match &mut self.elements[idx].kind {
            ElementKind::Vsource { ac, .. } | ElementKind::Isource { ac, .. } => {
                *ac = AcStimulus { mag, phase_deg };
                Ok(())
            }
            _ => Err(SpiceError::Netlist(format!(
                "{name} is not an independent source"
            ))),
        }
    }

    /// Replaces the waveform of an existing independent source (used by
    /// sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] if the element is missing or is not
    /// an independent source.
    pub fn set_source_wave(&mut self, name: &str, new_wave: SourceWave) -> Result<()> {
        let idx = self
            .find_element(name)
            .ok_or_else(|| SpiceError::Netlist(format!("no element named {name}")))?;
        match &mut self.elements[idx].kind {
            ElementKind::Vsource { wave, .. } | ElementKind::Isource { wave, .. } => {
                *wave = new_wave;
                Ok(())
            }
            _ => Err(SpiceError::Netlist(format!(
                "{name} is not an independent source"
            ))),
        }
    }

    /// Changes the value of an existing resistor (used by mismatch
    /// sweeps: the MNA pattern is unchanged, so a compiled circuit stays
    /// valid).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] if the element is missing, is not a
    /// resistor, or `new_r` is not positive.
    pub fn set_resistance(&mut self, name: &str, new_r: f64) -> Result<()> {
        if new_r <= 0.0 {
            return Err(SpiceError::Netlist(format!(
                "resistor {name} must stay positive (got {new_r})"
            )));
        }
        let idx = self
            .find_element(name)
            .ok_or_else(|| SpiceError::Netlist(format!("no element named {name}")))?;
        match &mut self.elements[idx].kind {
            ElementKind::Resistor { r, .. } => {
                *r = new_r;
                Ok(())
            }
            _ => Err(SpiceError::Netlist(format!("{name} is not a resistor"))),
        }
    }

    /// Adds a voltage-controlled voltage source.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> usize {
        self.push_element(name, ElementKind::Vcvs { p, n, cp, cn, gain })
    }

    /// Adds a voltage-controlled current source.
    pub fn vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> usize {
        self.push_element(name, ElementKind::Vccs { p, n, cp, cn, gm })
    }

    /// Adds a current-controlled current source sensing `vsource`.
    pub fn cccs(&mut self, name: &str, p: NodeId, n: NodeId, vsource: &str, gain: f64) -> usize {
        self.push_element(
            name,
            ElementKind::Cccs {
                p,
                n,
                vsource: vsource.to_string(),
                gain,
            },
        )
    }

    /// Adds a behavioral voltage source `v(p,n) = func(v(controls))`.
    ///
    /// The function must be memoryless; it is re-evaluated (with numeric
    /// differentiation) on every Newton iteration of every analysis.
    pub fn behavioral_vsource(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        controls: &[NodeId],
        func: BehavioralFn,
    ) -> usize {
        self.push_element(
            name,
            ElementKind::BehavioralV {
                p,
                n,
                controls: controls.to_vec(),
                func,
            },
        )
    }

    /// Adds a current-controlled voltage source sensing `vsource`.
    pub fn ccvs(&mut self, name: &str, p: NodeId, n: NodeId, vsource: &str, r: f64) -> usize {
        self.push_element(
            name,
            ElementKind::Ccvs {
                p,
                n,
                vsource: vsource.to_string(),
                r,
            },
        )
    }

    /// Registers a diode model and returns its index.
    pub fn add_diode_model(&mut self, model: DiodeModel) -> usize {
        self.diode_models.push(model);
        self.diode_models.len() - 1
    }

    /// Registers a BJT model and returns its index.
    pub fn add_bjt_model(&mut self, model: BjtModel) -> usize {
        self.bjt_models.push(model);
        self.bjt_models.len() - 1
    }

    /// Finds a registered BJT model by name.
    pub fn find_bjt_model(&self, name: &str) -> Option<usize> {
        self.bjt_models
            .iter()
            .position(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Finds a registered diode model by name.
    pub fn find_diode_model(&self, name: &str) -> Option<usize> {
        self.diode_models
            .iter()
            .position(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Adds a diode.
    ///
    /// # Panics
    ///
    /// Panics if the model index is out of range.
    pub fn diode(&mut self, name: &str, p: NodeId, n: NodeId, model: usize, area: f64) -> usize {
        assert!(model < self.diode_models.len(), "bad diode model index");
        self.push_element(name, ElementKind::Diode { p, n, model, area })
    }

    /// Adds a bipolar transistor with the substrate grounded.
    pub fn bjt(
        &mut self,
        name: &str,
        c: NodeId,
        b: NodeId,
        e: NodeId,
        model: usize,
        area: f64,
    ) -> usize {
        self.bjt4(name, c, b, e, NodeId::GROUND, model, area)
    }

    /// Adds a four-terminal bipolar transistor.
    ///
    /// # Panics
    ///
    /// Panics if the model index is out of range or `area <= 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn bjt4(
        &mut self,
        name: &str,
        c: NodeId,
        b: NodeId,
        e: NodeId,
        s: NodeId,
        model: usize,
        area: f64,
    ) -> usize {
        assert!(model < self.bjt_models.len(), "bad BJT model index");
        assert!(area > 0.0, "BJT area must be positive");
        self.push_element(
            name,
            ElementKind::Bjt {
                c,
                b,
                e,
                s,
                model,
                area,
            },
        )
    }

    /// Waveform of a named independent source, or `None` if the element
    /// is missing or not a V/I source.
    pub fn source_wave(&self, name: &str) -> Option<&SourceWave> {
        let idx = self.find_element(name)?;
        match &self.elements[idx].kind {
            ElementKind::Vsource { wave, .. } | ElementKind::Isource { wave, .. } => Some(wave),
            _ => None,
        }
    }

    /// Iterates over the model cards referenced by the circuit's BJT
    /// elements, one entry per instance, in insertion order.
    pub fn bjt_instance_models(&self) -> impl Iterator<Item = &BjtModel> + '_ {
        self.elements.iter().filter_map(|el| match &el.kind {
            ElementKind::Bjt { model, .. } => Some(&self.bjt_models[*model]),
            _ => None,
        })
    }

    /// Declares an initial condition `v(node) = value` for UIC transient
    /// starts.
    pub fn set_ic(&mut self, node: NodeId, value: f64) {
        self.ics.push((node, value));
    }

    /// Declared initial conditions.
    pub fn ics(&self) -> &[(NodeId, f64)] {
        &self.ics
    }
}

/// Where an element's branch current lives in the unknown vector, if it
/// has one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchSlot(pub Option<usize>);

/// Internal-node bookkeeping for a BJT: indices are *unknown-vector* slots
/// (usize::MAX encodes ground).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BjtNodes {
    /// External collector / base / emitter / substrate unknown slots.
    pub c: usize,
    pub b: usize,
    pub e: usize,
    pub s: usize,
    /// Internal nodes (equal to the external slots when the parasitic
    /// resistance is zero).
    pub ci: usize,
    pub bi: usize,
    pub ei: usize,
}

/// Compiled view of a circuit: unknown indexing and internal nodes.
///
/// Unknowns are ordered: all non-ground node voltages (external then
/// internal), then branch currents. `usize::MAX` marks the ground slot.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The source circuit.
    pub circuit: Circuit,
    /// Number of voltage unknowns (external + internal nodes, excl. ground).
    pub num_voltage_unknowns: usize,
    /// Total unknown count.
    pub num_unknowns: usize,
    /// Per-element branch-current slot.
    pub branch_of: Vec<BranchSlot>,
    /// Per-element area-scaled BJT model copies.
    pub(crate) scaled_bjt: Vec<Option<BjtModel>>,
    /// Per-element area-scaled diode model copies.
    pub(crate) scaled_diode: Vec<Option<DiodeModel>>,
    /// Names for every unknown (diagnostics).
    pub unknown_names: Vec<String>,
    /// Per-element compiled device objects, index-aligned with
    /// [`Circuit::elements`]. All analysis dispatch walks this list.
    pub(crate) devices: Vec<Arc<dyn Device>>,
    /// Indices (into `devices`) of devices whose real stamp is
    /// solution-independent: cached in the Newton replay baseline.
    pub(crate) linear: Vec<usize>,
    /// Indices of devices re-stamped every Newton iteration.
    pub(crate) nonlinear: Vec<usize>,
    /// Warning-severity findings of the pre-flight lint pass (all
    /// findings under [`LintPolicy::Warn`]; empty under
    /// [`LintPolicy::Off`]).
    pub lint_warnings: Vec<LintDiagnostic>,
}

/// Area-scales a BJT model card: currents and capacitances multiply by
/// `area`, resistances divide by it — the SPICE `AREA` convention.
pub fn scale_bjt_model(m: &BjtModel, area: f64) -> BjtModel {
    let mut s = m.clone();
    s.is_ *= area;
    s.ise *= area;
    s.isc *= area;
    if s.ikf.is_finite() {
        s.ikf *= area;
    }
    if s.ikr.is_finite() {
        s.ikr *= area;
    }
    if s.irb.is_finite() {
        s.irb *= area;
    }
    s.itf *= area;
    s.cje *= area;
    s.cjc *= area;
    s.cjs *= area;
    s.rb /= area;
    s.rbm /= area;
    s.re /= area;
    s.rc /= area;
    s
}

/// Area-scales a diode model card.
pub fn scale_diode_model(m: &DiodeModel, area: f64) -> DiodeModel {
    let mut s = m.clone();
    s.is_ *= area;
    s.cjo *= area;
    s.rs /= area;
    s
}

/// Sentinel unknown index for the ground node.
pub const GROUND_SLOT: usize = usize::MAX;

impl Prepared {
    /// Compiles a circuit into its MNA unknown layout. The circuit is
    /// borrowed (and cloned into the result), so sweep loops can compile
    /// variants without giving up their working copy.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Netlist`] if a controlled source references a
    /// missing voltage source, or [`SpiceError::LintFailed`] when the
    /// pre-flight static verification pass (run under its default
    /// [`LintPolicy::Deny`]) finds error-severity structural defects.
    /// Use [`Prepared::compile_with`] to select another policy.
    pub fn compile(circuit: &Circuit) -> Result<Self> {
        Self::compile_with(circuit, LintPolicy::default())
    }

    /// Compiles a circuit with an explicit pre-flight lint policy:
    /// [`LintPolicy::Deny`] fails on error-severity findings,
    /// [`LintPolicy::Warn`] carries everything on
    /// [`Prepared::lint_warnings`], [`LintPolicy::Off`] skips the pass.
    pub fn compile_with(circuit: &Circuit, lint: LintPolicy) -> Result<Self> {
        let mut prep = Self::compile_unchecked(circuit)?;
        if lint == LintPolicy::Off {
            return Ok(prep);
        }
        let report = crate::lint::lint_prepared(&prep);
        if lint == LintPolicy::Deny && report.has_errors() {
            return Err(SpiceError::LintFailed(Box::new(report)));
        }
        prep.lint_warnings = report.diagnostics;
        Ok(prep)
    }

    /// The compile pipeline proper: unknown layout, device build, no
    /// lint.
    fn compile_unchecked(circuit: &Circuit) -> Result<Self> {
        let n_ext = circuit.num_nodes() - 1; // excluding ground
        let mut unknown_names: Vec<String> = (1..circuit.num_nodes())
            .map(|i| format!("v({})", circuit.node_names[i]))
            .collect();

        let mut next = n_ext;
        let mut bjt_nodes = vec![None; circuit.elements.len()];
        let mut diode_internal = vec![None; circuit.elements.len()];
        let mut scaled_bjt = vec![None; circuit.elements.len()];
        let mut scaled_diode = vec![None; circuit.elements.len()];

        // Internal nodes first so all voltage unknowns precede branches.
        for (idx, el) in circuit.elements.iter().enumerate() {
            match &el.kind {
                ElementKind::Bjt {
                    c,
                    b,
                    e,
                    s,
                    model,
                    area,
                } => {
                    let m = scale_bjt_model(&circuit.bjt_models[*model], *area);
                    let m = &m;
                    let (c, b, e, s) = (node_slot(*c), node_slot(*b), node_slot(*e), node_slot(*s));
                    let mut mk = |r: f64, tag: &str, ext: usize| -> usize {
                        if r > 0.0 {
                            let slot = next;
                            next += 1;
                            unknown_names.push(format!("v({}.{tag})", el.name));
                            slot
                        } else {
                            ext
                        }
                    };
                    let ci = mk(m.rc, "ci", c);
                    let bi = mk(m.rb, "bi", b);
                    let ei = mk(m.re, "ei", e);
                    bjt_nodes[idx] = Some(BjtNodes {
                        c,
                        b,
                        e,
                        s,
                        ci,
                        bi,
                        ei,
                    });
                    scaled_bjt[idx] = Some(m.clone());
                }
                ElementKind::Diode { model, area, .. } => {
                    let m = scale_diode_model(&circuit.diode_models[*model], *area);
                    if m.rs > 0.0 {
                        diode_internal[idx] = Some(next);
                        unknown_names.push(format!("v({}.int)", el.name));
                        next += 1;
                    }
                    scaled_diode[idx] = Some(m);
                }
                _ => {}
            }
        }
        let num_voltage_unknowns = next;

        // Branch currents.
        let mut branch_of = vec![BranchSlot(None); circuit.elements.len()];
        for (idx, el) in circuit.elements.iter().enumerate() {
            let needs_branch = matches!(
                el.kind,
                ElementKind::Vsource { .. }
                    | ElementKind::Inductor { .. }
                    | ElementKind::Vcvs { .. }
                    | ElementKind::Ccvs { .. }
                    | ElementKind::BehavioralV { .. }
            );
            if needs_branch {
                branch_of[idx] = BranchSlot(Some(next));
                unknown_names.push(format!("i({})", el.name));
                next += 1;
            }
        }

        // Validate controlled-source references.
        for el in &circuit.elements {
            if let ElementKind::Cccs { vsource, .. } | ElementKind::Ccvs { vsource, .. } = &el.kind
            {
                let ok = circuit
                    .find_element(vsource)
                    .map(|i| matches!(circuit.elements[i].kind, ElementKind::Vsource { .. }))
                    .unwrap_or(false);
                if !ok {
                    return Err(SpiceError::Netlist(format!(
                        "{} references voltage source {vsource} which does not exist",
                        el.name
                    )));
                }
            }
        }

        // Compile every element into its device object (validates K-card
        // references along the way).
        let set = build_devices(circuit, &branch_of, &bjt_nodes, &diode_internal)?;

        Ok(Prepared {
            num_voltage_unknowns,
            num_unknowns: next,
            branch_of,
            scaled_bjt,
            scaled_diode,
            unknown_names,
            devices: set.devices,
            linear: set.linear,
            nonlinear: set.nonlinear,
            circuit: circuit.clone(),
            lint_warnings: Vec::new(),
        })
    }

    /// Compiled device objects, one per element, in insertion order.
    pub fn devices(&self) -> &[Arc<dyn Device>] {
        &self.devices
    }

    /// Unknown slot of an external node (`GROUND_SLOT` for ground).
    pub fn slot_of(&self, n: NodeId) -> usize {
        node_slot(n)
    }

    /// Branch-current slot of a named element, if it has one.
    pub fn branch_slot(&self, name: &str) -> Option<usize> {
        let idx = self.circuit.find_element(name)?;
        self.branch_of[idx].0
    }

    /// Voltage of node `n` in an unknown vector (0 for ground).
    pub fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        let s = self.slot_of(n);
        if s == GROUND_SLOT {
            0.0
        } else {
            x[s]
        }
    }
}

/// Unknown slot of an external node (`GROUND_SLOT` for ground).
#[inline]
pub(crate) fn node_slot(n: NodeId) -> usize {
    if n.is_ground() {
        GROUND_SLOT
    } else {
        n.0 - 1
    }
}

/// Reads unknown `slot` out of `x`, treating the ground sentinel as zero.
#[inline]
pub(crate) fn read_slot(x: &[f64], slot: usize) -> f64 {
    if slot == GROUND_SLOT {
        0.0
    } else {
        x[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_is_case_insensitive() {
        let mut c = Circuit::new();
        let a = c.node("OUT");
        let b = c.node("out");
        assert_eq!(a, b);
        assert_eq!(c.node_name(a), "OUT");
        assert_eq!(c.find_node("Out"), Some(a));
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn compile_assigns_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, b, 1e3);
        c.inductor("L1", b, Circuit::gnd(), 1e-9);
        let p = Prepared::compile(&c).unwrap();
        assert_eq!(p.num_voltage_unknowns, 2);
        assert_eq!(p.num_unknowns, 4); // 2 nodes + V branch + L branch
        assert_eq!(p.branch_slot("V1"), Some(2));
        assert_eq!(p.branch_slot("L1"), Some(3));
        assert_eq!(p.branch_slot("R1"), None);
        assert_eq!(p.unknown_names[0], "v(a)");
        assert_eq!(p.unknown_names[2], "i(V1)");
    }

    #[test]
    fn bjt_internal_nodes_created_only_for_nonzero_parasitics() {
        let mut c = Circuit::new();
        let (cc, bb, ee) = (c.node("c"), c.node("b"), c.node("e"));
        let mut m = BjtModel::named("m1");
        m.rb = 100.0;
        m.rc = 20.0;
        // re = 0 -> no internal emitter node.
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", cc, bb, ee, mi, 1.0);
        // A lone BJT is (deliberately) floating; bypass the pre-flight
        // lint to inspect the compiled layout.
        let p = Prepared::compile_with(&c, LintPolicy::Off).unwrap();
        // 3 external + 2 internal
        assert_eq!(p.num_voltage_unknowns, 5);
        let names = &p.unknown_names;
        assert!(names.iter().any(|n| n == "v(Q1.ci)"));
        assert!(names.iter().any(|n| n == "v(Q1.bi)"));
        assert!(!names.iter().any(|n| n == "v(Q1.ei)"));
    }

    #[test]
    fn bad_cccs_reference_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.cccs("F1", a, Circuit::gnd(), "Vmissing", 2.0);
        assert!(matches!(Prepared::compile(&c), Err(SpiceError::Netlist(_))));
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_names_panic() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        c.resistor("r1", a, Circuit::gnd(), 2.0);
    }

    #[test]
    fn set_ac_and_wave() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.set_ac("V1", 1.0, 90.0).unwrap();
        c.set_source_wave("V1", SourceWave::Dc(2.0)).unwrap();
        assert!(c.set_ac("R9", 1.0, 0.0).is_err());
        match &c.elements()[0].kind {
            ElementKind::Vsource { wave, ac, .. } => {
                assert_eq!(*wave, SourceWave::Dc(2.0));
                assert_eq!(ac.mag, 1.0);
                assert_eq!(ac.phase_deg, 90.0);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn ics_recorded() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.set_ic(a, 2.5);
        assert_eq!(c.ics(), &[(a, 2.5)]);
    }
}
