//! Subcircuit (`.subckt` / `X`) preprocessing.
//!
//! Classic SPICE hierarchy is flattened before element parsing: every
//! `X` card is expanded in place, with internal nodes and element names
//! prefixed by the instance path (`x1.n3`, `x1.q2`). Models stay global.
//!
//! ```text
//! .subckt eclstage inp inn outp outn vcc
//!   RLP vcc cp 130
//!   ...
//! .ends
//! X1 a b c d vcc eclstage
//! ```

use crate::error::{Result, SpiceError};
use std::collections::HashMap;

/// A parsed subcircuit definition.
#[derive(Clone, Debug, PartialEq)]
struct SubcktDef {
    name: String,
    ports: Vec<String>,
    /// Raw element cards (line number, text).
    cards: Vec<(usize, String)>,
}

/// Maximum nesting depth (guards against recursive definitions).
const MAX_DEPTH: usize = 16;

/// Expands all `.subckt`/`.ends`/`X` cards in a logical-line list
/// (continuations already joined), returning a flat card list.
///
/// # Errors
///
/// Returns [`SpiceError::Parse`] for malformed or unknown subcircuits,
/// port-count mismatches and recursion beyond [`MAX_DEPTH`].
pub(crate) fn expand_subcircuits(lines: Vec<(usize, String)>) -> Result<Vec<(usize, String)>> {
    // Pass 1: collect definitions (non-nested, as in SPICE2).
    let mut defs: HashMap<String, SubcktDef> = HashMap::new();
    let mut top: Vec<(usize, String)> = Vec::new();
    let mut current: Option<SubcktDef> = None;
    for (lineno, line) in lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with(".subckt") {
            if current.is_some() {
                return Err(SpiceError::Parse {
                    line: lineno,
                    message: "nested .subckt definitions are not supported".into(),
                });
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() < 3 {
                return Err(SpiceError::Parse {
                    line: lineno,
                    message: ".subckt needs a name and at least one port".into(),
                });
            }
            current = Some(SubcktDef {
                name: toks[1].to_ascii_lowercase(),
                ports: toks[2..].iter().map(|t| t.to_ascii_lowercase()).collect(),
                cards: Vec::new(),
            });
        } else if lower.starts_with(".ends") {
            match current.take() {
                Some(def) => {
                    defs.insert(def.name.clone(), def);
                }
                None => {
                    return Err(SpiceError::Parse {
                        line: lineno,
                        message: ".ends without .subckt".into(),
                    })
                }
            }
        } else if let Some(def) = &mut current {
            def.cards.push((lineno, line));
        } else {
            top.push((lineno, line));
        }
    }
    if let Some(def) = current {
        return Err(SpiceError::Parse {
            line: 0,
            message: format!(".subckt {} never closed with .ends", def.name),
        });
    }

    // Pass 2: expand X cards recursively.
    let mut out = Vec::new();
    for (lineno, line) in top {
        expand_card(&line, lineno, "", &defs, 0, &mut out)?;
    }
    Ok(out)
}

/// Expands one card. Invariant: node tokens in `line` are already fully
/// scoped (top-level names, or rewritten by [`rewrite_nodes`]); only
/// element names still need the instance-path prefix.
fn expand_card(
    line: &str,
    lineno: usize,
    prefix: &str,
    defs: &HashMap<String, SubcktDef>,
    depth: usize,
    out: &mut Vec<(usize, String)>,
) -> Result<()> {
    let first = line.chars().next().unwrap_or(' ');
    if first != 'X' && first != 'x' {
        out.push((lineno, prefix_names(line, prefix)?));
        return Ok(());
    }
    if depth >= MAX_DEPTH {
        return Err(SpiceError::Parse {
            line: lineno,
            message: "subcircuit nesting too deep (recursive definition?)".into(),
        });
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() < 2 {
        return Err(SpiceError::Parse {
            line: lineno,
            message: "malformed X card".into(),
        });
    }
    let inst = toks[0].to_ascii_lowercase();
    let subname = toks[toks.len() - 1].to_ascii_lowercase();
    let def = defs.get(&subname).ok_or_else(|| SpiceError::Parse {
        line: lineno,
        message: format!("unknown subcircuit `{subname}`"),
    })?;
    // Actual connection nodes are already fully scoped.
    let actual: Vec<String> = toks[1..toks.len() - 1]
        .iter()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if actual.len() != def.ports.len() {
        return Err(SpiceError::Parse {
            line: lineno,
            message: format!(
                "{} connects {} nodes but subcircuit {subname} has {} ports",
                toks[0],
                actual.len(),
                def.ports.len()
            ),
        });
    }
    let inner_prefix = format!("{prefix}{inst}.");
    // Port map: formal (local) name -> actual (outer, fully scoped) name.
    let port_map: HashMap<&str, &str> = def
        .ports
        .iter()
        .map(String::as_str)
        .zip(actual.iter().map(String::as_str))
        .collect();
    for (card_line, card) in &def.cards {
        let substituted = rewrite_nodes(card, &port_map, &inner_prefix, *card_line)?;
        expand_card(
            &substituted,
            *card_line,
            &inner_prefix,
            defs,
            depth + 1,
            out,
        )?;
    }
    Ok(())
}

/// Positions of node tokens for each element letter (1-based token
/// indices after the name). `None` = all-but-value heuristics handled
/// separately.
fn node_token_count(letter: char, toks: &[&str]) -> usize {
    match letter {
        'R' | 'C' | 'L' | 'V' | 'I' | 'D' => 2,
        'E' | 'G' => 4,
        'F' | 'H' => 2,
        'Q' => {
            // Q c b e model | Q c b e s model: decide by token count
            // (name + nodes + model [+ area]).
            if toks.len() >= 6 && toks[5].parse::<f64>().is_err() {
                4
            } else if toks.len() >= 6 {
                // name c b e s model area? Ambiguous; 4-terminal when the
                // 6th token is not numeric handled above, else 3.
                3
            } else {
                3
            }
        }
        _ => 0,
    }
}

/// Rewrites a definition card's node tokens into the instantiating
/// scope: ports map to their (fully scoped) actuals, ground stays
/// ground, every other node gets the instance prefix. Element names are
/// left untouched (handled at emission by [`prefix_names`]).
fn rewrite_nodes(
    card: &str,
    port_map: &HashMap<&str, &str>,
    inner_prefix: &str,
    lineno: usize,
) -> Result<String> {
    let toks: Vec<&str> = card.split_whitespace().collect();
    if toks.is_empty() {
        return Ok(String::new());
    }
    let letter = toks[0]
        .chars()
        .next()
        .map_or(' ', |c| c.to_ascii_uppercase());
    if letter == '.' {
        return Err(SpiceError::Parse {
            line: lineno,
            message: format!("directive `{}` not allowed inside .subckt", toks[0]),
        });
    }
    let n_nodes = if letter == 'X' {
        toks.len().saturating_sub(2) // every middle token is a node
    } else {
        let n = node_token_count(letter, &toks);
        if n == 0 {
            return Err(SpiceError::Parse {
                line: lineno,
                message: format!("unsupported card inside .subckt: {card}"),
            });
        }
        n
    };
    let mut out: Vec<String> = Vec::with_capacity(toks.len());
    out.push(toks[0].to_string());
    for (k, tok) in toks.iter().enumerate().skip(1) {
        let is_node = k <= n_nodes;
        if is_node {
            let lower = tok.to_ascii_lowercase();
            if lower == "0" || lower == "gnd" {
                out.push(lower);
            } else {
                match port_map.get(lower.as_str()) {
                    Some(actual) => out.push((*actual).to_string()),
                    None => out.push(format!("{inner_prefix}{lower}")),
                }
            }
        } else {
            out.push(tok.to_string());
        }
    }
    Ok(out.join(" "))
}

/// Prefixes the element name (and, for F/H cards, the controlling-source
/// reference) with the instance path. Node tokens are already scoped.
fn prefix_names(card: &str, prefix: &str) -> Result<String> {
    if prefix.is_empty() {
        return Ok(card.to_string());
    }
    let toks: Vec<&str> = card.split_whitespace().collect();
    if toks.is_empty() {
        return Ok(String::new());
    }
    let letter = toks[0]
        .chars()
        .next()
        .map_or(' ', |c| c.to_ascii_uppercase());
    let mut out: Vec<String> = Vec::with_capacity(toks.len());
    out.push(format!("{prefix}{}", toks[0]));
    for (k, tok) in toks.iter().enumerate().skip(1) {
        if (letter == 'F' || letter == 'H') && k == 3 {
            // Controlling source reference is an element name in the same
            // scope as this card.
            out.push(format!("{prefix}{tok}"));
        } else {
            out.push(tok.to_string());
        }
    }
    Ok(out.join(" "))
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_netlist;

    #[test]
    fn expands_simple_subckt() {
        let ckt = parse_netlist(
            ".subckt divider top mid
             R1 top mid 1k
             R2 mid 0 1k
             .ends
             V1 in 0 10
             X1 in out divider
             Rload out 0 1meg
            ",
        )
        .unwrap();
        // Expanded elements: V1, x1.r1, x1.r2, Rload.
        assert_eq!(ckt.elements().len(), 4);
        assert!(ckt.find_element("x1.R1").is_some());
        // `mid` was a port mapped to `out`; solve to be sure.
        let prep = crate::circuit::Prepared::compile(&ckt).unwrap();
        let r = crate::analysis::op::op_eval(&prep, &Default::default()).unwrap();
        let out = prep.circuit.find_node("out").unwrap();
        // 1k over (1k || 1meg): v = 10 * 999.001 / 1999.001.
        let expect = 10.0 * (1e3 * 1e6 / (1e3 + 1e6)) / (1e3 + 1e3 * 1e6 / (1e3 + 1e6));
        assert!((prep.voltage(&r.x, out) - expect).abs() < 1e-9);
    }

    #[test]
    fn local_nodes_are_scoped_per_instance() {
        let ckt = parse_netlist(
            ".subckt stage a b
             R1 a internal 1k
             R2 internal b 1k
             .ends
             V1 in 0 4
             X1 in m stage
             X2 m out stage
             RL out 0 2k
            ",
        )
        .unwrap();
        // Each instance gets its own `internal` node.
        assert!(ckt.find_node("x1.internal").is_some());
        assert!(ckt.find_node("x2.internal").is_some());
        let prep = crate::circuit::Prepared::compile(&ckt).unwrap();
        let r = crate::analysis::op::op_eval(&prep, &Default::default()).unwrap();
        // 4 V over 1k+1k+1k+1k+2k, out = 4 * 2/6.
        let out = prep.circuit.find_node("out").unwrap();
        assert!((prep.voltage(&r.x, out) - 4.0 * 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn nested_instantiation_works() {
        let ckt = parse_netlist(
            ".subckt unit a b
             R1 a b 1k
             .ends
             .subckt pair a b
             X1 a m unit
             X2 m b unit
             .ends
             V1 in 0 1
             X9 in 0 pair
            ",
        )
        .unwrap();
        assert!(ckt.find_element("x9.x1.R1").is_some());
        assert!(ckt.find_element("x9.x2.R1").is_some());
        let prep = crate::circuit::Prepared::compile(&ckt).unwrap();
        let r = crate::analysis::op::op_eval(&prep, &Default::default()).unwrap();
        // 1 V over 2k -> i(V1) = -0.5 mA.
        let i = r.x[prep.branch_slot("V1").unwrap()];
        assert!((i + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn ground_is_never_prefixed() {
        let ckt = parse_netlist(
            ".subckt g a
             R1 a 0 1k
             .ends
             V1 in 0 1
             X1 in g
            ",
        )
        .unwrap();
        let prep = crate::circuit::Prepared::compile(&ckt).unwrap();
        let r = crate::analysis::op::op_eval(&prep, &Default::default()).unwrap();
        let i = r.x[prep.branch_slot("V1").unwrap()];
        assert!((i + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn bjt_subckt_with_global_model() {
        let ckt = parse_netlist(
            ".model n NPN (IS=1e-16 BF=100)
             .subckt ce in out vcc
             RC vcc out 1k
             Q1 out in 0 n
             .ends
             VCC vdd 0 5
             VB b 0 0.75
             X1 b c vdd ce
            ",
        )
        .unwrap();
        let prep = crate::circuit::Prepared::compile(&ckt).unwrap();
        let r = crate::analysis::op::op_eval(&prep, &Default::default()).unwrap();
        let c = prep.circuit.find_node("c").unwrap();
        let vc = prep.voltage(&r.x, c);
        assert!(vc < 5.0 && vc > 0.0, "vc = {vc}");
    }

    #[test]
    fn error_cases() {
        assert!(
            parse_netlist(".subckt a p\nR1 p 0 1\n").is_err(),
            "unclosed"
        );
        assert!(parse_netlist(".ends\n").is_err(), "stray .ends");
        assert!(
            parse_netlist("X1 a b missing\nR1 a 0 1\n").is_err(),
            "unknown sub"
        );
        assert!(
            parse_netlist(".subckt s a b\nR1 a b 1\n.ends\nX1 n1 s\n").is_err(),
            "port count mismatch"
        );
        // Recursion guard.
        assert!(parse_netlist(".subckt s a b\nX1 a b s\n.ends\nX1 p q s\nR1 p 0 1\n").is_err());
    }

    #[test]
    fn controlled_source_reference_scoped() {
        let ckt = parse_netlist(
            ".subckt sense a b
             Vm a b 0
             F1 0 fout Vm 2
             Rf fout 0 1k
             .ends
             V1 in 0 1
             R1 in m 1k
             X1 m 0 sense
            ",
        )
        .unwrap();
        let prep = crate::circuit::Prepared::compile(&ckt).unwrap();
        let r = crate::analysis::op::op_eval(&prep, &Default::default()).unwrap();
        // 1 mA through the sense source -> F injects 2 mA into x1.fout.
        let fout = prep.circuit.find_node("x1.fout").unwrap();
        assert!((prep.voltage(&r.x, fout) - 2.0).abs() < 1e-6);
    }
}
