//! Topology-graph checks of the pre-flight pass: ground reachability,
//! voltage-source / inductor loops, current-source cutsets, dangling
//! pins and value sanity.
//!
//! All checks run on the [`TopologyEdge`](crate::devices::TopologyEdge)
//! set the compiled devices declare, in unknown slots, with ground
//! mapped to one extra virtual vertex so union-find stays dense.

use super::{
    element_label, join_capped, node_label, LintCode, LintDiagnostic, LintSeverity, TaggedEdge,
};
use crate::circuit::{ElementKind, Prepared, GROUND_SLOT};
use crate::devices::EdgeKind;
use std::collections::BTreeMap;

/// Path-compressed union-find over dense vertex indices.
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    /// Makes every vertex its own set again, keeping the allocation.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i;
        }
    }

    pub fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    /// Unions the sets of `a` and `b`; returns `false` if they were
    /// already joined (the new edge closes a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// `true` for edge kinds that carry DC current between their terminals.
fn conducts_dc(kind: EdgeKind) -> bool {
    matches!(
        kind,
        EdgeKind::Conductive | EdgeKind::VoltageDef | EdgeKind::Inductive
    )
}

/// Runs every graph check, appending findings to `out`.
pub(crate) fn check(prep: &Prepared, edges: &[TaggedEdge], out: &mut Vec<LintDiagnostic>) {
    let n = prep.num_voltage_unknowns;
    let gnd = n;
    let slot = |s: usize| if s == GROUND_SLOT { gnd } else { s };
    // One union-find shared by every check that needs one (reset between
    // uses): this pass runs on every compile, so it avoids re-allocating.
    let mut uf = UnionFind::new(n + 1);

    check_ground_reachability(prep, edges, n, gnd, slot, &mut uf, out);
    check_voltage_loops(prep, edges, n, gnd, slot, &mut uf, out);
    check_dangling_pins(prep, edges, n, slot, out);
    check_values(prep, out);
}

/// Ground reachability: every voltage unknown needs a DC path to
/// ground. Islands are classified as current-source cutsets when a
/// current source feeds them, plain floating nodes otherwise; a circuit
/// with no ground connection at all gets one summary diagnostic naming
/// the accepted ground spellings.
fn check_ground_reachability(
    prep: &Prepared,
    edges: &[TaggedEdge],
    n: usize,
    gnd: usize,
    slot: impl Fn(usize) -> usize,
    uf: &mut UnionFind,
    out: &mut Vec<LintDiagnostic>,
) {
    for te in edges {
        if conducts_dc(te.edge.kind) {
            uf.union(slot(te.edge.a), slot(te.edge.b));
        }
    }

    let ground_touched = edges.iter().any(|te| {
        te.edge.kind != EdgeKind::Sense && (te.edge.a == GROUND_SLOT || te.edge.b == GROUND_SLOT)
    });
    if !ground_touched && n > 0 {
        let nodes: Vec<String> = (0..n).map(|s| node_label(prep, s)).collect();
        out.push(LintDiagnostic {
            code: LintCode::NoGround,
            severity: LintSeverity::Error,
            elements: Vec::new(),
            message: format!(
                "no element connects to the ground node; every circuit needs a DC \
                 reference (accepted ground node names: `0`, `gnd`) — {} node(s) \
                 are adrift: {}",
                nodes.len(),
                join_capped(&nodes, 6)
            ),
            nodes,
        });
        return;
    }

    // Group non-ground-component slots into islands by union-find root.
    let ground_root = uf.find(gnd);
    let mut islands: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for s in 0..n {
        let r = uf.find(s);
        if r != ground_root {
            islands.entry(r).or_default().push(s);
        }
    }

    for members in islands.values() {
        let mut in_island = vec![false; n];
        for &s in members {
            in_island[s] = true;
        }
        let touches = |s: usize| s != GROUND_SLOT && in_island[s];
        let mut feeders: Vec<String> = Vec::new();
        let mut incident: Vec<String> = Vec::new();
        for te in edges {
            if !(touches(te.edge.a) || touches(te.edge.b)) {
                continue;
            }
            let label = element_label(prep, te.elem);
            if te.edge.kind == EdgeKind::CurrentForcing {
                if !feeders.contains(&label) {
                    feeders.push(label);
                }
            } else if !incident.contains(&label) {
                incident.push(label);
            }
        }
        let nodes: Vec<String> = members.iter().map(|&s| node_label(prep, s)).collect();
        if feeders.is_empty() {
            out.push(LintDiagnostic {
                code: LintCode::FloatingNode,
                severity: LintSeverity::Error,
                message: format!(
                    "node(s) {} have no DC path to ground{}",
                    join_capped(&nodes, 6),
                    if incident.is_empty() {
                        String::new()
                    } else {
                        format!(" (touched only by {})", join_capped(&incident, 6))
                    }
                ),
                elements: incident,
                nodes,
            });
        } else {
            out.push(LintDiagnostic {
                code: LintCode::CurrentCutset,
                severity: LintSeverity::Error,
                message: format!(
                    "current source(s) {} force current into node(s) {} which have \
                     no DC return path to ground: KCL there is over-determined",
                    join_capped(&feeders, 6),
                    join_capped(&nodes, 6)
                ),
                elements: feeders,
                nodes,
            });
        }
    }
}

/// Voltage-definition loop detection: walks V/E/H/B and inductor edges
/// in element order over a spanning forest; any edge that closes a
/// cycle is a loop of branch-current elements. A cycle made purely of
/// voltage-definition branches is structurally singular (the branch
/// columns are linearly dependent); a cycle containing at least one
/// inductor is numerically survivable through the inductor's internal
/// series resistance and is reported as a warning.
fn check_voltage_loops(
    prep: &Prepared,
    edges: &[TaggedEdge],
    n: usize,
    gnd: usize,
    slot: impl Fn(usize) -> usize,
    uf: &mut UnionFind,
    out: &mut Vec<LintDiagnostic>,
) {
    // Pass 1: voltage-definition edges only. Any V/E/H/B edge closing a
    // cycle inside this forest closes a loop made purely of
    // voltage-definition branches — the fatal kind — no matter what
    // other (inductive) paths exist between the same nodes. A single
    // combined forest would mask e.g. two parallel V sources whenever
    // an inductor happened to connect their nodes first.
    let mut fatal = std::collections::HashSet::new();
    let mut tree: Vec<(usize, usize, usize, EdgeKind)> = Vec::new();
    uf.reset();
    for te in edges {
        if te.edge.kind != EdgeKind::VoltageDef {
            continue;
        }
        let (a, b) = (slot(te.edge.a), slot(te.edge.b));
        if a == b {
            fatal.insert(te.elem);
            report_loop(prep, &[(te.elem, te.edge.kind)], &[a], gnd, out);
            continue;
        }
        if uf.union(a, b) {
            tree.push((a, b, te.elem, te.edge.kind));
            continue;
        }
        // The edge closes a cycle: recover the tree path from a to b.
        let (path_elems, path_nodes) = tree_path(&tree, n + 1, a, b);
        let mut cycle = path_elems;
        cycle.push((te.elem, te.edge.kind));
        fatal.insert(te.elem);
        report_loop(prep, &cycle, &path_nodes, gnd, out);
        // Deliberately not unioned: the forest stays a forest so each
        // extra loop-closing element yields its own diagnostic.
    }

    // Pass 2: voltage-definition and inductive edges together. Cycles
    // here that were not already reported as fatal contain at least one
    // inductor and are survivable (warning): the loop current is limited
    // by the inductor's internal series resistance.
    uf.reset();
    tree.clear();
    for te in edges {
        if !matches!(te.edge.kind, EdgeKind::VoltageDef | EdgeKind::Inductive) {
            continue;
        }
        if fatal.contains(&te.elem) {
            continue;
        }
        let (a, b) = (slot(te.edge.a), slot(te.edge.b));
        if a == b {
            report_loop(prep, &[(te.elem, te.edge.kind)], &[a], gnd, out);
            continue;
        }
        if uf.union(a, b) {
            tree.push((a, b, te.elem, te.edge.kind));
            continue;
        }
        let (path_elems, path_nodes) = tree_path(&tree, n + 1, a, b);
        let mut cycle = path_elems;
        cycle.push((te.elem, te.edge.kind));
        report_loop(prep, &cycle, &path_nodes, gnd, out);
    }
}

/// BFS through the spanning forest from `a` to `b`; returns the
/// elements and vertices along the path. The adjacency is materialized
/// here, on the already-doomed diagnosis path, so the clean-compile
/// path pays only one flat `Vec` of tree edges.
fn tree_path(
    tree: &[(usize, usize, usize, EdgeKind)],
    n_vertices: usize,
    a: usize,
    b: usize,
) -> (Vec<(usize, EdgeKind)>, Vec<usize>) {
    let mut adj: Vec<Vec<(usize, usize, EdgeKind)>> = vec![Vec::new(); n_vertices];
    for &(u, v, elem, kind) in tree {
        adj[u].push((v, elem, kind));
        adj[v].push((u, elem, kind));
    }
    let mut prev: Vec<Option<(usize, usize, EdgeKind)>> = vec![None; adj.len()];
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[a] = true;
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        if v == b {
            break;
        }
        for &(w, elem, kind) in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                prev[w] = Some((v, elem, kind));
                queue.push_back(w);
            }
        }
    }
    let mut elems = Vec::new();
    let mut nodes = vec![b];
    let mut v = b;
    while v != a {
        let (p, elem, kind) = prev[v].expect("path exists inside one tree component");
        elems.push((elem, kind));
        nodes.push(p);
        v = p;
    }
    (elems, nodes)
}

/// Emits the diagnostic for one detected loop.
fn report_loop(
    prep: &Prepared,
    cycle: &[(usize, EdgeKind)],
    vertices: &[usize],
    gnd: usize,
    out: &mut Vec<LintDiagnostic>,
) {
    let pure_vdef = cycle.iter().all(|&(_, k)| k == EdgeKind::VoltageDef);
    let elements: Vec<String> = cycle.iter().map(|&(e, _)| element_label(prep, e)).collect();
    let nodes: Vec<String> = vertices
        .iter()
        .map(|&v| {
            if v == gnd {
                "0".to_string()
            } else {
                node_label(prep, v)
            }
        })
        .collect();
    if pure_vdef {
        out.push(LintDiagnostic {
            code: LintCode::VsourceLoop,
            severity: LintSeverity::Error,
            message: format!(
                "voltage-defining element(s) {} form a loop through node(s) {}: \
                 their branch equations are linearly dependent and the MNA matrix \
                 is singular",
                join_capped(&elements, 6),
                join_capped(&nodes, 6)
            ),
            elements,
            nodes,
        });
    } else {
        out.push(LintDiagnostic {
            code: LintCode::InductorLoop,
            severity: LintSeverity::Warning,
            message: format!(
                "element(s) {} form a DC short loop through node(s) {}: the loop \
                 current is limited only by the inductor's internal 1 nOhm series \
                 resistance and will be absurdly large",
                join_capped(&elements, 6),
                join_capped(&nodes, 6)
            ),
            elements,
            nodes,
        });
    }
}

/// Flags external nodes touched by exactly one element terminal.
/// Degree-0 nodes are already floating islands; degree-1 nodes are
/// solvable (the dangling branch carries no current) but almost always
/// a mis-wired or misspelled connection — classically a subcircuit pin
/// left unconnected.
fn check_dangling_pins(
    prep: &Prepared,
    edges: &[TaggedEdge],
    n: usize,
    slot: impl Fn(usize) -> usize,
    out: &mut Vec<LintDiagnostic>,
) {
    let n_ext = prep.circuit.num_nodes().saturating_sub(1).min(n);
    let mut degree = vec![0usize; n_ext];
    let mut only_elem = vec![usize::MAX; n_ext];
    for te in edges {
        if te.edge.kind == EdgeKind::Sense {
            continue;
        }
        let (a, b) = (slot(te.edge.a), slot(te.edge.b));
        if a == b {
            continue;
        }
        for v in [a, b] {
            if v < n_ext {
                degree[v] += 1;
                only_elem[v] = te.elem;
            }
        }
    }
    for v in 0..n_ext {
        if degree[v] == 1 {
            let node = node_label(prep, v);
            let elem = element_label(prep, only_elem[v]);
            out.push(LintDiagnostic {
                code: LintCode::DanglingPin,
                severity: LintSeverity::Warning,
                message: format!(
                    "node {node} is connected to only one element ({elem}); the \
                     dangling branch carries no current — likely an unconnected \
                     pin or a misspelled node name"
                ),
                elements: vec![elem],
                nodes: vec![node],
            });
        }
    }
}

/// Value-sanity screens: part values the parser accepts syntactically
/// but the stamps cannot survive (or that silently do nothing).
fn check_values(prep: &Prepared, out: &mut Vec<LintDiagnostic>) {
    for (idx, el) in prep.circuit.elements().iter().enumerate() {
        let label = || vec![element_label(prep, idx)];
        let diag = |code, severity, message: String, elements: Vec<String>| LintDiagnostic {
            code,
            severity,
            message,
            elements,
            nodes: Vec::new(),
        };
        match &el.kind {
            ElementKind::Resistor { r, .. } => {
                if *r == 0.0 || !r.is_finite() {
                    out.push(diag(
                        LintCode::ValueSanity,
                        LintSeverity::Error,
                        format!(
                            "{} has resistance {r:e} Ohm: the conductance stamp \
                             1/R is not finite",
                            element_label(prep, idx)
                        ),
                        label(),
                    ));
                } else if *r < 0.0 {
                    out.push(diag(
                        LintCode::ValueSanity,
                        LintSeverity::Warning,
                        format!(
                            "{} has negative resistance {r:e} Ohm",
                            element_label(prep, idx)
                        ),
                        label(),
                    ));
                }
            }
            ElementKind::Capacitor { c, .. } => {
                if !c.is_finite() {
                    out.push(diag(
                        LintCode::ValueSanity,
                        LintSeverity::Error,
                        format!(
                            "{} has non-finite capacitance {c:e} F",
                            element_label(prep, idx)
                        ),
                        label(),
                    ));
                } else if *c <= 0.0 {
                    out.push(diag(
                        LintCode::ValueSanity,
                        LintSeverity::Warning,
                        format!(
                            "{} has capacitance {c:e} F: the element stores no \
                             charge",
                            element_label(prep, idx)
                        ),
                        label(),
                    ));
                }
            }
            ElementKind::Inductor { l, .. } => {
                if !l.is_finite() {
                    out.push(diag(
                        LintCode::ValueSanity,
                        LintSeverity::Error,
                        format!(
                            "{} has non-finite inductance {l:e} H",
                            element_label(prep, idx)
                        ),
                        label(),
                    ));
                } else if *l <= 0.0 {
                    out.push(diag(
                        LintCode::ValueSanity,
                        LintSeverity::Warning,
                        format!(
                            "{} has inductance {l:e} H: the branch degenerates to \
                             a DC short",
                            element_label(prep, idx)
                        ),
                        label(),
                    ));
                }
            }
            ElementKind::MutualInd { k, .. } if *k == 0.0 => {
                out.push(diag(
                    LintCode::ValueSanity,
                    LintSeverity::Warning,
                    format!(
                        "{} has zero coupling coefficient: the K card has no \
                         effect",
                        element_label(prep, idx)
                    ),
                    label(),
                ));
            }
            _ => {}
        }
    }
}
