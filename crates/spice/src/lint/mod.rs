//! Static circuit verification: a deterministic pre-flight pass that
//! runs at [`Prepared::compile`] time, before any Newton iteration.
//!
//! The paper's methodology is to catch design errors at the highest
//! level possible instead of deep inside a simulation run. Today a
//! floating node or a loop of ideal voltage sources surfaces only as a
//! `SingularMatrix` error out of the LU factorization, with no pointer
//! back to the offending element; this module turns those failures into
//! typed diagnostics that name the nodes and elements involved (with
//! netlist line numbers when the circuit came from a deck).
//!
//! Two layers of checks:
//!
//! 1. **Graph checks** ([`graph`]) on the element topology every device
//!    declares through [`crate::devices::Device::topology`]: ground
//!    reachability / floating-node detection via union-find over
//!    DC-conducting edges, voltage-source / inductor loop detection,
//!    current-source cutset detection, dangling pins, and value-sanity
//!    screens the parser cannot reject contextually.
//! 2. **Matrix-structure checks** ([`matching`]) on the assembled MNA
//!    pattern: a structural rank test via Hopcroft–Karp maximum
//!    bipartite matching, with a Dulmage–Mendelsohn-style alternating
//!    reachability pass that names the exact unknowns and equations in
//!    the deficient block. This is the backstop for defects the graph
//!    heuristics cannot see (e.g. a VCVS in parallel with a voltage
//!    source).
//!
//! Policy is selected through [`LintPolicy`] (the
//! [`Options::lint`](crate::analysis::Options::lint) knob): `Deny`
//! (default) fails compilation on error-severity diagnostics,
//! `Warn` carries everything as warnings on the compiled circuit, and
//! `Off` skips the pass entirely.

pub mod graph;
pub mod matching;

use crate::circuit::{Prepared, GROUND_SLOT};
use crate::devices::TopologyEdge;
use std::fmt;

/// Machine-readable identity of one lint finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// No element connects to the ground node at all.
    NoGround,
    /// A set of nodes has no DC path to ground.
    FloatingNode,
    /// A loop of ideal voltage-definition branches (V/E/H/B): the
    /// branch-current columns are linearly dependent.
    VsourceLoop,
    /// A DC short loop containing at least one inductor: solvable only
    /// through the inductor's internal series resistance, with absurd
    /// branch currents.
    InductorLoop,
    /// Current sources force current into a subcircuit with no DC
    /// return path (a current-source cutset over-determines KCL).
    CurrentCutset,
    /// A node connected to exactly one element terminal.
    DanglingPin,
    /// A part value the parser accepts but the stamps cannot survive
    /// (zero-ohm resistor, negative or zero reactances, zero coupling).
    ValueSanity,
    /// The MNA matrix is structurally rank-deficient for a reason the
    /// graph checks did not classify.
    StructuralSingular,
}

impl LintCode {
    /// Stable kebab-case code string, used in rendered diagnostics.
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::NoGround => "no-ground",
            LintCode::FloatingNode => "floating-node",
            LintCode::VsourceLoop => "vsource-loop",
            LintCode::InductorLoop => "inductor-loop",
            LintCode::CurrentCutset => "current-cutset",
            LintCode::DanglingPin => "dangling-pin",
            LintCode::ValueSanity => "value-sanity",
            LintCode::StructuralSingular => "structural-singular",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a lint finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// Suspicious but simulatable; carried on the compiled circuit.
    Warning,
    /// The first LU factorization (or the first stamp) cannot survive
    /// this; under [`LintPolicy::Deny`] compilation fails.
    Error,
}

/// What [`Prepared::compile_with`] does with lint findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintPolicy {
    /// Error-severity diagnostics fail compilation with
    /// [`crate::error::SpiceError::LintFailed`]; warnings are carried
    /// on the compiled circuit. The default.
    #[default]
    Deny,
    /// Everything — including error-severity findings — is carried as
    /// warnings; compilation never fails on lint.
    Warn,
    /// The pre-flight pass is skipped entirely.
    Off,
}

/// One typed finding of the pre-flight pass.
#[derive(Clone, Debug, PartialEq)]
pub struct LintDiagnostic {
    /// Machine-readable code.
    pub code: LintCode,
    /// Error or warning.
    pub severity: LintSeverity,
    /// Offending element labels, with netlist line numbers when known
    /// (`"R3 (line 4)"`).
    pub elements: Vec<String>,
    /// Offending node names.
    pub nodes: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            LintSeverity::Error => "error",
            LintSeverity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.code, self.message)
    }
}

/// Every finding of one pre-flight pass, in deterministic order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    /// All findings, errors and warnings interleaved in check order.
    pub diagnostics: Vec<LintDiagnostic>,
    /// Rows of the first assembled MNA pattern with no structural
    /// diagonal entry (voltage-source branch rows, ideal couplings).
    ///
    /// This extends the structural-rank guarantee to the iterative
    /// tier's preconditioner: when lint passes, the full-rank matching
    /// proves a complete LU exists, and this count bounds the unit
    /// pivots ILU(0) substitutes for structurally absent diagonals — so
    /// preconditioner construction is well-defined (finite, no zero
    /// divides) for exactly the same decks direct factorization accepts.
    /// Populated by the matrix-structure backstop; zero when that check
    /// was skipped because a graph check already errored.
    pub precond_diag_fallbacks: usize,
}

impl LintReport {
    /// `true` if any finding has error severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == LintSeverity::Error)
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &LintDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == LintSeverity::Error)
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> impl Iterator<Item = &LintDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == LintSeverity::Warning)
    }

    /// `true` if the pass found nothing at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, d) in self.diagnostics.iter().enumerate() {
            if k > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// One device's contribution to the topology graph, tagged with the
/// element index it came from.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TaggedEdge {
    pub elem: usize,
    pub edge: TopologyEdge,
}

/// Collects every device's declared topology, tagged by element index.
pub(crate) fn collect_edges(prep: &Prepared) -> Vec<TaggedEdge> {
    let mut edges = Vec::with_capacity(4 * prep.circuit.elements().len());
    let mut scratch = Vec::new();
    for dev in prep.devices() {
        scratch.clear();
        dev.topology(&mut scratch);
        for e in &scratch {
            edges.push(TaggedEdge {
                elem: dev.index(),
                edge: *e,
            });
        }
    }
    edges
}

/// Element label with netlist line provenance when available:
/// `"R3 (line 4)"` for parsed decks, `"R3"` for builder circuits.
pub(crate) fn element_label(prep: &Prepared, idx: usize) -> String {
    let name = &prep.circuit.elements()[idx].name;
    match prep.circuit.element_line(idx) {
        Some(line) => format!("{name} (line {line})"),
        None => name.clone(),
    }
}

/// Node name for an unknown slot: external and internal node names come
/// from the unknown table (`v(out)` → `out`), ground renders as `0`.
pub(crate) fn node_label(prep: &Prepared, slot: usize) -> String {
    if slot == GROUND_SLOT {
        return "0".to_string();
    }
    let n = &prep.unknown_names[slot];
    n.strip_prefix("v(")
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or(n)
        .to_string()
}

/// Runs the full pre-flight pass over a compiled circuit.
///
/// Graph checks always run; the matrix-structure backstop runs only
/// when the graph checks produced no error (a floating island would
/// make the matching fail for an already-diagnosed reason).
pub fn lint_prepared(prep: &Prepared) -> LintReport {
    let edges = collect_edges(prep);
    let mut diagnostics = Vec::new();
    graph::check(prep, &edges, &mut diagnostics);
    let mut precond_diag_fallbacks = 0;
    if !diagnostics
        .iter()
        .any(|d| d.severity == LintSeverity::Error)
    {
        precond_diag_fallbacks = matching::check(prep, &edges, &mut diagnostics);
    }
    LintReport {
        diagnostics,
        precond_diag_fallbacks,
    }
}

/// Joins at most `cap` names, appending `… (+k more)` past the cap.
pub(crate) fn join_capped(names: &[String], cap: usize) -> String {
    if names.len() <= cap {
        names.join(", ")
    } else {
        format!(
            "{} … (+{} more)",
            names[..cap].join(", "),
            names.len() - cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::error::SpiceError;
    use crate::parse::parse_netlist;

    fn lint(c: &Circuit) -> LintReport {
        let prep = Prepared::compile_with(c, LintPolicy::Off).unwrap();
        lint_prepared(&prep)
    }

    fn codes(r: &LintReport) -> Vec<LintCode> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_divider_is_clean() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 12.0);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        assert!(lint(&c).is_empty());
    }

    /// The structural-rank pass also counts the rows the ILU(0)
    /// preconditioner must bridge with unit pivots: one per ideal
    /// voltage-source branch equation, zero for resistive-only decks.
    #[test]
    fn precond_fallback_count_covers_branch_rows() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 12.0);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let r = lint(&c);
        assert!(r.is_empty());
        assert_eq!(r.precond_diag_fallbacks, 1, "one vsource branch row");

        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.isource("I1", Circuit::gnd(), a, 1e-3);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let r = lint(&c);
        assert!(r.is_empty());
        assert_eq!(r.precond_diag_fallbacks, 0, "no branch rows");
    }

    #[test]
    fn no_ground_names_accepted_aliases() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, b, 5.0);
        c.resistor("R1", a, b, 1e3);
        let r = lint(&c);
        assert_eq!(codes(&r), vec![LintCode::NoGround]);
        let d = &r.diagnostics[0];
        assert_eq!(d.severity, LintSeverity::Error);
        assert!(
            d.message.contains("`0`") && d.message.contains("`gnd`"),
            "{}",
            d.message
        );
        assert_eq!(d.nodes, vec!["a", "b"]);
    }

    #[test]
    fn floating_node_names_node_and_element() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("f");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.capacitor("C1", a, f, 1e-12);
        let r = lint(&c);
        assert_eq!(
            codes(&r),
            vec![LintCode::FloatingNode, LintCode::DanglingPin]
        );
        let d = &r.diagnostics[0];
        assert_eq!(d.nodes, vec!["f"]);
        assert_eq!(d.elements, vec!["C1"]);
    }

    #[test]
    fn vsource_loop_is_error_inductor_loop_is_warning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.vsource("V2", a, Circuit::gnd(), 5.0);
        let r = lint(&c);
        assert_eq!(codes(&r), vec![LintCode::VsourceLoop]);
        assert_eq!(r.diagnostics[0].severity, LintSeverity::Error);
        assert!(r.diagnostics[0].elements.iter().any(|e| e == "V1"));
        assert!(r.diagnostics[0].elements.iter().any(|e| e == "V2"));

        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.inductor("L1", a, Circuit::gnd(), 1e-9);
        let r = lint(&c);
        assert_eq!(codes(&r), vec![LintCode::InductorLoop]);
        assert_eq!(r.diagnostics[0].severity, LintSeverity::Warning);
    }

    #[test]
    fn parallel_vsources_are_fatal_even_when_an_inductor_joins_them_first() {
        // Regression: with a single combined V+L spanning forest, the
        // inductor connects a and 0 first, so both V edges close cycles
        // *through the inductor* and the fatal pure-V loop V1–V2 was
        // reported as two survivable inductor-loop warnings.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.inductor("L1", a, Circuit::gnd(), 1e-9);
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.vsource("V2", a, Circuit::gnd(), 3.0);
        let r = lint(&c);
        assert!(
            r.diagnostics.iter().any(|d| d.code == LintCode::VsourceLoop
                && d.severity == LintSeverity::Error
                && d.elements.iter().any(|e| e == "V1")
                && d.elements.iter().any(|e| e == "V2")),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn each_extra_loop_element_gets_its_own_diagnostic() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.vsource("V2", a, Circuit::gnd(), 5.0);
        c.vsource("V3", a, Circuit::gnd(), 5.0);
        let r = lint(&c);
        assert_eq!(
            codes(&r),
            vec![LintCode::VsourceLoop, LintCode::VsourceLoop]
        );
    }

    #[test]
    fn current_cutset_names_the_feeding_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource("I1", Circuit::gnd(), a, 1e-3);
        c.capacitor("C1", a, Circuit::gnd(), 1e-12);
        let r = lint(&c);
        assert_eq!(codes(&r), vec![LintCode::CurrentCutset]);
        let d = &r.diagnostics[0];
        assert_eq!(d.elements, vec!["I1"]);
        assert_eq!(d.nodes, vec!["a"]);
    }

    #[test]
    fn dangling_pin_is_warning_only() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.resistor("R2", a, d, 1e3);
        let r = lint(&c);
        assert_eq!(codes(&r), vec![LintCode::DanglingPin]);
        assert_eq!(r.diagnostics[0].severity, LintSeverity::Warning);
        assert_eq!(r.diagnostics[0].nodes, vec!["d"]);
        // Deny still compiles: warnings ride on the Prepared.
        let prep = Prepared::compile(&c).unwrap();
        assert_eq!(prep.lint_warnings.len(), 1);
    }

    #[test]
    fn value_sanity_catches_overflowed_and_useless_values() {
        // `1e999` overflows to +inf, which the parser's `v <= 0` screen
        // cannot reject; the conductance stamp would be 1/inf = 0.
        let deck = "V1 a 0 1\nR1 a 0 1e999\nR2 a 0 1k\n.end\n";
        let c = parse_netlist(deck).unwrap();
        let prep = Prepared::compile_with(&c, LintPolicy::Off).unwrap();
        let r = lint_prepared(&prep);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ValueSanity && d.severity == LintSeverity::Error));

        // A zero coupling coefficient is accepted but does nothing.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.inductor("L2", b, Circuit::gnd(), 1e-6);
        c.resistor("R1", b, Circuit::gnd(), 50.0);
        c.mutual("K1", "L1", "L2", 0.0);
        let r = lint(&c);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ValueSanity && d.severity == LintSeverity::Warning));
    }

    #[test]
    fn structural_singular_backstop_catches_gm_cancellation() {
        // 1 Ohm resistor in parallel with a VCCS whose gm exactly
        // cancels the conductance at the zero starting point: every
        // graph check passes, yet the single KCL row sums to zero.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        c.vccs("G1", a, Circuit::gnd(), a, Circuit::gnd(), -1.0);
        let r = lint(&c);
        assert_eq!(codes(&r), vec![LintCode::StructuralSingular]);
        let d = &r.diagnostics[0];
        assert!(d.message.contains("v(a)"), "{}", d.message);
        assert!(d.message.contains("KCL at node a"), "{}", d.message);
        assert!(d.elements.iter().any(|e| e == "R1"));
        assert!(d.elements.iter().any(|e| e == "G1"));
    }

    #[test]
    fn parsed_decks_carry_line_numbers() {
        let deck = "* floating island\n\
                    V1 in 0 1\n\
                    R1 in 0 1k\n\
                    C1 in f 1p\n\
                    .end\n";
        let c = parse_netlist(deck).unwrap();
        let err = Prepared::compile(&c).unwrap_err();
        let SpiceError::LintFailed(report) = err else {
            panic!("expected LintFailed");
        };
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::FloatingNode)
            .unwrap();
        assert!(
            d.elements.iter().any(|e| e == "C1 (line 4)"),
            "{:?}",
            d.elements
        );
    }

    #[test]
    fn policy_warn_carries_errors_as_warnings() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("f");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.capacitor("C1", a, f, 1e-12);
        assert!(matches!(
            Prepared::compile(&c),
            Err(SpiceError::LintFailed(_))
        ));
        let prep = Prepared::compile_with(&c, LintPolicy::Warn).unwrap();
        assert!(prep
            .lint_warnings
            .iter()
            .any(|d| d.code == LintCode::FloatingNode));
        let prep = Prepared::compile_with(&c, LintPolicy::Off).unwrap();
        assert!(prep.lint_warnings.is_empty());
    }
}
