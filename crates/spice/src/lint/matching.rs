//! Matrix-structure backstop of the pre-flight pass: a structural rank
//! test on the assembled MNA system via Hopcroft–Karp maximum bipartite
//! matching, with a Dulmage–Mendelsohn-style alternating-reachability
//! pass to name the exact equations and unknowns in the deficient
//! block.
//!
//! The graph checks in [`super::graph`] classify the common defects;
//! this pass catches whatever they cannot see — for instance a
//! transconductance numerically cancelling a resistor at the zero
//! starting point, which zeroes a pivot the first factorization would
//! die on. The probe stamps the same DC system the first Newton
//! iteration assembles (at `x = 0`, full source scale), sums duplicate
//! coordinates and treats exact zeros as structurally absent, so
//! "passes lint" implies "the first OP factorization has a structurally
//! nonsingular matrix".

use super::{
    element_label, join_capped, node_label, LintCode, LintDiagnostic, LintSeverity, TaggedEdge,
};
use crate::analysis::stamp::{assemble, MnaSink, Mode, NonlinMemory, Options};
use crate::circuit::Prepared;

/// [`MnaSink`] that records every stamped `(row, col, value)` triplet,
/// with the coordinate packed as `row << 32 | col` so one integer sort
/// orders the entries row-major (MNA dimensions are far below 2^32).
#[derive(Default)]
struct TripletSink {
    entries: Vec<(u64, f64)>,
}

impl MnaSink<f64> for TripletSink {
    fn reset(&mut self) {
        self.entries.clear();
    }

    fn add(&mut self, r: usize, c: usize, v: f64) {
        self.entries.push(((r as u64) << 32 | c as u64, v));
    }
}

/// Runs the structural rank test, appending at most one
/// [`LintCode::StructuralSingular`] diagnostic. Returns the number of
/// rows with no structural diagonal entry — the unit-pivot fallbacks an
/// ILU(0) preconditioner built on this pattern will need (see
/// [`LintReport::precond_diag_fallbacks`](super::LintReport::precond_diag_fallbacks)).
pub(crate) fn check(prep: &Prepared, edges: &[TaggedEdge], out: &mut Vec<LintDiagnostic>) -> usize {
    let n = prep.num_unknowns;
    if n == 0 {
        return 0;
    }
    // Assemble the DC system exactly as the first Newton iteration
    // does: zero solution vector, full source scale, default options.
    let x = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut mem = NonlinMemory::new(prep);
    let mut sink = TripletSink {
        entries: Vec::with_capacity(8 * prep.circuit.elements().len()),
    };
    let opts = Options::default();
    assemble(
        prep,
        &x,
        &opts,
        &Mode::Dc { source_scale: 1.0 },
        &mut mem,
        &mut sink,
        &mut rhs,
    );

    // Sum duplicates; entries cancelling to exactly 0.0 vanish from the
    // structure (NaN compares unequal to zero and stays, which is
    // right: a poisoned entry is still a structural entry). Counting-sort
    // scatter by row, then sort each row's handful of packed keys (which
    // orders by column): O(E) overall plus tiny per-row sorts, emitting
    // the compressed-row adjacency (flat column list plus row offsets).
    // This path runs on every compile, so it stays lean.
    let entries = sink.entries;
    let mut offsets = vec![0usize; n + 1];
    for &(key, _) in &entries {
        offsets[(key >> 32) as usize + 1] += 1;
    }
    for r in 0..n {
        offsets[r + 1] += offsets[r];
    }
    let mut scattered: Vec<(u64, f64)> = vec![(0, 0.0); entries.len()];
    // Scatter advances `offsets[r]` to the end of row `r`, so afterwards
    // row `r` spans `offsets[r - 1]..offsets[r]` (0 for the first row) —
    // no second cursor array needed.
    for &(key, v) in &entries {
        let slot = &mut offsets[(key >> 32) as usize];
        scattered[*slot] = (key, v);
        *slot += 1;
    }
    let mut cols: Vec<usize> = Vec::with_capacity(entries.len());
    let mut row_start: Vec<usize> = Vec::with_capacity(n + 1);
    row_start.push(0);
    for r in 0..n {
        let lo = if r == 0 { 0 } else { offsets[r - 1] };
        let row = &mut scattered[lo..offsets[r]];
        row.sort_unstable_by_key(|e| e.0);
        let mut i = 0;
        while i < row.len() {
            let (key, mut v) = row[i];
            i += 1;
            while i < row.len() && row[i].0 == key {
                v += row[i].1;
                i += 1;
            }
            if v != 0.0 {
                cols.push((key & 0xffff_ffff) as usize);
            }
        }
        row_start.push(cols.len());
    }
    let row_adj = CsrAdj {
        cols: &cols,
        row_start: &row_start,
    };
    // Rows without a structural diagonal (each row's columns are sorted,
    // so a binary search suffices): ILU(0) bridges each with a unit
    // pivot, and this count is surfaced on the report so "passes lint"
    // covers the preconditioner too.
    let missing_diags = (0..n)
        .filter(|&r| {
            cols[row_start[r]..row_start[r + 1]]
                .binary_search(&r)
                .is_err()
        })
        .count();

    let m = Matching::hopcroft_karp(row_adj, n);
    if m.size == n {
        return missing_diags;
    }

    // Dulmage–Mendelsohn flavor: alternating reachability from the
    // unmatched rows yields the over-determined block (rows competing
    // for too few columns); from the unmatched columns, the
    // under-determined unknowns.
    let (dep_rows, dep_cols) = m.alternating_from_unmatched_rows(row_adj);
    let free_cols: Vec<usize> = (0..n).filter(|&c| m.pair_col[c].is_none()).collect();

    let row_names: Vec<String> = dep_rows.iter().map(|&r| row_name(prep, r)).collect();
    let col_names: Vec<String> = free_cols
        .iter()
        .map(|&c| prep.unknown_names[c].clone())
        .collect();

    let mut elements = Vec::new();
    let mut nodes = Vec::new();
    for &s in dep_rows.iter().chain(&free_cols).chain(&dep_cols) {
        if s < prep.num_voltage_unknowns {
            let nd = node_label(prep, s);
            if !nodes.contains(&nd) {
                nodes.push(nd);
            }
        }
        for te in edges {
            if te.edge.a == s || te.edge.b == s || prep.branch_of[te.elem].0 == Some(s) {
                let label = element_label(prep, te.elem);
                if !elements.contains(&label) {
                    elements.push(label);
                }
            }
        }
    }

    out.push(LintDiagnostic {
        code: LintCode::StructuralSingular,
        severity: LintSeverity::Error,
        message: format!(
            "MNA system is structurally singular: structural rank {} of {}; \
             unknown(s) {} cannot be independently determined (equation block: {})",
            m.size,
            n,
            join_capped(&col_names, 6),
            join_capped(&row_names, 6),
        ),
        elements,
        nodes,
    });
    missing_diags
}

/// Equation name for row `r`: a KCL row for voltage unknowns, the
/// branch equation of the owning element for branch rows.
fn row_name(prep: &Prepared, r: usize) -> String {
    if r < prep.num_voltage_unknowns {
        format!("KCL at node {}", node_label(prep, r))
    } else {
        match prep.branch_of.iter().position(|b| b.0 == Some(r)) {
            Some(idx) => format!("branch equation of {}", element_label(prep, idx)),
            None => format!("equation {r}"),
        }
    }
}

/// Borrowed compressed-row adjacency: row `r`'s columns are
/// `cols[row_start[r]..row_start[r + 1]]`, sorted.
#[derive(Clone, Copy)]
struct CsrAdj<'a> {
    cols: &'a [usize],
    row_start: &'a [usize],
}

impl CsrAdj<'_> {
    fn n_rows(&self) -> usize {
        self.row_start.len() - 1
    }

    fn row(&self, r: usize) -> &[usize] {
        &self.cols[self.row_start[r]..self.row_start[r + 1]]
    }
}

/// Maximum bipartite matching state (rows on the left, columns on the
/// right).
struct Matching {
    /// Matched column of each row.
    pair_row: Vec<Option<usize>>,
    /// Matched row of each column.
    pair_col: Vec<Option<usize>>,
    /// Matching cardinality (== n means structurally full rank).
    size: usize,
}

impl Matching {
    /// Hopcroft–Karp: O(E sqrt(V)) maximum matching.
    fn hopcroft_karp(row_adj: CsrAdj<'_>, n_cols: usize) -> Self {
        let n_rows = row_adj.n_rows();
        let mut m = Matching {
            pair_row: vec![None; n_rows],
            pair_col: vec![None; n_cols],
            size: 0,
        };
        let mut dist = vec![usize::MAX; n_rows];
        let mut queue = std::collections::VecDeque::with_capacity(n_rows);
        loop {
            if !m.bfs_layers(row_adj, &mut dist, &mut queue) {
                break;
            }
            for u in 0..n_rows {
                if m.pair_row[u].is_none() && m.augment(row_adj, &mut dist, u) {
                    m.size += 1;
                }
            }
        }
        m
    }

    /// Layers free rows by alternating BFS; `true` if an augmenting
    /// path exists.
    fn bfs_layers(
        &self,
        row_adj: CsrAdj<'_>,
        dist: &mut [usize],
        queue: &mut std::collections::VecDeque<usize>,
    ) -> bool {
        queue.clear();
        for (u, d) in dist.iter_mut().enumerate() {
            if self.pair_row[u].is_none() {
                *d = 0;
                queue.push_back(u);
            } else {
                *d = usize::MAX;
            }
        }
        let mut reachable_free_col = false;
        while let Some(u) = queue.pop_front() {
            for &v in row_adj.row(u) {
                match self.pair_col[v] {
                    None => reachable_free_col = true,
                    Some(u2) => {
                        if dist[u2] == usize::MAX {
                            dist[u2] = dist[u] + 1;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        reachable_free_col
    }

    /// Layered DFS augmentation from free row `u`.
    fn augment(&mut self, row_adj: CsrAdj<'_>, dist: &mut [usize], u: usize) -> bool {
        for i in 0..row_adj.row(u).len() {
            let v = row_adj.row(u)[i];
            let ok = match self.pair_col[v] {
                None => true,
                Some(u2) => dist[u2] == dist[u] + 1 && self.augment(row_adj, dist, u2),
            };
            if ok {
                self.pair_row[u] = Some(v);
                self.pair_col[v] = Some(u);
                return true;
            }
        }
        dist[u] = usize::MAX;
        false
    }

    /// Alternating reachability from every unmatched row: returns the
    /// reachable row and column sets (the over-determined block).
    fn alternating_from_unmatched_rows(&self, row_adj: CsrAdj<'_>) -> (Vec<usize>, Vec<usize>) {
        let mut row_seen = vec![false; self.pair_row.len()];
        let mut col_seen = vec![false; self.pair_col.len()];
        let mut queue = std::collections::VecDeque::new();
        for (u, pair) in self.pair_row.iter().enumerate() {
            if pair.is_none() {
                row_seen[u] = true;
                queue.push_back(u);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in row_adj.row(u) {
                if !col_seen[v] {
                    col_seen[v] = true;
                    if let Some(u2) = self.pair_col[v] {
                        if !row_seen[u2] {
                            row_seen[u2] = true;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        (
            (0..row_seen.len()).filter(|&u| row_seen[u]).collect(),
            (0..col_seen.len()).filter(|&v| col_seen[v]).collect(),
        )
    }
}
