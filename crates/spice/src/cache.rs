//! Shared compile cache: content-addressed [`Prepared`] decks behind
//! `Arc` sharing, so concurrent jobs re-simulating the same circuit pay
//! compile cost once.
//!
//! The cache is keyed by a [`DeckKey`] — a deterministic 128-bit content
//! hash over everything that affects compilation: node names, the full
//! element list (names, connectivity, values, source waveforms), model
//! cards, initial conditions, behavioral-source closure identity, and
//! the lint policy the deck is compiled under. Two structurally
//! identical circuits built independently hash to the same key; any
//! value nudge produces a different one.
//!
//! Concurrency contract: a miss compiles at most once even when many
//! threads request the same deck simultaneously (the slot is a
//! [`OnceLock`]; late arrivals block on the winner's compile instead of
//! duplicating it), and compile *errors* are cached too — compilation
//! is deterministic, so retrying an invalid deck would only burn time.
//! Eviction is LRU over initialized entries, bounded by the configured
//! capacity; entries still compiling are never evicted.
//!
//! Each entry also carries an operating-point warm-start hint (the last
//! converged solution, like a SPICE nodeset): the serving layer stores
//! it after a successful job so the next job on the same deck converges
//! in a couple of Newton iterations instead of a cold ladder climb —
//! this, together with compile sharing, is where the serving throughput
//! multiple comes from.

use crate::circuit::{Circuit, ElementKind, NodeId, Prepared};
use crate::error::{Result, SpiceError};
use crate::lint::LintPolicy;
use ahfic_trace::TraceHandle;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Deterministic 128-bit content key of a circuit + compile policy.
///
/// Derived purely from deck content (no pointers except behavioral
/// closure identity, no randomness), so the same netlist hashes
/// identically across threads and runs of one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeckKey(u64, u64);

impl DeckKey {
    /// Content key of `circuit` compiled under `lint`.
    ///
    /// Computed structurally in one pass over the deck (a serving front
    /// end hashes every submitted job, so this sits on the hot path):
    /// every field that affects compilation is fed into two
    /// differently-salted deterministic SipHash streams. The element
    /// walk destructures each variant exhaustively — adding a field or
    /// variant without extending the key is a compile error, never a
    /// silent collision.
    pub fn of(circuit: &Circuit, lint: LintPolicy) -> DeckKey {
        let mut h = ForkHasher::new(0xA5, 0x5A);
        h.write_u8(match lint {
            LintPolicy::Deny => 0,
            LintPolicy::Warn => 1,
            LintPolicy::Off => 2,
        });
        h.write_usize(circuit.num_nodes());
        for i in 0..circuit.num_nodes() {
            circuit.node_name(NodeId(i)).hash(&mut h);
        }
        h.write_usize(circuit.elements().len());
        for crate::circuit::Element { name, kind } in circuit.elements() {
            name.hash(&mut h);
            hash_kind(&mut h, kind);
        }
        h.write_usize(circuit.bjt_models.len());
        for m in &circuit.bjt_models {
            hash_bjt_model(&mut h, m);
        }
        h.write_usize(circuit.diode_models.len());
        for m in &circuit.diode_models {
            hash_diode_model(&mut h, m);
        }
        h.write_usize(circuit.ics().len());
        for (node, v) in circuit.ics() {
            h.write_usize(node.0);
            h.write_u64(v.to_bits());
        }
        h.keys()
    }
}

impl std::fmt::Display for DeckKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

/// Two prefix-salted SipHash streams fed identical bytes.
/// `DefaultHasher::new()` uses fixed keys, so both are deterministic
/// across threads and runs of one process.
struct ForkHasher(DefaultHasher, DefaultHasher);

impl ForkHasher {
    fn new(salt_a: u8, salt_b: u8) -> Self {
        let mut a = DefaultHasher::new();
        a.write_u8(salt_a);
        let mut b = DefaultHasher::new();
        b.write_u8(salt_b);
        ForkHasher(a, b)
    }

    fn keys(&self) -> DeckKey {
        DeckKey(self.0.finish(), self.1.finish())
    }
}

impl Hasher for ForkHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
        self.1.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// Feeds one BJT model card into the key streams. Exhaustively
/// destructured: a model struct gaining a field without extending the
/// key is a compile error.
fn hash_bjt_model(h: &mut ForkHasher, m: &crate::model::BjtModel) {
    let crate::model::BjtModel {
        name,
        polarity,
        is_,
        bf,
        nf,
        vaf,
        ikf,
        ise,
        ne,
        br,
        nr,
        var,
        ikr,
        isc,
        nc,
        rb,
        irb,
        rbm,
        re,
        rc,
        cje,
        vje,
        mje,
        tf,
        xtf,
        vtf,
        itf,
        cjc,
        vjc,
        mjc,
        xcjc,
        tr,
        cjs,
        vjs,
        mjs,
        fc,
        kf,
        af,
    } = m;
    name.hash(h);
    h.write_u8(match polarity {
        crate::model::BjtPolarity::Npn => 0,
        crate::model::BjtPolarity::Pnp => 1,
    });
    for v in [
        is_, bf, nf, vaf, ikf, ise, ne, br, nr, var, ikr, isc, nc, rb, irb, rbm, re, rc, cje, vje,
        mje, tf, xtf, vtf, itf, cjc, vjc, mjc, xcjc, tr, cjs, vjs, mjs, fc, kf, af,
    ] {
        h.write_u64(v.to_bits());
    }
}

/// Feeds one diode model card into the key streams (same exhaustive
/// contract as [`hash_bjt_model`]).
fn hash_diode_model(h: &mut ForkHasher, m: &crate::model::DiodeModel) {
    let crate::model::DiodeModel {
        name,
        is_,
        n,
        rs,
        cjo,
        vj,
        m: grading,
        tt,
        fc,
        bv,
        kf,
        af,
    } = m;
    name.hash(h);
    for v in [is_, n, rs, cjo, vj, grading, tt, fc, bv, kf, af] {
        h.write_u64(v.to_bits());
    }
}

/// Feeds one element variant into the key streams. Exhaustive on both
/// the variant list and every variant's fields by design.
fn hash_kind(h: &mut ForkHasher, kind: &ElementKind) {
    let f = |h: &mut ForkHasher, v: f64| h.write_u64(v.to_bits());
    let node = |h: &mut ForkHasher, id: &NodeId| h.write_usize(id.0);
    let ac = |h: &mut ForkHasher, s: &crate::circuit::AcStimulus| {
        let crate::circuit::AcStimulus { mag, phase_deg } = s;
        f(h, *mag);
        f(h, *phase_deg);
    };
    let wave = |h: &mut ForkHasher, w: &crate::wave::SourceWave| {
        use crate::wave::SourceWave;
        match w {
            SourceWave::Dc(v) => {
                h.write_u8(0);
                f(h, *v);
            }
            SourceWave::Sin {
                offset,
                ampl,
                freq,
                delay,
                damping,
                phase_deg,
            } => {
                h.write_u8(1);
                for v in [offset, ampl, freq, delay, damping, phase_deg] {
                    f(h, *v);
                }
            }
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                h.write_u8(2);
                for v in [v1, v2, delay, rise, fall, width, period] {
                    f(h, *v);
                }
            }
            SourceWave::Pwl(points) => {
                h.write_u8(3);
                h.write_usize(points.len());
                for (t, v) in points {
                    f(h, *t);
                    f(h, *v);
                }
            }
        }
    };
    match kind {
        ElementKind::Resistor { p, n, r } => {
            h.write_u8(0);
            node(h, p);
            node(h, n);
            f(h, *r);
        }
        ElementKind::Capacitor { p, n, c } => {
            h.write_u8(1);
            node(h, p);
            node(h, n);
            f(h, *c);
        }
        ElementKind::Inductor { p, n, l } => {
            h.write_u8(2);
            node(h, p);
            node(h, n);
            f(h, *l);
        }
        ElementKind::Vsource {
            p,
            n,
            wave: w,
            ac: a,
        } => {
            h.write_u8(3);
            node(h, p);
            node(h, n);
            wave(h, w);
            ac(h, a);
        }
        ElementKind::Isource {
            p,
            n,
            wave: w,
            ac: a,
        } => {
            h.write_u8(4);
            node(h, p);
            node(h, n);
            wave(h, w);
            ac(h, a);
        }
        ElementKind::Vcvs { p, n, cp, cn, gain } => {
            h.write_u8(5);
            for id in [p, n, cp, cn] {
                node(h, id);
            }
            f(h, *gain);
        }
        ElementKind::Vccs { p, n, cp, cn, gm } => {
            h.write_u8(6);
            for id in [p, n, cp, cn] {
                node(h, id);
            }
            f(h, *gm);
        }
        ElementKind::Cccs {
            p,
            n,
            vsource,
            gain,
        } => {
            h.write_u8(7);
            node(h, p);
            node(h, n);
            vsource.hash(h);
            f(h, *gain);
        }
        ElementKind::Ccvs { p, n, vsource, r } => {
            h.write_u8(8);
            node(h, p);
            node(h, n);
            vsource.hash(h);
            f(h, *r);
        }
        ElementKind::Diode { p, n, model, area } => {
            h.write_u8(9);
            node(h, p);
            node(h, n);
            h.write_usize(*model);
            f(h, *area);
        }
        ElementKind::BehavioralV {
            p,
            n,
            controls,
            func,
        } => {
            h.write_u8(10);
            node(h, p);
            node(h, n);
            h.write_usize(controls.len());
            for id in controls {
                node(h, id);
            }
            // Closures `Debug`-print opaquely; their shared identity is
            // the only thing that distinguishes two behavioral bodies.
            h.write_u64(func.identity() as u64);
        }
        ElementKind::Bjt {
            c,
            b,
            e,
            s,
            model,
            area,
        } => {
            h.write_u8(11);
            for id in [c, b, e, s] {
                node(h, id);
            }
            h.write_usize(*model);
            f(h, *area);
        }
        ElementKind::MutualInd { l1, l2, k } => {
            h.write_u8(12);
            l1.hash(h);
            l2.hash(h);
            f(h, *k);
        }
    }
}

/// One cache slot: the compile cell plus its warm-start hint.
#[derive(Debug, Default)]
struct Entry {
    /// Compiled deck (or its deterministic compile error), produced
    /// exactly once however many threads miss concurrently.
    cell: OnceLock<std::result::Result<Arc<Prepared>, SpiceError>>,
    /// Last converged operating point on this deck, if any job stored
    /// one — a nodeset-style warm start for the next job.
    hint: Mutex<Option<Vec<f64>>>,
}

/// Bookkeeping per key, separate from the shared entry so the LRU clock
/// never contends with a compile in flight.
#[derive(Debug)]
struct Slot {
    entry: Arc<Entry>,
    last_used: u64,
}

/// Snapshot of cache effectiveness counters.
///
/// `#[non_exhaustive]`: obtained from [`PreparedCache::stats`] only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups that found an already-compiled deck.
    pub hits: u64,
    /// Lookups that had to (wait for a) compile.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Actual compiles performed (≤ misses under concurrency).
    pub compiles: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Lookups that found an already-compiled deck.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to (wait for a) compile.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the LRU policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Actual compiles performed (≤ misses under concurrency).
    pub fn compiles(&self) -> u64 {
        self.compiles
    }

    /// Entries currently resident.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Hit fraction of all lookups (0.0 when none happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed, LRU-bounded cache of compiled decks shared
/// between concurrent analysis jobs.
///
/// ```
/// use ahfic_spice::cache::PreparedCache;
/// use ahfic_spice::circuit::Circuit;
/// use ahfic_spice::lint::LintPolicy;
///
/// let cache = PreparedCache::new(16);
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.vsource("V1", a, Circuit::gnd(), 1.0);
/// c.resistor("R1", a, Circuit::gnd(), 1e3);
/// let first = cache.get_or_compile(&c, LintPolicy::Deny)?;
/// let again = cache.get_or_compile(&c, LintPolicy::Deny)?;
/// assert!(!first.was_hit() && again.was_hit());
/// assert_eq!(cache.stats().compiles(), 1);
/// # Ok::<(), ahfic_spice::error::SpiceError>(())
/// ```
#[derive(Debug)]
pub struct PreparedCache {
    capacity: usize,
    slots: Mutex<HashMap<DeckKey, Slot>>,
    /// Monotonic LRU clock.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    compiles: AtomicU64,
    trace: TraceHandle,
}

impl PreparedCache {
    /// An empty cache holding at most `capacity` compiled decks
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PreparedCache::with_trace(capacity, TraceHandle::off())
    }

    /// Same, with `cache.hit` / `cache.miss` / `cache.evict` counters
    /// routed to a trace sink.
    pub fn with_trace(capacity: usize, trace: TraceHandle) -> Self {
        PreparedCache {
            capacity: capacity.max(1),
            slots: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            trace,
        }
    }

    /// Returns the compiled deck for `circuit` under `lint`, compiling
    /// at most once per content key however many threads ask
    /// concurrently.
    ///
    /// # Errors
    ///
    /// Propagates the (cached) compile error of an invalid deck —
    /// lint rejections, netlist validation failures.
    pub fn get_or_compile(&self, circuit: &Circuit, lint: LintPolicy) -> Result<CachedDeck> {
        let key = DeckKey::of(circuit, lint);
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let (entry, hit) = {
            #[allow(clippy::expect_used)]
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            if let Some(slot) = slots.get_mut(&key) {
                slot.last_used = now;
                let initialized = slot.entry.cell.get().is_some();
                (Arc::clone(&slot.entry), initialized)
            } else {
                // Make room first: evict the least-recently-used
                // *initialized* entries; a slot still compiling is
                // pinned (its waiters hold the Arc anyway).
                while slots.len() >= self.capacity {
                    let victim = slots
                        .iter()
                        .filter(|(_, s)| s.entry.cell.get().is_some())
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(k, _)| *k);
                    match victim {
                        Some(k) => {
                            slots.remove(&k);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                            self.trace.tracer().counter("cache.evict", 1.0);
                        }
                        None => break,
                    }
                }
                let entry = Arc::new(Entry::default());
                slots.insert(
                    key,
                    Slot {
                        entry: Arc::clone(&entry),
                        last_used: now,
                    },
                );
                (entry, false)
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.trace.tracer().counter("cache.hit", 1.0);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.trace.tracer().counter("cache.miss", 1.0);
        }
        let compiled = entry.cell.get_or_init(|| {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            Prepared::compile_with(circuit, lint).map(Arc::new)
        });
        match compiled {
            Ok(prepared) => Ok(CachedDeck {
                prepared: Arc::clone(prepared),
                entry,
                key,
                hit,
            }),
            Err(e) => Err(e.clone()),
        }
    }

    /// Effectiveness counters plus current residency.
    pub fn stats(&self) -> CacheStats {
        #[allow(clippy::expect_used)]
        let entries = self.slots.lock().expect("cache lock poisoned").len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Number of decks currently resident.
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether the cache holds no decks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A checked-out deck: shared compiled circuit plus access to the
/// entry's warm-start hint.
#[derive(Clone, Debug)]
pub struct CachedDeck {
    prepared: Arc<Prepared>,
    entry: Arc<Entry>,
    key: DeckKey,
    hit: bool,
}

impl CachedDeck {
    /// The shared compiled deck.
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }

    /// The content key this deck is cached under (what a serving worker
    /// indexes its per-deck state by).
    pub fn key(&self) -> DeckKey {
        self.key
    }

    /// Shared ownership of the compiled deck (what
    /// [`Session::from_arc`](crate::analysis::Session::from_arc)
    /// takes).
    pub fn prepared_arc(&self) -> Arc<Prepared> {
        Arc::clone(&self.prepared)
    }

    /// Whether this checkout found an already-compiled deck.
    pub fn was_hit(&self) -> bool {
        self.hit
    }

    /// The last stored operating-point hint for this deck, if any.
    pub fn op_hint(&self) -> Option<Vec<f64>> {
        #[allow(clippy::expect_used)]
        self.entry.hint.lock().expect("hint lock poisoned").clone()
    }

    /// Stores a converged solution as the warm-start hint for
    /// subsequent jobs on this deck.
    pub fn store_op_hint(&self, x: &[f64]) {
        #[allow(clippy::expect_used)]
        let mut hint = self.entry.hint.lock().expect("hint lock poisoned");
        *hint = Some(x.to_vec());
    }

    /// Discards the warm-start hint so the next job on this deck cold
    /// starts. The serving layer's retry path calls this before a second
    /// attempt: a poisoned (e.g. non-finite) hint must not re-kill the
    /// retry it caused.
    pub fn clear_op_hint(&self) {
        #[allow(clippy::expect_used)]
        let mut hint = self.entry.hint.lock().expect("hint lock poisoned");
        *hint = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider(r2: f64) -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 2.0);
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, Circuit::gnd(), r2);
        c
    }

    #[test]
    fn key_is_deterministic_and_value_sensitive() {
        let k1 = DeckKey::of(&divider(1e3), LintPolicy::Deny);
        let k2 = DeckKey::of(&divider(1e3), LintPolicy::Deny);
        assert_eq!(k1, k2, "independently built identical decks share a key");
        assert_ne!(k1, DeckKey::of(&divider(1.001e3), LintPolicy::Deny));
        assert_ne!(
            k1,
            DeckKey::of(&divider(1e3), LintPolicy::Off),
            "lint policy is part of the key"
        );
        assert_eq!(format!("{k1}").len(), 32);
    }

    #[test]
    fn behavioral_identity_distinguishes_decks() {
        use crate::circuit::BehavioralFn;
        let build = |f: BehavioralFn| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let o = c.node("o");
            c.vsource("V1", a, Circuit::gnd(), 1.0);
            c.resistor("R1", a, Circuit::gnd(), 1e3);
            c.behavioral_vsource("B1", o, Circuit::gnd(), &[a], f);
            c.resistor("RL", o, Circuit::gnd(), 1e3);
            c
        };
        let f1 = BehavioralFn::new(|v: &[f64]| v[0] * 2.0);
        let f2 = BehavioralFn::new(|v: &[f64]| v[0] * 3.0);
        let ka = DeckKey::of(&build(f1.clone()), LintPolicy::Deny);
        let kb = DeckKey::of(&build(f2), LintPolicy::Deny);
        let ka2 = DeckKey::of(&build(f1), LintPolicy::Deny);
        assert_ne!(ka, kb, "different closures, different decks");
        assert_eq!(ka, ka2, "same shared closure, same deck");
    }

    #[test]
    fn hit_and_compile_accounting() {
        let cache = PreparedCache::new(8);
        let c = divider(1e3);
        let d1 = cache.get_or_compile(&c, LintPolicy::Deny).unwrap();
        assert!(!d1.was_hit());
        let d2 = cache.get_or_compile(&c, LintPolicy::Deny).unwrap();
        assert!(d2.was_hit());
        let s = cache.stats();
        assert_eq!((s.hits(), s.misses(), s.compiles()), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        // Both checkouts share the same compiled allocation.
        assert!(std::ptr::eq(d1.prepared(), d2.prepared()));
    }

    #[test]
    fn lru_evicts_coldest_initialized_entry() {
        let cache = PreparedCache::new(2);
        let a = divider(1e3);
        let b = divider(2e3);
        let c = divider(3e3);
        cache.get_or_compile(&a, LintPolicy::Deny).unwrap();
        cache.get_or_compile(&b, LintPolicy::Deny).unwrap();
        // Touch `a` so `b` is the LRU victim.
        cache.get_or_compile(&a, LintPolicy::Deny).unwrap();
        cache.get_or_compile(&c, LintPolicy::Deny).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions(), 1);
        // `a` is still hot (hit); `b` was evicted (recompile).
        assert!(cache
            .get_or_compile(&a, LintPolicy::Deny)
            .unwrap()
            .was_hit());
        assert!(!cache
            .get_or_compile(&b, LintPolicy::Deny)
            .unwrap()
            .was_hit());
    }

    #[test]
    fn compile_errors_are_cached() {
        // A deck the Deny lint rejects: floating node behind a capacitor.
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("floating");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.capacitor("C1", f, Circuit::gnd(), 1e-12);
        let cache = PreparedCache::new(4);
        let e1 = cache.get_or_compile(&c, LintPolicy::Deny).unwrap_err();
        let e2 = cache.get_or_compile(&c, LintPolicy::Deny).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(cache.stats().compiles(), 1, "the failure was cached");
        // Under a different policy the same circuit compiles fine.
        assert!(cache.get_or_compile(&c, LintPolicy::Off).is_ok());
    }

    #[test]
    fn concurrent_misses_compile_once() {
        let cache = std::sync::Arc::new(PreparedCache::new(8));
        let c = divider(1e3);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = &cache;
                let c = &c;
                s.spawn(move || {
                    cache.get_or_compile(c, LintPolicy::Deny).unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.compiles(), 1, "OnceLock collapses concurrent misses");
        assert_eq!(stats.hits() + stats.misses(), 8);
    }

    #[test]
    fn warm_start_hint_round_trips() {
        let cache = PreparedCache::new(4);
        let c = divider(1e3);
        let d = cache.get_or_compile(&c, LintPolicy::Deny).unwrap();
        assert!(d.op_hint().is_none());
        d.store_op_hint(&[1.0, 0.5, -0.0005]);
        // A later checkout of the same deck sees the hint.
        let d2 = cache.get_or_compile(&c, LintPolicy::Deny).unwrap();
        assert_eq!(d2.op_hint().as_deref(), Some(&[1.0, 0.5, -0.0005][..]));
    }
}
