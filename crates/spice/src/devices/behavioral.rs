//! Behavioral (arbitrary-function) voltage source `B`: nonlinear in the
//! controlling node voltages, linearized by first-order Taylor expansion
//! each Newton iteration.

use super::{AcCtx, AcStamper, Device, EdgeKind, RealCtx, RealStamper, TopologyEdge};
use crate::analysis::stamp::NonlinMemory;
use crate::circuit::{read_slot, ElementKind, GROUND_SLOT};
use ahfic_num::Complex;

/// Behavioral voltage source with a branch-current unknown `k` and a
/// list of controlling unknown slots.
#[derive(Debug)]
pub(crate) struct BehavioralSource {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub k: usize,
    pub controls: Vec<usize>,
}

impl Device for BehavioralSource {
    fn index(&self) -> usize {
        self.idx
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::VoltageDef));
        // Controls are single node voltages sensed against ground.
        for &c in &self.controls {
            out.push(TopologyEdge::new(c, GROUND_SLOT, EdgeKind::Sense));
        }
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        let ElementKind::BehavioralV { func, .. } = &cx.prep.circuit.elements()[self.idx].kind
        else {
            unreachable!("behavioral device on non-behavioral element")
        };
        s.add(self.p, self.k, 1.0);
        s.add(self.n, self.k, -1.0);
        s.add(self.k, self.p, 1.0);
        s.add(self.k, self.n, -1.0);
        let vc: Vec<f64> = self.controls.iter().map(|&c| read_slot(cx.x, c)).collect();
        let f0 = func.eval(&vc);
        let mut rhs_val = f0;
        for (i, &cs) in self.controls.iter().enumerate() {
            let d = func.derivative(&vc, i);
            s.add(self.k, cs, -d);
            rhs_val -= d * vc[i];
        }
        s.rhs_add(self.k, rhs_val);
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let ElementKind::BehavioralV { func, .. } = &cx.prep.circuit.elements()[self.idx].kind
        else {
            unreachable!("behavioral device on non-behavioral element")
        };
        s.add(self.p, self.k, Complex::ONE);
        s.add(self.n, self.k, -Complex::ONE);
        s.add(self.k, self.p, Complex::ONE);
        s.add(self.k, self.n, -Complex::ONE);
        let vc: Vec<f64> = self
            .controls
            .iter()
            .map(|&c| read_slot(cx.x_op, c))
            .collect();
        for (i, &cs) in self.controls.iter().enumerate() {
            let d = func.derivative(&vc, i);
            s.add(self.k, cs, Complex::from_re(-d));
        }
    }
}
