//! Gummel–Poon bipolar transistor: model evaluation and the [`Device`]
//! implementation.
//!
//! [`eval_bjt`] computes terminal currents, the full Newton Jacobian,
//! stored charges and incremental capacitances at a junction-voltage pair.
//! Everything is done in *normalized* (NPN) space: for PNP devices the
//! caller flips terminal voltage signs before and current/charge signs
//! after (conductances and capacitances are invariant under that
//! transformation).

use super::{
    AcCtx, AcStamper, Device, EdgeKind, NoiseGenerator, OpCtx, RealCtx, RealStamper, TopologyEdge,
    KB, Q,
};
use crate::analysis::stamp::{ChargeState, Mode, NonlinMemory};
use crate::circuit::{read_slot, BjtNodes, Prepared};
use crate::devices::junction::{depletion, diode_current, limexp, pnjlim, vcrit};
use crate::model::BjtModel;
use ahfic_num::Complex;

/// Complete Gummel–Poon operating state at a `(vbe, vbc, vcs)` triple.
///
/// All quantities are in normalized NPN polarity. Currents flow *into* the
/// respective terminal.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BjtOperating {
    /// Internal base-emitter voltage used for evaluation (V).
    pub vbe: f64,
    /// Internal base-collector voltage (V).
    pub vbc: f64,
    /// Collector terminal current (A).
    pub ic: f64,
    /// Base terminal current (A).
    pub ib: f64,
    /// Emitter terminal current (A), `-(ic + ib)`.
    pub ie: f64,
    /// Transport (collector-to-emitter) current (A).
    pub it: f64,
    /// Total base-emitter diode current (A).
    pub ibe: f64,
    /// Total base-collector diode current (A).
    pub ibc: f64,
    /// `d(ibe)/d(vbe)` (S).
    pub gpi: f64,
    /// `d(ibc)/d(vbc)` (S).
    pub gmu: f64,
    /// `d(it)/d(vbe)` — forward transconductance (S).
    pub gmf: f64,
    /// `d(it)/d(vbc)` — reverse transconductance, negative of the Early
    /// output conductance contribution (S).
    pub gmr: f64,
    /// Normalized majority base charge `qb`.
    pub qb: f64,
    /// B-E stored charge: diffusion + depletion (C).
    pub qbe: f64,
    /// Internal B'-C' stored charge (C).
    pub qbc: f64,
    /// External B-C' depletion charge (the `1-XCJC` fraction) (C).
    pub qbx: f64,
    /// Collector-substrate depletion charge (C).
    pub qcs: f64,
    /// `d(qbe)/d(vbe)` (F).
    pub cbe: f64,
    /// `d(qbe)/d(vbc)` — cross capacitance via the bias-dependent transit
    /// time (F).
    pub cbe_bc: f64,
    /// `d(qbc)/d(vbc)` (F).
    pub cbc: f64,
    /// `d(qbx)/d(vbc_ext)` (F).
    pub cbx: f64,
    /// `d(qcs)/d(vcs)` (F).
    pub ccs: f64,
    /// Bias-dependent base resistance (ohm).
    pub rbb: f64,
}

impl BjtOperating {
    /// DC beta `ic/ib` at this point (guards against `ib == 0`).
    pub fn beta_dc(&self) -> f64 {
        if self.ib.abs() < 1e-300 {
            f64::INFINITY
        } else {
            self.ic / self.ib
        }
    }

    /// Unity-gain transition frequency from the small-signal parameters:
    /// `fT = gm / (2*pi*(cpi + cmu))`.
    pub fn ft(&self) -> f64 {
        let ctot = self.cbe + self.cbc + self.cbx;
        if ctot <= 0.0 {
            return f64::INFINITY;
        }
        self.gmf / (2.0 * std::f64::consts::PI * ctot)
    }
}

/// Evaluates the Gummel–Poon equations at internal junction voltages
/// `(vbe, vbc)` and collector-substrate voltage `vcs`, all in normalized
/// NPN polarity.
///
/// `vt` is the thermal voltage and `gmin` the convergence-aid conductance
/// placed across both junctions.
pub fn eval_bjt(
    model: &BjtModel,
    vbe: f64,
    vbc: f64,
    vcs: f64,
    vt: f64,
    gmin: f64,
) -> BjtOperating {
    let m = model;
    let nfvt = m.nf * vt;
    let nrvt = m.nr * vt;

    // Ideal transport diode currents.
    let (ef, def) = limexp(vbe, nfvt);
    let i_f = m.is_ * (ef - 1.0);
    let gif = m.is_ * def;
    let (er, der) = limexp(vbc, nrvt);
    let i_r = m.is_ * (er - 1.0);
    let gir = m.is_ * der;

    // Base charge qb = q1/2 (1 + sqrt(1 + 4 q2)).
    let inv_q1 = {
        let mut x = 1.0;
        if m.vaf.is_finite() {
            x -= vbc / m.vaf;
        }
        if m.var.is_finite() {
            x -= vbe / m.var;
        }
        // SPICE clamps to keep qb positive in deep saturation corners.
        x.max(1e-4)
    };
    let q1 = 1.0 / inv_q1;
    let mut q2 = 0.0;
    let mut dq2_dvbe = 0.0;
    let mut dq2_dvbc = 0.0;
    if m.ikf.is_finite() && m.ikf > 0.0 {
        q2 += i_f / m.ikf;
        dq2_dvbe += gif / m.ikf;
    }
    if m.ikr.is_finite() && m.ikr > 0.0 {
        q2 += i_r / m.ikr;
        dq2_dvbc += gir / m.ikr;
    }
    let s = (1.0 + 4.0 * q2).max(0.0).sqrt();
    let qb = q1 * (1.0 + s) / 2.0;
    let dq1_dvbe = if m.var.is_finite() {
        q1 * q1 / m.var
    } else {
        0.0
    };
    let dq1_dvbc = if m.vaf.is_finite() {
        q1 * q1 / m.vaf
    } else {
        0.0
    };
    let dqb_dvbe = dq1_dvbe * (1.0 + s) / 2.0 + q1 / s.max(1e-12) * dq2_dvbe;
    let dqb_dvbc = dq1_dvbc * (1.0 + s) / 2.0 + q1 / s.max(1e-12) * dq2_dvbc;

    // Transport current and transconductances.
    let it = (i_f - i_r) / qb;
    let gmf = gif / qb - it / qb * dqb_dvbe;
    let gmr = -gir / qb - it / qb * dqb_dvbc;

    // Base current components (ideal / qb-independent + leakage).
    let (ibe_ideal, gbe_ideal) = (i_f / m.bf, gif / m.bf);
    let (ible, gble) = if m.ise > 0.0 {
        diode_current(vbe, m.ise, m.ne * vt, 0.0)
    } else {
        (0.0, 0.0)
    };
    let (ibc_ideal, gbc_ideal) = (i_r / m.br, gir / m.br);
    let (iblc, gblc) = if m.isc > 0.0 {
        diode_current(vbc, m.isc, m.nc * vt, 0.0)
    } else {
        (0.0, 0.0)
    };
    let ibe = ibe_ideal + ible + gmin * vbe;
    let gpi = gbe_ideal + gble + gmin;
    let ibc = ibc_ideal + iblc + gmin * vbc;
    let gmu = gbc_ideal + gblc + gmin;

    // Bias-dependent transit time (XTF/VTF/ITF Kirk-effect surrogate).
    let (tff, dtff_dvbe, dtff_dvbc) = if m.tf > 0.0 && m.xtf > 0.0 {
        let denom = i_f + m.itf;
        let ratio = if denom > 0.0 { i_f / denom } else { 0.0 };
        let expv = if m.vtf.is_finite() {
            (vbc / (1.44 * m.vtf)).exp()
        } else {
            1.0
        };
        let tff = m.tf * (1.0 + m.xtf * ratio * ratio * expv);
        let dratio_dvbe = if denom > 0.0 {
            gif * m.itf / (denom * denom)
        } else {
            0.0
        };
        let dtff_dvbe = m.tf * m.xtf * 2.0 * ratio * dratio_dvbe * expv;
        let dtff_dvbc = if m.vtf.is_finite() {
            m.tf * m.xtf * ratio * ratio * expv / (1.44 * m.vtf)
        } else {
            0.0
        };
        (tff, dtff_dvbe, dtff_dvbc)
    } else {
        (m.tf, 0.0, 0.0)
    };

    // Stored charges.
    let (qje, cje) = depletion(vbe, m.cje, m.vje, m.mje, m.fc);
    let qbe = tff * i_f + qje;
    let cbe = tff * gif + dtff_dvbe * i_f + cje;
    let cbe_bc = dtff_dvbc * i_f;

    let xcjc = m.xcjc.clamp(0.0, 1.0);
    let (qjc_int, cjc_int) = depletion(vbc, m.cjc * xcjc, m.vjc, m.mjc, m.fc);
    let qbc = m.tr * i_r + qjc_int;
    let cbc = m.tr * gir + cjc_int;
    // External (extrinsic-base) fraction of the B-C capacitance. The
    // caller evaluates it at the *external* base to internal collector
    // voltage; here vbc is used as an adequate proxy when RB is small.
    let (qbx, cbx) = depletion(vbc, m.cjc * (1.0 - xcjc), m.vjc, m.mjc, m.fc);

    let (qcs, ccs) = depletion(vcs, m.cjs, m.vjs, m.mjs, m.fc);

    // Bias-dependent base resistance (SPICE formulation without IRB uses
    // qb; with IRB uses the tan(x)/x solution — we use the qb form, and
    // interpolate toward RBM with IRB when given).
    let rbm = m.rbm_effective();
    let rbb = if m.rb <= 0.0 {
        0.0
    } else if m.irb.is_finite() && m.irb > 0.0 {
        let ib_total = (ibe + ibc).abs();
        // Smooth interpolation: rbb = rbm + (rb - rbm)/(1 + ib/irb).
        rbm + (m.rb - rbm) / (1.0 + ib_total / m.irb)
    } else {
        rbm + (m.rb - rbm) / qb
    };

    let ic = it - ibc;
    let ib = ibe + ibc;
    BjtOperating {
        vbe,
        vbc,
        ic,
        ib,
        ie: -(ic + ib),
        it,
        ibe,
        ibc,
        gpi,
        gmu,
        gmf,
        gmr,
        qb,
        qbe,
        qbc,
        qbx,
        qcs,
        cbe,
        cbe_bc,
        cbc,
        cbx,
        ccs,
        rbb,
    }
}

/// Compiled BJT: external and internal node slots.
#[derive(Debug)]
pub(crate) struct BjtInstance {
    pub idx: usize,
    pub nodes: BjtNodes,
}

impl BjtInstance {
    fn model<'a>(&self, prep: &'a Prepared) -> &'a BjtModel {
        prep.scaled_bjt[self.idx]
            .as_ref()
            .expect("bjt element has a scaled model")
    }

    /// Junction voltages `(vbe, vbc, vcs)` in normalized NPN polarity.
    fn junction_voltages(&self, model: &BjtModel, x: &[f64]) -> (f64, f64, f64) {
        let nd = &self.nodes;
        let sg = model.polarity.sign();
        let vbe = sg * (read_slot(x, nd.bi) - read_slot(x, nd.ei));
        let vbc = sg * (read_slot(x, nd.bi) - read_slot(x, nd.ci));
        let vcs = sg * (read_slot(x, nd.s) - read_slot(x, nd.ci));
        (vbe, vbc, vcs)
    }
}

impl Device for BjtInstance {
    fn index(&self) -> usize {
        self.idx
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        let nd = &self.nodes;
        // Parasitic-resistance segments exist only when the internal
        // node was split off the terminal.
        for (ext, int) in [(nd.c, nd.ci), (nd.b, nd.bi), (nd.e, nd.ei)] {
            if ext != int {
                out.push(TopologyEdge::new(ext, int, EdgeKind::Conductive));
            }
        }
        // Both junctions conduct at DC (gmin-loaded exponentials).
        out.push(TopologyEdge::new(nd.bi, nd.ei, EdgeKind::Conductive));
        out.push(TopologyEdge::new(nd.bi, nd.ci, EdgeKind::Conductive));
        // The substrate junction is charge storage only.
        out.push(TopologyEdge::new(nd.s, nd.ci, EdgeKind::Capacitive));
    }

    fn charge_slots(&self) -> usize {
        4
    }

    fn stamp_real(&self, cx: &RealCtx, mem: &mut NonlinMemory, s: &mut RealStamper) {
        let model = self.model(cx.prep);
        let nd = self.nodes;
        let sg = model.polarity.sign();
        let (vbe_raw, vbc_raw, vcs) = self.junction_voltages(model, cx.x);
        let (old_vbe, old_vbc) = mem.bjt[self.idx];
        let nfvt = model.nf * cx.opts.vt;
        let nrvt = model.nr * cx.opts.vt;
        let vbe = pnjlim(vbe_raw, old_vbe, nfvt, vcrit(model.is_, nfvt));
        let vbc = pnjlim(vbc_raw, old_vbc, nrvt, vcrit(model.is_, nrvt));
        let be_shift = (vbe - vbe_raw).abs();
        if be_shift > 1e-15 {
            mem.note_limited(be_shift);
        }
        let bc_shift = (vbc - vbc_raw).abs();
        if bc_shift > 1e-15 {
            mem.note_limited(bc_shift);
        }
        mem.bjt[self.idx] = (vbe, vbc);
        let op = eval_bjt(model, vbe, vbc, vcs, cx.opts.vt, cx.opts.gmin);

        // Parasitic terminal resistances into the internal nodes.
        if nd.bi != nd.b {
            s.conductance(nd.b, nd.bi, 1.0 / op.rbb.max(1e-3));
        }
        if nd.ci != nd.c {
            s.conductance(nd.c, nd.ci, 1.0 / model.rc);
        }
        if nd.ei != nd.e {
            s.conductance(nd.e, nd.ei, 1.0 / model.re);
        }

        // B-E and B-C junction linearizations.
        s.conductance(nd.bi, nd.ei, op.gpi);
        s.current(nd.bi, nd.ei, sg * (op.ibe - op.gpi * vbe));
        s.conductance(nd.bi, nd.ci, op.gmu);
        s.current(nd.bi, nd.ci, sg * (op.ibc - op.gmu * vbc));

        // Transport current from collector to emitter.
        s.add(nd.ci, nd.bi, op.gmf + op.gmr);
        s.add(nd.ci, nd.ei, -op.gmf);
        s.add(nd.ci, nd.ci, -op.gmr);
        s.add(nd.ei, nd.bi, -(op.gmf + op.gmr));
        s.add(nd.ei, nd.ei, op.gmf);
        s.add(nd.ei, nd.ci, op.gmr);
        s.current(nd.ci, nd.ei, sg * (op.it - op.gmf * vbe - op.gmr * vbc));

        if let Mode::Tran { a, bank, .. } = cx.mode {
            let b0 = bank.base[self.idx];
            // qbe with the cross term d(qbe)/d(vbc).
            let st = bank.states[b0];
            let i = a * (op.qbe - st.q) - st.i;
            let gbe = a * op.cbe;
            let gx = a * op.cbe_bc;
            s.add(nd.bi, nd.bi, gbe + gx);
            s.add(nd.bi, nd.ei, -gbe);
            s.add(nd.bi, nd.ci, -gx);
            s.add(nd.ei, nd.bi, -(gbe + gx));
            s.add(nd.ei, nd.ei, gbe);
            s.add(nd.ei, nd.ci, gx);
            s.current(nd.bi, nd.ei, sg * (i - gbe * vbe - gx * vbc));
            // qbc (internal B'-C').
            let st = bank.states[b0 + 1];
            let i = a * (op.qbc - st.q) - st.i;
            let geq = a * op.cbc;
            s.conductance(nd.bi, nd.ci, geq);
            s.current(nd.bi, nd.ci, sg * (i - geq * vbc));
            // qbx: external-base fraction of the B-C depletion charge,
            // evaluated at the true external-base voltage.
            let vbx = sg * (read_slot(cx.x, nd.b) - read_slot(cx.x, nd.ci));
            let xcjc = model.xcjc.clamp(0.0, 1.0);
            let (qbx, cbx) = depletion(
                vbx,
                model.cjc * (1.0 - xcjc),
                model.vjc,
                model.mjc,
                model.fc,
            );
            let st = bank.states[b0 + 2];
            let i = a * (qbx - st.q) - st.i;
            s.conductance(nd.b, nd.ci, a * cbx);
            s.current(nd.b, nd.ci, sg * (i - a * cbx * vbx));
            // qcs.
            let st = bank.states[b0 + 3];
            let i = a * (op.qcs - st.q) - st.i;
            let geq = a * op.ccs;
            s.conductance(nd.s, nd.ci, geq);
            s.current(nd.s, nd.ci, sg * (i - geq * vcs));
        }
    }

    fn update_charges(&self, cx: &RealCtx, out: &mut [ChargeState]) {
        let Mode::Tran { a, bank, .. } = cx.mode else {
            return;
        };
        let model = self.model(cx.prep);
        let nd = self.nodes;
        let sg = model.polarity.sign();
        let (vbe, vbc, vcs) = self.junction_voltages(model, cx.x);
        let op = eval_bjt(model, vbe, vbc, vcs, cx.opts.vt, cx.opts.gmin);
        let vbx = sg * (read_slot(cx.x, nd.b) - read_slot(cx.x, nd.ci));
        let xcjc = model.xcjc.clamp(0.0, 1.0);
        let (qbx, _) = depletion(
            vbx,
            model.cjc * (1.0 - xcjc),
            model.vjc,
            model.mjc,
            model.fc,
        );
        let b0 = bank.base[self.idx];
        for (slot, q) in [op.qbe, op.qbc, qbx, op.qcs].into_iter().enumerate() {
            let st = bank.states[b0 + slot];
            out[slot] = ChargeState {
                q,
                i: a * (q - st.q) - st.i,
            };
        }
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let model = self.model(cx.prep);
        let nd = self.nodes;
        let sg = model.polarity.sign();
        let jw = Complex::new(0.0, cx.omega);
        let (vbe, vbc, vcs) = self.junction_voltages(model, cx.x_op);
        let op = eval_bjt(model, vbe, vbc, vcs, cx.opts.vt, cx.opts.gmin);

        if nd.bi != nd.b {
            s.admittance(nd.b, nd.bi, Complex::from_re(1.0 / op.rbb.max(1e-3)));
        }
        if nd.ci != nd.c {
            s.admittance(nd.c, nd.ci, Complex::from_re(1.0 / model.rc));
        }
        if nd.ei != nd.e {
            s.admittance(nd.e, nd.ei, Complex::from_re(1.0 / model.re));
        }

        s.admittance(nd.bi, nd.ei, Complex::from_re(op.gpi) + jw * op.cbe);
        s.admittance(nd.bi, nd.ci, Complex::from_re(op.gmu) + jw * op.cbc);
        // Cross capacitance d(qbe)/d(vbc): structurally present exactly
        // when the bias-dependent transit time has a VBC dependence.
        if model.tf > 0.0 && model.xtf > 0.0 && model.vtf.is_finite() {
            s.transadmittance(nd.bi, nd.ei, nd.bi, nd.ci, jw * op.cbe_bc);
        }

        s.add(nd.ci, nd.bi, Complex::from_re(op.gmf + op.gmr));
        s.add(nd.ci, nd.ei, Complex::from_re(-op.gmf));
        s.add(nd.ci, nd.ci, Complex::from_re(-op.gmr));
        s.add(nd.ei, nd.bi, Complex::from_re(-(op.gmf + op.gmr)));
        s.add(nd.ei, nd.ei, Complex::from_re(op.gmf));
        s.add(nd.ei, nd.ci, Complex::from_re(op.gmr));

        let xcjc = model.xcjc.clamp(0.0, 1.0);
        if model.cjc * (1.0 - xcjc) > 0.0 {
            let vbx = sg * (read_slot(cx.x_op, nd.b) - read_slot(cx.x_op, nd.ci));
            let (_, cbx) = depletion(
                vbx,
                model.cjc * (1.0 - xcjc),
                model.vjc,
                model.mjc,
                model.fc,
            );
            s.admittance(nd.b, nd.ci, jw * cbx);
        }
        if model.cjs > 0.0 {
            s.admittance(nd.s, nd.ci, jw * op.ccs);
        }
    }

    fn noise(&self, cx: &OpCtx, out: &mut Vec<NoiseGenerator>) {
        let model = self.model(cx.prep);
        let nd = self.nodes;
        let name = &cx.prep.circuit.elements()[self.idx].name;
        let (vbe, vbc, vcs) = self.junction_voltages(model, cx.x);
        let op = eval_bjt(model, vbe, vbc, vcs, cx.opts.vt, cx.opts.gmin);
        let four_kt = 4.0 * KB * cx.temp_k();
        out.push(NoiseGenerator::white(
            name,
            "shot-ic",
            nd.ci,
            nd.ei,
            2.0 * Q * op.ic.abs(),
        ));
        out.push(NoiseGenerator::white(
            name,
            "shot-ib",
            nd.bi,
            nd.ei,
            2.0 * Q * op.ib.abs(),
        ));
        if nd.bi != nd.b && op.rbb > 0.0 {
            out.push(NoiseGenerator::white(
                name,
                "thermal-rb",
                nd.b,
                nd.bi,
                four_kt / op.rbb,
            ));
        }
        if nd.ei != nd.e && model.re > 0.0 {
            out.push(NoiseGenerator::white(
                name,
                "thermal-re",
                nd.e,
                nd.ei,
                four_kt / model.re,
            ));
        }
        if nd.ci != nd.c && model.rc > 0.0 {
            out.push(NoiseGenerator::white(
                name,
                "thermal-rc",
                nd.c,
                nd.ci,
                four_kt / model.rc,
            ));
        }
        if model.kf > 0.0 {
            out.push(NoiseGenerator::flicker(
                name,
                "flicker-ib",
                nd.bi,
                nd.ei,
                model.kf * op.ib.abs().powf(model.af),
            ));
        }
    }

    fn bjt_operating(&self, cx: &OpCtx) -> Option<BjtOperating> {
        let model = self.model(cx.prep);
        let (vbe, vbc, vcs) = self.junction_voltages(model, cx.x);
        Some(eval_bjt(model, vbe, vbc, vcs, cx.opts.vt, cx.opts.gmin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::junction::VT_300K;

    fn test_model() -> BjtModel {
        BjtModel {
            name: "t".into(),
            is_: 1e-16,
            bf: 100.0,
            nf: 1.0,
            vaf: 50.0,
            ikf: 10e-3,
            ise: 1e-18,
            ne: 2.0,
            br: 2.0,
            nr: 1.0,
            cje: 50e-15,
            vje: 0.9,
            mje: 0.35,
            tf: 15e-12,
            xtf: 2.0,
            vtf: 3.0,
            itf: 20e-3,
            cjc: 30e-15,
            vjc: 0.7,
            mjc: 0.4,
            xcjc: 0.8,
            tr: 1e-9,
            cjs: 60e-15,
            vjs: 0.6,
            mjs: 0.3,
            ..BjtModel::default()
        }
    }

    #[test]
    fn cutoff_currents_are_tiny() {
        let op = eval_bjt(&test_model(), 0.0, -3.0, -3.0, VT_300K, 0.0);
        assert!(op.ic.abs() < 1e-12);
        assert!(op.ib.abs() < 1e-12);
    }

    #[test]
    fn active_region_beta() {
        let m = test_model();
        // Forward active, moderate current (well below IKF).
        let op = eval_bjt(&m, 0.62, -2.0, -3.0, VT_300K, 0.0);
        assert!(op.ic > 1e-7 && op.ic < 1e-3, "ic = {}", op.ic);
        let beta = op.beta_dc();
        assert!(beta > 40.0 && beta <= 110.0, "beta = {beta}");
        // KCL: ie = -(ic+ib)
        assert!((op.ie + op.ic + op.ib).abs() < 1e-18);
    }

    #[test]
    fn high_injection_rolls_off_beta_and_gm() {
        let m = test_model();
        let lo = eval_bjt(&m, 0.65, -2.0, -3.0, VT_300K, 0.0);
        let hi = eval_bjt(&m, 0.95, -2.0, -3.0, VT_300K, 0.0);
        // gm/ic at low current ~ 1/vt; at high current it halves.
        let gm_over_ic_lo = lo.gmf / lo.ic;
        let gm_over_ic_hi = hi.gmf / hi.ic;
        assert!(gm_over_ic_hi < 0.75 * gm_over_ic_lo);
    }

    #[test]
    fn early_effect_gives_output_conductance() {
        let m = test_model();
        let a = eval_bjt(&m, 0.65, -1.0, -3.0, VT_300K, 0.0);
        let b = eval_bjt(&m, 0.65, -3.0, -3.0, VT_300K, 0.0);
        // More reverse vbc (higher vce) -> larger collector current.
        assert!(b.ic > a.ic);
        // gmr must be negative (it decreases with rising vbc in fwd active).
        assert!(a.gmr < 0.0);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let m = test_model();
        let (vbe, vbc) = (0.68, -1.3);
        let h = 1e-7;
        let base = eval_bjt(&m, vbe, vbc, -3.0, VT_300K, 1e-12);
        let dbe = eval_bjt(&m, vbe + h, vbc, -3.0, VT_300K, 1e-12);
        let dbc = eval_bjt(&m, vbe, vbc + h, -3.0, VT_300K, 1e-12);
        let gmf_num = (dbe.it - base.it) / h;
        let gmr_num = (dbc.it - base.it) / h;
        let gpi_num = (dbe.ibe - base.ibe) / h;
        let gmu_num = (dbc.ibc - base.ibc) / h;
        assert!((base.gmf - gmf_num).abs() / gmf_num.abs() < 1e-4);
        assert!((base.gmr - gmr_num).abs() / gmr_num.abs().max(1e-12) < 1e-3);
        assert!((base.gpi - gpi_num).abs() / gpi_num < 1e-4);
        assert!((base.gmu - gmu_num).abs() / gmu_num.abs().max(1e-15) < 1e-3);
    }

    #[test]
    fn capacitances_match_charge_derivatives() {
        let m = test_model();
        let (vbe, vbc) = (0.7, -1.5);
        let h = 1e-6;
        let base = eval_bjt(&m, vbe, vbc, -3.0, VT_300K, 0.0);
        let dbe = eval_bjt(&m, vbe + h, vbc, -3.0, VT_300K, 0.0);
        let dbc = eval_bjt(&m, vbe, vbc + h, -3.0, VT_300K, 0.0);
        let cbe_num = (dbe.qbe - base.qbe) / h;
        let cbc_num = (dbc.qbc - base.qbc) / h;
        let cbe_bc_num = (dbc.qbe - base.qbe) / h;
        assert!((base.cbe - cbe_num).abs() / cbe_num < 1e-3, "cbe");
        assert!((base.cbc - cbc_num).abs() / cbc_num < 1e-3, "cbc");
        assert!(
            (base.cbe_bc - cbe_bc_num).abs() / cbe_bc_num.abs().max(1e-18) < 1e-2,
            "cbe_bc: {} vs {}",
            base.cbe_bc,
            cbe_bc_num
        );
    }

    #[test]
    fn ft_peaks_then_falls_with_current() {
        let m = test_model();
        let mut fts = Vec::new();
        for k in 0..40 {
            let vbe = 0.55 + 0.012 * k as f64;
            let op = eval_bjt(&m, vbe, -2.0, -3.0, VT_300K, 0.0);
            fts.push((op.ic, op.ft()));
        }
        let peak_idx = fts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap()
            .0;
        // Interior peak: rises from the left edge, falls before the right.
        assert!(peak_idx > 0 && peak_idx < fts.len() - 1, "idx {peak_idx}");
        assert!(fts[peak_idx].1 > 2.0 * fts[0].1);
        assert!(fts[peak_idx].1 > 1.2 * fts.last().unwrap().1);
    }

    #[test]
    fn base_resistance_decreases_with_current() {
        let mut m = test_model();
        m.rb = 100.0;
        m.rbm = 20.0;
        m.irb = 1e-4;
        let lo = eval_bjt(&m, 0.55, -1.0, -3.0, VT_300K, 0.0);
        let hi = eval_bjt(&m, 0.85, -1.0, -3.0, VT_300K, 0.0);
        assert!(lo.rbb > hi.rbb);
        assert!(hi.rbb >= 20.0 && lo.rbb <= 100.0);
    }

    #[test]
    fn saturation_has_both_junctions_conducting() {
        let m = test_model();
        let op = eval_bjt(&m, 0.75, 0.6, -3.0, VT_300K, 0.0);
        assert!(op.ibc > 1e-9);
        assert!(op.ibe > 1e-9);
    }
}
