//! The unified device layer: model evaluation plus the one stamp
//! contract every analysis walks.
//!
//! Each circuit element is compiled (by [`Prepared::compile`]) into one
//! object implementing [`Device`]. The trait owns everything the
//! analyses need per element:
//!
//! * real-valued DC/transient stamping ([`Device::stamp_real`]) — the
//!   Newton linearization plus the trapezoidal charge companion,
//! * complex small-signal stamping ([`Device::stamp_ac`]),
//! * charge bookkeeping ([`Device::charge_slots`] /
//!   [`Device::update_charges`]),
//! * noise-generator enumeration ([`Device::noise`]),
//! * transient breakpoints ([`Device::breakpoints`]) and operating-point
//!   queries ([`Device::bjt_operating`]).
//!
//! Devices are partitioned at compile time into a **linear** set (their
//! stamps depend only on the mode, never on the solution vector) and a
//! **nonlinear** set. The Newton loop stamps the linear set once per
//! solve into a cached baseline and replays it by `memcpy` on every
//! subsequent iteration; only the nonlinear set is re-stamped. The same
//! walk, run through a pattern probe, declares the MNA sparsity pattern
//! to the sparse solver up front, so symbolic analysis happens before
//! the first numeric assembly.
//!
//! Adding a device means adding a file under `devices/` and one arm in
//! `build_devices` — no analysis file changes. The mutual inductor
//! (`mutual::MutualInductor`) is the proof: it exists only here.

pub mod behavioral;
pub mod bjt;
pub mod diode;
pub mod junction;
pub mod linear;
pub mod mutual;

pub use bjt::{eval_bjt, BjtOperating};
pub use diode::{eval_diode, DiodeOperating};

use crate::analysis::stamp::{ChargeState, MnaSink, Mode, NonlinMemory, Options};
use crate::circuit::{
    node_slot, BjtNodes, BranchSlot, Circuit, ElementKind, Prepared, GROUND_SLOT,
};
use crate::error::{Result, SpiceError};
use ahfic_num::Complex;
use std::fmt;
use std::sync::Arc;

/// Boltzmann constant (J/K).
pub const KB: f64 = 1.380649e-23;
/// Elementary charge (C).
pub const Q: f64 = 1.602176634e-19;

/// Context for real-valued (DC / transient) stamping.
pub struct RealCtx<'a> {
    /// The compiled circuit (element values are read through it at stamp
    /// time so sweeps that mutate the compiled circuit are honoured).
    pub prep: &'a Prepared,
    /// Analysis options (thermal voltage, gmin, ...).
    pub opts: &'a Options,
    /// DC or transient companion mode.
    pub mode: &'a Mode<'a>,
    /// Current solution estimate.
    pub x: &'a [f64],
}

/// Context for complex small-signal stamping.
pub struct AcCtx<'a> {
    /// The compiled circuit.
    pub prep: &'a Prepared,
    /// Analysis options.
    pub opts: &'a Options,
    /// Operating point the devices are linearized around.
    pub x_op: &'a [f64],
    /// Angular frequency (rad/s).
    pub omega: f64,
}

/// Context for operating-point queries (noise generators, reports).
pub struct OpCtx<'a> {
    /// The compiled circuit.
    pub prep: &'a Prepared,
    /// Analysis options.
    pub opts: &'a Options,
    /// Converged operating point.
    pub x: &'a [f64],
}

impl OpCtx<'_> {
    /// Device temperature in kelvin, recovered from the thermal voltage.
    pub fn temp_k(&self) -> f64 {
        self.opts.vt / (KB / Q)
    }
}

/// Ground-guarded stamper for real-valued assembly. Wraps the matrix
/// sink and the right-hand side; all slot arguments may be
/// [`GROUND_SLOT`], in which case the contribution is dropped.
pub struct RealStamper<'a> {
    mat: &'a mut dyn MnaSink<f64>,
    rhs: &'a mut [f64],
}

impl<'a> RealStamper<'a> {
    /// Wraps a matrix sink and RHS vector.
    pub fn new(mat: &'a mut dyn MnaSink<f64>, rhs: &'a mut [f64]) -> Self {
        RealStamper { mat, rhs }
    }

    /// Adds `v` at `(r, c)` unless either index is ground.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        if r != GROUND_SLOT && c != GROUND_SLOT {
            self.mat.add(r, c, v);
        }
    }

    /// Adds `v` to RHS row `r` unless it is ground.
    pub fn rhs_add(&mut self, r: usize, v: f64) {
        if r != GROUND_SLOT {
            self.rhs[r] += v;
        }
    }

    /// Stamps a conductance `g` between nodes `p` and `n`.
    pub fn conductance(&mut self, p: usize, n: usize, g: f64) {
        self.add(p, p, g);
        self.add(n, n, g);
        self.add(p, n, -g);
        self.add(n, p, -g);
    }

    /// Stamps an independent current `i` flowing from `p` to `n`.
    pub fn current(&mut self, p: usize, n: usize, i: f64) {
        self.rhs_add(p, -i);
        self.rhs_add(n, i);
    }

    /// Stamps a transconductance: current `g * (v(cp) - v(cn))` from `p`
    /// to `n`.
    pub fn transadmittance(&mut self, p: usize, n: usize, cp: usize, cn: usize, g: f64) {
        self.add(p, cp, g);
        self.add(p, cn, -g);
        self.add(n, cp, -g);
        self.add(n, cn, g);
    }
}

/// Ground-guarded stamper for complex small-signal assembly.
pub struct AcStamper<'a> {
    mat: &'a mut dyn MnaSink<Complex>,
    rhs: &'a mut [Complex],
}

impl<'a> AcStamper<'a> {
    /// Wraps a matrix sink and RHS vector.
    pub fn new(mat: &'a mut dyn MnaSink<Complex>, rhs: &'a mut [Complex]) -> Self {
        AcStamper { mat, rhs }
    }

    /// Adds `v` at `(r, c)` unless either index is ground.
    pub fn add(&mut self, r: usize, c: usize, v: Complex) {
        if r != GROUND_SLOT && c != GROUND_SLOT {
            self.mat.add(r, c, v);
        }
    }

    /// Adds `v` to RHS row `r` unless it is ground.
    pub fn rhs_add(&mut self, r: usize, v: Complex) {
        if r != GROUND_SLOT {
            self.rhs[r] += v;
        }
    }

    /// Stamps an admittance `y` between nodes `p` and `n`.
    pub fn admittance(&mut self, p: usize, n: usize, y: Complex) {
        self.add(p, p, y);
        self.add(n, n, y);
        self.add(p, n, -y);
        self.add(n, p, -y);
    }

    /// Stamps an independent phasor current `i` flowing from `p` to `n`.
    pub fn current(&mut self, p: usize, n: usize, i: Complex) {
        self.rhs_add(p, -i);
        self.rhs_add(n, i);
    }

    /// Stamps a transadmittance: current `y * (v(cp) - v(cn))` from `p`
    /// to `n`.
    pub fn transadmittance(&mut self, p: usize, n: usize, cp: usize, cn: usize, y: Complex) {
        self.add(p, cp, y);
        self.add(p, cn, -y);
        self.add(n, cp, -y);
        self.add(n, cn, y);
    }
}

/// One noise current generator between two unknown slots.
///
/// The one-sided power spectral density at frequency `f` is
/// `white + flicker / f` (A²/Hz): pure thermal and shot sources set only
/// `white`; 1/f sources set only `flicker`.
#[derive(Clone, Debug)]
pub struct NoiseGenerator {
    /// Name of the element this generator belongs to.
    pub element: String,
    /// Physical origin, e.g. `"thermal"`, `"shot-ic"`, `"flicker-ib"`.
    pub label: &'static str,
    /// Slot the noise current flows out of (may be [`GROUND_SLOT`]).
    pub p: usize,
    /// Slot the noise current flows into (may be [`GROUND_SLOT`]).
    pub n: usize,
    /// Frequency-independent PSD component (A²/Hz).
    pub white: f64,
    /// Flicker coefficient: contributes `flicker / f` to the PSD.
    pub flicker: f64,
}

impl NoiseGenerator {
    /// A white (thermal or shot) generator.
    pub fn white(element: &str, label: &'static str, p: usize, n: usize, psd: f64) -> Self {
        NoiseGenerator {
            element: element.to_string(),
            label,
            p,
            n,
            white: psd,
            flicker: 0.0,
        }
    }

    /// A pure 1/f generator with the given flicker coefficient.
    pub fn flicker(element: &str, label: &'static str, p: usize, n: usize, coeff: f64) -> Self {
        NoiseGenerator {
            element: element.to_string(),
            label,
            p,
            n,
            white: 0.0,
            flicker: coeff,
        }
    }

    /// One-sided PSD at frequency `f` (A²/Hz).
    pub fn psd(&self, f: f64) -> f64 {
        self.white + self.flicker / f
    }
}

/// How one element edge participates in the static topology graph the
/// pre-flight lint pass ([`crate::lint`]) analyzes.
///
/// The classification is about *structure*, not values: it answers
/// "does this element provide a DC path / define a voltage / force a
/// current between its terminals", which is what ground reachability,
/// voltage-loop and current-cutset analysis need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// A resistive DC path between the terminals (resistor, junction).
    Conductive,
    /// A branch-current element that pins the voltage across its
    /// terminals (V, E, H, B sources). Conducts DC, and loops of these
    /// are structurally singular.
    VoltageDef,
    /// An inductor branch: conducts DC like a voltage-definition branch
    /// but carries a tiny series resistance in the DC stamp, so pure
    /// inductor loops are solvable (with absurd currents) rather than
    /// singular.
    Inductive,
    /// A current-forcing element (I, G, F): no DC path between the
    /// terminals, and a cutset of these over-determines KCL.
    CurrentForcing,
    /// A capacitor: open at DC, so it conducts nothing for ground
    /// reachability, but it is a deliberate connection — a node reached
    /// only through capacitors is floating at DC.
    Capacitive,
    /// A sensing-only connection (controlled-source control pins): no
    /// current flows, but the node is referenced on purpose, so it does
    /// not count as dangling.
    Sense,
}

/// One edge a device contributes to the lint topology graph, in unknown
/// slots (either side may be [`GROUND_SLOT`]).
#[derive(Clone, Copy, Debug)]
pub struct TopologyEdge {
    /// First terminal slot.
    pub a: usize,
    /// Second terminal slot.
    pub b: usize,
    /// Structural role of the connection.
    pub kind: EdgeKind,
}

impl TopologyEdge {
    /// Convenience constructor.
    pub fn new(a: usize, b: usize, kind: EdgeKind) -> Self {
        TopologyEdge { a, b, kind }
    }
}

/// The per-element contract every analysis dispatches through.
///
/// Implementations read their element values from
/// [`RealCtx::prep`]`.circuit` at stamp time (never cache them at
/// compile time) so that sweeps mutating the compiled circuit — DC
/// source sweeps, Monte-Carlo resistance perturbations — are picked up
/// without recompiling.
pub trait Device: Send + Sync + fmt::Debug {
    /// Index of the element this device was compiled from.
    fn index(&self) -> usize;

    /// `true` if the real stamp depends on the solution vector `x`.
    /// Nonlinear devices are re-stamped every Newton iteration; linear
    /// ones land in the cached baseline.
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Number of [`ChargeState`] slots this device owns in the
    /// transient charge bank.
    fn charge_slots(&self) -> usize {
        0
    }

    /// Appends this device's edges to the lint topology graph, in
    /// unknown slots ([`GROUND_SLOT`] for grounded terminals). Required:
    /// every device must declare how it connects its terminals so the
    /// pre-flight static checks stay complete as devices are added.
    fn topology(&self, out: &mut Vec<TopologyEdge>);

    /// Stamps the real-valued (DC or transient-companion) linearization
    /// at `cx.x` into `s`.
    fn stamp_real(&self, cx: &RealCtx, mem: &mut NonlinMemory, s: &mut RealStamper);

    /// Stamps the complex small-signal model, linearized around
    /// `cx.x_op`, at `cx.omega` into `s`.
    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper);

    /// Recomputes this device's charge states at `cx.x` into `out`
    /// (length [`Device::charge_slots`]). Only called in transient mode.
    fn update_charges(&self, _cx: &RealCtx, _out: &mut [ChargeState]) {}

    /// Appends this device's noise generators at the operating point.
    fn noise(&self, _cx: &OpCtx, _out: &mut Vec<NoiseGenerator>) {}

    /// Appends transient breakpoints in `(0, t_stop]`.
    fn breakpoints(&self, _circuit: &Circuit, _t_stop: f64, _out: &mut Vec<f64>) {}

    /// Operating-point record if this device is a BJT.
    fn bjt_operating(&self, _cx: &OpCtx) -> Option<BjtOperating> {
        None
    }
}

/// The compiled device list plus its linear/nonlinear partition
/// (indices into `devices`, which is index-aligned with
/// `circuit.elements()`).
pub(crate) struct DeviceSet {
    pub devices: Vec<Arc<dyn Device>>,
    pub linear: Vec<usize>,
    pub nonlinear: Vec<usize>,
}

/// Compiles every element into its [`Device`] and partitions the result.
/// This is the single dispatch point on [`ElementKind`]: new element
/// kinds get a device file under `devices/` and one arm here.
pub(crate) fn build_devices(
    circuit: &Circuit,
    branch_of: &[BranchSlot],
    bjt_nodes: &[Option<BjtNodes>],
    diode_internal: &[Option<usize>],
) -> Result<DeviceSet> {
    let elements = circuit.elements();
    let mut devices: Vec<Arc<dyn Device>> = Vec::with_capacity(elements.len());
    let mut linear = Vec::new();
    let mut nonlinear = Vec::new();
    let branch = |idx: usize| branch_of[idx].0.expect("element with branch current");
    for (idx, el) in elements.iter().enumerate() {
        let dev: Arc<dyn Device> = match &el.kind {
            ElementKind::Resistor { p, n, .. } => Arc::new(linear::Resistor {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
            }),
            ElementKind::Capacitor { p, n, .. } => Arc::new(linear::Capacitor {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
            }),
            ElementKind::Inductor { p, n, .. } => Arc::new(linear::Inductor {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
                k: branch(idx),
            }),
            ElementKind::Vsource { p, n, .. } => Arc::new(linear::VoltageSource {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
                k: branch(idx),
            }),
            ElementKind::Isource { p, n, .. } => Arc::new(linear::CurrentSource {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
            }),
            ElementKind::Vcvs { p, n, cp, cn, .. } => Arc::new(linear::Vcvs {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
                cp: node_slot(*cp),
                cn: node_slot(*cn),
                k: branch(idx),
            }),
            ElementKind::Vccs { p, n, cp, cn, .. } => Arc::new(linear::Vccs {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
                cp: node_slot(*cp),
                cn: node_slot(*cn),
            }),
            ElementKind::Cccs { p, n, vsource, .. } => Arc::new(linear::Cccs {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
                j: control_branch(circuit, branch_of, vsource)?,
            }),
            ElementKind::Ccvs { p, n, vsource, .. } => Arc::new(linear::Ccvs {
                idx,
                p: node_slot(*p),
                n: node_slot(*n),
                j: control_branch(circuit, branch_of, vsource)?,
                k: branch(idx),
            }),
            ElementKind::BehavioralV { p, n, controls, .. } => {
                Arc::new(behavioral::BehavioralSource {
                    idx,
                    p: node_slot(*p),
                    n: node_slot(*n),
                    k: branch(idx),
                    controls: controls.iter().map(|c| node_slot(*c)).collect(),
                })
            }
            ElementKind::Diode { p, n, .. } => {
                let anode = node_slot(*p);
                Arc::new(diode::DiodeInstance {
                    idx,
                    anode,
                    internal: diode_internal[idx].unwrap_or(anode),
                    cathode: node_slot(*n),
                })
            }
            ElementKind::Bjt { .. } => Arc::new(bjt::BjtInstance {
                idx,
                nodes: bjt_nodes[idx].expect("BJT internal nodes resolved"),
            }),
            ElementKind::MutualInd { l1, l2, k } => {
                let (i1, k1) = coupled_inductor(circuit, branch_of, &el.name, l1)?;
                let (i2, k2) = coupled_inductor(circuit, branch_of, &el.name, l2)?;
                if i1 == i2 {
                    return Err(SpiceError::Netlist(format!(
                        "{}: cannot couple inductor {l1} to itself",
                        el.name
                    )));
                }
                if !k.is_finite() || k.abs() > 1.0 {
                    return Err(SpiceError::Netlist(format!(
                        "{}: coupling coefficient must satisfy |k| <= 1, got {k}",
                        el.name
                    )));
                }
                Arc::new(mutual::MutualInductor {
                    idx,
                    i1,
                    i2,
                    k1,
                    k2,
                })
            }
        };
        if dev.is_nonlinear() {
            nonlinear.push(idx);
        } else {
            linear.push(idx);
        }
        devices.push(dev);
    }
    Ok(DeviceSet {
        devices,
        linear,
        nonlinear,
    })
}

/// Resolves the branch slot of the voltage source a current-controlled
/// element senses.
fn control_branch(circuit: &Circuit, branch_of: &[BranchSlot], vsource: &str) -> Result<usize> {
    circuit
        .find_element(vsource)
        .and_then(|i| branch_of[i].0)
        .ok_or_else(|| SpiceError::Netlist(format!("controlling source {vsource} not found")))
}

/// Resolves one side of a `K` coupling: the named element must be an
/// inductor; returns its element index and branch slot.
fn coupled_inductor(
    circuit: &Circuit,
    branch_of: &[BranchSlot],
    kname: &str,
    lname: &str,
) -> Result<(usize, usize)> {
    let i = circuit
        .find_element(lname)
        .ok_or_else(|| SpiceError::Netlist(format!("{kname}: no element named {lname}")))?;
    if !matches!(circuit.elements()[i].kind, ElementKind::Inductor { .. }) {
        return Err(SpiceError::Netlist(format!(
            "{kname}: {lname} is not an inductor"
        )));
    }
    Ok((i, branch_of[i].0.expect("inductor has a branch current")))
}
