//! Device physics: junction primitives and model evaluation.

pub mod bjt;
pub mod diode;
pub mod junction;

pub use bjt::{eval_bjt, BjtOperating};
pub use diode::{eval_diode, DiodeOperating};
