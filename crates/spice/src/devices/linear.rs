//! Linear devices: R, C, L, independent sources and the four controlled
//! sources. Their real stamps never depend on the solution vector, so
//! the Newton loop caches them in the replay baseline.

use super::{
    AcCtx, AcStamper, Device, EdgeKind, NoiseGenerator, OpCtx, RealCtx, RealStamper, TopologyEdge,
};
use crate::analysis::stamp::{ChargeState, Mode, NonlinMemory};
use crate::circuit::{read_slot, Circuit, ElementKind};
use crate::devices::KB;
use crate::wave::SourceWave;
use ahfic_num::Complex;

/// DC/transient value of an independent source waveform.
fn source_value(wave: &SourceWave, mode: &Mode) -> f64 {
    match mode {
        Mode::Dc { source_scale } => wave.dc_value() * source_scale,
        Mode::Tran { time, .. } => wave.eval(*time),
    }
}

/// Branch-row pattern shared by every element that adds a branch
/// current unknown `k` between terminals `p` and `n`.
fn branch_rows(s: &mut RealStamper, p: usize, n: usize, k: usize) {
    s.add(p, k, 1.0);
    s.add(n, k, -1.0);
    s.add(k, p, 1.0);
    s.add(k, n, -1.0);
}

fn branch_rows_ac(s: &mut AcStamper, p: usize, n: usize, k: usize) {
    s.add(p, k, Complex::ONE);
    s.add(n, k, -Complex::ONE);
    s.add(k, p, Complex::ONE);
    s.add(k, n, -Complex::ONE);
}

/// Linear resistor.
#[derive(Debug)]
pub(crate) struct Resistor {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
}

impl Resistor {
    fn r(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Resistor { r, .. } = circuit.elements()[self.idx].kind else {
            unreachable!("resistor device on non-resistor element")
        };
        r
    }
}

impl Device for Resistor {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::Conductive));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        s.conductance(self.p, self.n, 1.0 / self.r(&cx.prep.circuit));
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        s.admittance(
            self.p,
            self.n,
            Complex::from_re(1.0 / self.r(&cx.prep.circuit)),
        );
    }

    fn noise(&self, cx: &OpCtx, out: &mut Vec<NoiseGenerator>) {
        let r = self.r(&cx.prep.circuit);
        let psd = 4.0 * KB * cx.temp_k() / r;
        let name = &cx.prep.circuit.elements()[self.idx].name;
        out.push(NoiseGenerator::white(name, "thermal", self.p, self.n, psd));
    }
}

/// Linear capacitor: open at DC, trapezoidal companion in transient.
#[derive(Debug)]
pub(crate) struct Capacitor {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
}

impl Capacitor {
    fn c(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Capacitor { c, .. } = circuit.elements()[self.idx].kind else {
            unreachable!("capacitor device on non-capacitor element")
        };
        c
    }
}

impl Device for Capacitor {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::Capacitive));
    }

    fn charge_slots(&self) -> usize {
        1
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        if let Mode::Tran { a, bank, .. } = cx.mode {
            let c = self.c(&cx.prep.circuit);
            let st = bank.states[bank.base[self.idx]];
            // Trapezoidal companion i = geq*v - (a*q_prev + i_prev): the
            // equivalent source must not be written in terms of the
            // current iterate, or the cached replay baseline and a fresh
            // re-stamp would differ by rounding.
            s.conductance(self.p, self.n, a * c);
            s.current(self.p, self.n, -(a * st.q + st.i));
        }
    }

    fn update_charges(&self, cx: &RealCtx, out: &mut [ChargeState]) {
        let Mode::Tran { a, bank, .. } = cx.mode else {
            return;
        };
        let c = self.c(&cx.prep.circuit);
        let v = read_slot(cx.x, self.p) - read_slot(cx.x, self.n);
        let st = bank.states[bank.base[self.idx]];
        let q = c * v;
        out[0] = ChargeState {
            q,
            i: a * (q - st.q) - st.i,
        };
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let jw = Complex::new(0.0, cx.omega);
        s.admittance(self.p, self.n, jw * self.c(&cx.prep.circuit));
    }
}

/// Linear inductor with a branch-current unknown.
#[derive(Debug)]
pub(crate) struct Inductor {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub k: usize,
}

impl Inductor {
    fn l(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Inductor { l, .. } = circuit.elements()[self.idx].kind else {
            unreachable!("inductor device on non-inductor element")
        };
        l
    }
}

impl Device for Inductor {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::Inductive));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        let l = self.l(&cx.prep.circuit);
        branch_rows(s, self.p, self.n, self.k);
        match cx.mode {
            Mode::Dc { .. } => {
                // Tiny series resistance keeps the branch row non-singular
                // when an inductor shorts two voltage sources.
                s.add(self.k, self.k, -1e-9);
            }
            Mode::Tran { a, x_prev, .. } => {
                let i_prev = x_prev[self.k];
                let v_prev = read_slot(x_prev, self.p) - read_slot(x_prev, self.n);
                s.add(self.k, self.k, -l * a);
                let rhs = if *a == 0.0 {
                    0.0
                } else {
                    -(l * a * i_prev + v_prev)
                };
                s.rhs_add(self.k, rhs);
            }
        }
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let jw = Complex::new(0.0, cx.omega);
        branch_rows_ac(s, self.p, self.n, self.k);
        s.add(self.k, self.k, -(jw * self.l(&cx.prep.circuit)));
    }
}

/// Independent voltage source.
#[derive(Debug)]
pub(crate) struct VoltageSource {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub k: usize,
}

impl Device for VoltageSource {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::VoltageDef));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        let ElementKind::Vsource { wave, .. } = &cx.prep.circuit.elements()[self.idx].kind else {
            unreachable!("vsource device on non-vsource element")
        };
        branch_rows(s, self.p, self.n, self.k);
        s.rhs_add(self.k, source_value(wave, cx.mode));
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let ElementKind::Vsource { ac, .. } = &cx.prep.circuit.elements()[self.idx].kind else {
            unreachable!("vsource device on non-vsource element")
        };
        branch_rows_ac(s, self.p, self.n, self.k);
        s.rhs_add(
            self.k,
            Complex::from_polar(ac.mag, ac.phase_deg.to_radians()),
        );
    }

    fn breakpoints(&self, circuit: &Circuit, t_stop: f64, out: &mut Vec<f64>) {
        if let ElementKind::Vsource { wave, .. } = &circuit.elements()[self.idx].kind {
            out.extend(wave.breakpoints(t_stop));
        }
    }
}

/// Independent current source.
#[derive(Debug)]
pub(crate) struct CurrentSource {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
}

impl Device for CurrentSource {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::CurrentForcing));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        let ElementKind::Isource { wave, .. } = &cx.prep.circuit.elements()[self.idx].kind else {
            unreachable!("isource device on non-isource element")
        };
        s.current(self.p, self.n, source_value(wave, cx.mode));
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let ElementKind::Isource { ac, .. } = &cx.prep.circuit.elements()[self.idx].kind else {
            unreachable!("isource device on non-isource element")
        };
        s.current(
            self.p,
            self.n,
            Complex::from_polar(ac.mag, ac.phase_deg.to_radians()),
        );
    }

    fn breakpoints(&self, circuit: &Circuit, t_stop: f64, out: &mut Vec<f64>) {
        if let ElementKind::Isource { wave, .. } = &circuit.elements()[self.idx].kind {
            out.extend(wave.breakpoints(t_stop));
        }
    }
}

/// Voltage-controlled voltage source `E`.
#[derive(Debug)]
pub(crate) struct Vcvs {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub cp: usize,
    pub cn: usize,
    pub k: usize,
}

impl Vcvs {
    fn gain(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Vcvs { gain, .. } = circuit.elements()[self.idx].kind else {
            unreachable!("vcvs device on non-vcvs element")
        };
        gain
    }
}

impl Device for Vcvs {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::VoltageDef));
        out.push(TopologyEdge::new(self.cp, self.cn, EdgeKind::Sense));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        let gain = self.gain(&cx.prep.circuit);
        branch_rows(s, self.p, self.n, self.k);
        s.add(self.k, self.cp, -gain);
        s.add(self.k, self.cn, gain);
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let gain = self.gain(&cx.prep.circuit);
        branch_rows_ac(s, self.p, self.n, self.k);
        s.add(self.k, self.cp, Complex::from_re(-gain));
        s.add(self.k, self.cn, Complex::from_re(gain));
    }
}

/// Voltage-controlled current source `G`.
#[derive(Debug)]
pub(crate) struct Vccs {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub cp: usize,
    pub cn: usize,
}

impl Vccs {
    fn gm(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Vccs { gm, .. } = circuit.elements()[self.idx].kind else {
            unreachable!("vccs device on non-vccs element")
        };
        gm
    }
}

impl Device for Vccs {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::CurrentForcing));
        out.push(TopologyEdge::new(self.cp, self.cn, EdgeKind::Sense));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        s.transadmittance(self.p, self.n, self.cp, self.cn, self.gm(&cx.prep.circuit));
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        s.transadmittance(
            self.p,
            self.n,
            self.cp,
            self.cn,
            Complex::from_re(self.gm(&cx.prep.circuit)),
        );
    }
}

/// Current-controlled current source `F`; `j` is the branch slot of the
/// sensing voltage source.
#[derive(Debug)]
pub(crate) struct Cccs {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub j: usize,
}

impl Cccs {
    fn gain(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Cccs { gain, .. } = &circuit.elements()[self.idx].kind else {
            unreachable!("cccs device on non-cccs element")
        };
        *gain
    }
}

impl Device for Cccs {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::CurrentForcing));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        let gain = self.gain(&cx.prep.circuit);
        s.add(self.p, self.j, gain);
        s.add(self.n, self.j, -gain);
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let gain = self.gain(&cx.prep.circuit);
        s.add(self.p, self.j, Complex::from_re(gain));
        s.add(self.n, self.j, Complex::from_re(-gain));
    }
}

/// Current-controlled voltage source `H`.
#[derive(Debug)]
pub(crate) struct Ccvs {
    pub idx: usize,
    pub p: usize,
    pub n: usize,
    pub j: usize,
    pub k: usize,
}

impl Ccvs {
    fn r(&self, circuit: &Circuit) -> f64 {
        let ElementKind::Ccvs { r, .. } = &circuit.elements()[self.idx].kind else {
            unreachable!("ccvs device on non-ccvs element")
        };
        *r
    }
}

impl Device for Ccvs {
    fn index(&self) -> usize {
        self.idx
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        out.push(TopologyEdge::new(self.p, self.n, EdgeKind::VoltageDef));
    }

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        branch_rows(s, self.p, self.n, self.k);
        s.add(self.k, self.j, -self.r(&cx.prep.circuit));
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        branch_rows_ac(s, self.p, self.n, self.k);
        s.add(self.k, self.j, Complex::from_re(-self.r(&cx.prep.circuit)));
    }
}
