//! Shared pn-junction primitives: exponential with overflow guard,
//! depletion charge/capacitance with SPICE `FC` linearization, and the
//! classic `pnjlim` Newton damping rule.

/// Thermal voltage kT/q at 27 °C (SPICE TNOM), volts.
pub const VT_300K: f64 = 0.025852;

/// Junction exponential `exp(v / (n*vt))` with linear continuation above
/// the overflow knee, as in SPICE's `limexp`. Returns `(value, d/dv)`.
pub fn limexp(v: f64, nvt: f64) -> (f64, f64) {
    // Knee chosen so exp stays finite comfortably within f64.
    const MAX_ARG: f64 = 80.0;
    let x = v / nvt;
    if x < MAX_ARG {
        let e = x.exp();
        (e, e / nvt)
    } else {
        let e = MAX_ARG.exp();
        (e * (1.0 + (x - MAX_ARG)), e / nvt)
    }
}

/// Diode-law current and conductance: `i = is*(exp(v/(n*vt)) - 1) + gmin*v`.
///
/// The `gmin` leak keeps the Jacobian nonsingular at deep reverse bias.
pub fn diode_current(v: f64, is_: f64, nvt: f64, gmin: f64) -> (f64, f64) {
    let (e, de) = limexp(v, nvt);
    let i = is_ * (e - 1.0) + gmin * v;
    let g = is_ * de + gmin;
    (i, g)
}

/// Depletion charge and capacitance of a junction with zero-bias
/// capacitance `cj`, built-in potential `vj`, grading `m`, and forward-bias
/// linearization point `fc` (SPICE F1/F2/F3 formulation).
///
/// Returns `(charge, capacitance)`.
pub fn depletion(v: f64, cj: f64, vj: f64, m: f64, fc: f64) -> (f64, f64) {
    if cj == 0.0 {
        return (0.0, 0.0);
    }
    let fcv = fc * vj;
    if v < fcv {
        let arg = 1.0 - v / vj;
        let q = cj * vj / (1.0 - m) * (1.0 - arg.powf(1.0 - m));
        let c = cj * arg.powf(-m);
        (q, c)
    } else {
        let f1 = vj / (1.0 - m) * (1.0 - (1.0 - fc).powf(1.0 - m));
        let f2 = (1.0 - fc).powf(1.0 + m);
        let f3 = 1.0 - fc * (1.0 + m);
        let q = cj * (f1 + (f3 * (v - fcv) + m / (2.0 * vj) * (v * v - fcv * fcv)) / f2);
        let c = cj / f2 * (f3 + m * v / vj);
        (q, c)
    }
}

/// Critical voltage for junction limiting: the voltage at which the diode
/// curve's curvature makes naive Newton steps overshoot.
pub fn vcrit(is_: f64, nvt: f64) -> f64 {
    nvt * (nvt / (std::f64::consts::SQRT_2 * is_.max(1e-300))).ln()
}

/// SPICE `pnjlim`: limits the Newton update of a junction voltage from
/// `vold` to proposed `vnew`, returning the damped voltage.
pub fn pnjlim(vnew: f64, vold: f64, nvt: f64, vcrit: f64) -> f64 {
    if vnew > vcrit && (vnew - vold).abs() > 2.0 * nvt {
        if vold > 0.0 {
            let arg = 1.0 + (vnew - vold) / nvt;
            if arg > 0.0 {
                vold + nvt * arg.ln()
            } else {
                vcrit
            }
        } else {
            nvt * (vnew / nvt).max(1e-10).ln()
        }
    } else {
        vnew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limexp_matches_exp_in_range() {
        let (e, de) = limexp(0.7, VT_300K);
        let exact = (0.7 / VT_300K).exp();
        assert!((e - exact).abs() / exact < 1e-12);
        assert!((de - exact / VT_300K).abs() / de < 1e-12);
    }

    #[test]
    fn limexp_is_finite_and_continuous_at_knee() {
        let nvt = VT_300K;
        let vk = 80.0 * nvt;
        let below = limexp(vk - 1e-9, nvt).0;
        let above = limexp(vk + 1e-9, nvt).0;
        assert!(above.is_finite());
        assert!((above - below) / below < 1e-6);
        // Far beyond the knee it keeps growing linearly, never overflows.
        assert!(limexp(1000.0, nvt).0.is_finite());
    }

    #[test]
    fn diode_current_at_zero_bias_is_zero() {
        let (i, g) = diode_current(0.0, 1e-14, VT_300K, 0.0);
        assert_eq!(i, 0.0);
        assert!(g > 0.0);
    }

    #[test]
    fn diode_conductance_is_derivative() {
        let is_ = 1e-15;
        let v = 0.65;
        let h = 1e-7;
        let (ip, _) = diode_current(v + h, is_, VT_300K, 1e-12);
        let (im, _) = diode_current(v - h, is_, VT_300K, 1e-12);
        let (_, g) = diode_current(v, is_, VT_300K, 1e-12);
        let g_num = (ip - im) / (2.0 * h);
        assert!((g - g_num).abs() / g_num < 1e-6);
    }

    #[test]
    fn depletion_cap_at_zero_bias_is_cj() {
        let (_, c) = depletion(0.0, 1e-12, 0.75, 0.33, 0.5);
        assert!((c - 1e-12).abs() < 1e-18);
    }

    #[test]
    fn depletion_cap_decreases_in_reverse() {
        let (_, c0) = depletion(0.0, 1e-12, 0.75, 0.33, 0.5);
        let (_, cr) = depletion(-5.0, 1e-12, 0.75, 0.33, 0.5);
        assert!(cr < c0 * 0.6);
    }

    #[test]
    fn depletion_charge_and_cap_continuous_at_fc() {
        let (cj, vj, m, fc) = (2e-12, 0.8, 0.4, 0.5);
        let v = fc * vj;
        let (ql, cl) = depletion(v - 1e-9, cj, vj, m, fc);
        let (qh, ch) = depletion(v + 1e-9, cj, vj, m, fc);
        assert!((ql - qh).abs() < 1e-20);
        assert!((cl - ch).abs() / cl < 1e-6);
    }

    #[test]
    fn capacitance_is_charge_derivative() {
        let (cj, vj, m, fc) = (1e-12, 0.75, 0.33, 0.5);
        for &v in &[-3.0, -0.5, 0.2, 0.5, 0.9] {
            let h = 1e-6;
            let (qp, _) = depletion(v + h, cj, vj, m, fc);
            let (qm, _) = depletion(v - h, cj, vj, m, fc);
            let (_, c) = depletion(v, cj, vj, m, fc);
            let c_num = (qp - qm) / (2.0 * h);
            assert!((c - c_num).abs() / c < 1e-5, "v={v}");
        }
    }

    #[test]
    fn pnjlim_passes_small_steps() {
        let nvt = VT_300K;
        let vc = vcrit(1e-16, nvt);
        assert_eq!(pnjlim(0.6, 0.59, nvt, vc), 0.6);
    }

    #[test]
    fn pnjlim_damps_large_forward_jumps() {
        let nvt = VT_300K;
        let vc = vcrit(1e-16, nvt);
        let limited = pnjlim(5.0, 0.7, nvt, vc);
        assert!(limited < 1.0, "limited = {limited}");
        assert!(limited > 0.7);
    }

    #[test]
    fn vcrit_is_plausible() {
        let vc = vcrit(1e-16, VT_300K);
        assert!(vc > 0.6 && vc < 1.0, "vcrit = {vc}");
    }
}
