//! Junction diode: model evaluation and the [`Device`] implementation.

use super::{
    AcCtx, AcStamper, Device, EdgeKind, NoiseGenerator, OpCtx, RealCtx, RealStamper, TopologyEdge,
    Q,
};
use crate::analysis::stamp::{ChargeState, Mode, NonlinMemory};
use crate::circuit::read_slot;
use crate::devices::junction::{depletion, diode_current, limexp, pnjlim, vcrit};
use crate::model::DiodeModel;

/// Operating state of a diode at junction voltage `vd`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiodeOperating {
    /// Junction voltage (V).
    pub vd: f64,
    /// Junction current (A).
    pub id: f64,
    /// Small-signal conductance `d(id)/d(vd)` (S).
    pub gd: f64,
    /// Stored charge: diffusion + depletion (C).
    pub qd: f64,
    /// Incremental capacitance `d(qd)/d(vd)` (F).
    pub cd: f64,
}

/// Evaluates the diode equations at junction voltage `vd`.
///
/// Includes reverse breakdown as an exponential branch when the model's
/// `bv` is finite.
pub fn eval_diode(model: &DiodeModel, vd: f64, vt: f64, gmin: f64) -> DiodeOperating {
    let nvt = model.n * vt;
    let (mut id, mut gd) = diode_current(vd, model.is_, nvt, gmin);
    if model.bv.is_finite() && vd < -model.bv + 10.0 * nvt {
        // Breakdown branch: current grows exponentially below -BV.
        let (eb, deb) = limexp(-(vd + model.bv), nvt);
        id -= model.is_ * eb;
        gd += model.is_ * deb;
    }
    let (qj, cj) = depletion(vd, model.cjo, model.vj, model.m, model.fc);
    let idiff = model.is_ * ((vd / nvt).min(80.0).exp() - 1.0);
    let qd = model.tt * idiff + qj;
    let cd = model.tt * (model.is_ / nvt) * (vd / nvt).min(80.0).exp() + cj;
    DiodeOperating { vd, id, gd, qd, cd }
}

/// Compiled diode: anode, optional internal node (series resistance)
/// and cathode slots.
#[derive(Debug)]
pub(crate) struct DiodeInstance {
    pub idx: usize,
    pub anode: usize,
    pub internal: usize,
    pub cathode: usize,
}

impl DiodeInstance {
    fn model<'a>(&self, cx_prep: &'a crate::circuit::Prepared) -> &'a DiodeModel {
        cx_prep.scaled_diode[self.idx]
            .as_ref()
            .expect("diode element has a scaled model")
    }
}

impl Device for DiodeInstance {
    fn index(&self) -> usize {
        self.idx
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn topology(&self, out: &mut Vec<TopologyEdge>) {
        // The junction always conducts at DC (gmin-loaded exponential);
        // the series-resistance segment exists only with an internal node.
        if self.internal != self.anode {
            out.push(TopologyEdge::new(
                self.anode,
                self.internal,
                EdgeKind::Conductive,
            ));
        }
        out.push(TopologyEdge::new(
            self.internal,
            self.cathode,
            EdgeKind::Conductive,
        ));
    }

    fn charge_slots(&self) -> usize {
        1
    }

    fn stamp_real(&self, cx: &RealCtx, mem: &mut NonlinMemory, s: &mut RealStamper) {
        let model = self.model(cx.prep);
        if self.internal != self.anode {
            s.conductance(self.anode, self.internal, 1.0 / model.rs);
        }
        let vd_raw = read_slot(cx.x, self.internal) - read_slot(cx.x, self.cathode);
        let nvt = model.n * cx.opts.vt;
        let vd = pnjlim(vd_raw, mem.diode[self.idx], nvt, vcrit(model.is_, nvt));
        let shift = (vd - vd_raw).abs();
        if shift > 1e-15 {
            mem.note_limited(shift);
        }
        mem.diode[self.idx] = vd;
        let op = eval_diode(model, vd, cx.opts.vt, cx.opts.gmin);
        s.conductance(self.internal, self.cathode, op.gd);
        s.current(self.internal, self.cathode, op.id - op.gd * vd);
        if let Mode::Tran { a, bank, .. } = cx.mode {
            let st = bank.states[bank.base[self.idx]];
            let i = a * (op.qd - st.q) - st.i;
            let geq = a * op.cd;
            s.conductance(self.internal, self.cathode, geq);
            s.current(self.internal, self.cathode, i - geq * vd);
        }
    }

    fn update_charges(&self, cx: &RealCtx, out: &mut [ChargeState]) {
        let Mode::Tran { a, bank, .. } = cx.mode else {
            return;
        };
        let model = self.model(cx.prep);
        let vd = read_slot(cx.x, self.internal) - read_slot(cx.x, self.cathode);
        let op = eval_diode(model, vd, cx.opts.vt, cx.opts.gmin);
        let st = bank.states[bank.base[self.idx]];
        out[0] = ChargeState {
            q: op.qd,
            i: a * (op.qd - st.q) - st.i,
        };
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        use ahfic_num::Complex;
        let model = self.model(cx.prep);
        let jw = Complex::new(0.0, cx.omega);
        if self.internal != self.anode {
            s.admittance(self.anode, self.internal, Complex::from_re(1.0 / model.rs));
        }
        let vd = read_slot(cx.x_op, self.internal) - read_slot(cx.x_op, self.cathode);
        let op = eval_diode(model, vd, cx.opts.vt, cx.opts.gmin);
        s.admittance(
            self.internal,
            self.cathode,
            Complex::from_re(op.gd) + jw * op.cd,
        );
    }

    fn noise(&self, cx: &OpCtx, out: &mut Vec<NoiseGenerator>) {
        let model = self.model(cx.prep);
        let name = &cx.prep.circuit.elements()[self.idx].name;
        let vd = read_slot(cx.x, self.internal) - read_slot(cx.x, self.cathode);
        let op = eval_diode(model, vd, cx.opts.vt, 0.0);
        out.push(NoiseGenerator::white(
            name,
            "shot-id",
            self.internal,
            self.cathode,
            2.0 * Q * op.id.abs(),
        ));
        if model.kf > 0.0 {
            out.push(NoiseGenerator::flicker(
                name,
                "flicker-id",
                self.internal,
                self.cathode,
                model.kf * op.id.abs().powf(model.af),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::junction::VT_300K;

    #[test]
    fn forward_conduction() {
        let m = DiodeModel::default();
        let op = eval_diode(&m, 0.7, VT_300K, 0.0);
        assert!(op.id > 1e-3, "id = {}", op.id);
        assert!(op.gd > 0.0);
    }

    #[test]
    fn reverse_leakage_is_saturation_current() {
        let m = DiodeModel::default();
        let op = eval_diode(&m, -5.0, VT_300K, 0.0);
        assert!((op.id + m.is_).abs() < 1e-16);
    }

    #[test]
    fn breakdown_conducts() {
        let m = DiodeModel {
            bv: 5.0,
            ..DiodeModel::default()
        };
        let op = eval_diode(&m, -5.5, VT_300K, 0.0);
        assert!(op.id < -1e-6, "id = {}", op.id);
    }

    #[test]
    fn capacitance_includes_diffusion_term() {
        let m = DiodeModel {
            tt: 1e-9,
            cjo: 1e-12,
            ..DiodeModel::default()
        };
        let rev = eval_diode(&m, -1.0, VT_300K, 0.0);
        let fwd = eval_diode(&m, 0.7, VT_300K, 0.0);
        assert!(fwd.cd > 100.0 * rev.cd);
    }

    #[test]
    fn conductance_is_current_derivative() {
        let m = DiodeModel::default();
        let h = 1e-7;
        let a = eval_diode(&m, 0.6 - h, VT_300K, 1e-12);
        let b = eval_diode(&m, 0.6 + h, VT_300K, 1e-12);
        let mid = eval_diode(&m, 0.6, VT_300K, 1e-12);
        let g_num = (b.id - a.id) / (2.0 * h);
        assert!((mid.gd - g_num).abs() / g_num < 1e-5);
    }
}
