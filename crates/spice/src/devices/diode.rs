//! Junction diode evaluation.

use crate::devices::junction::{depletion, diode_current, limexp};
use crate::model::DiodeModel;

/// Operating state of a diode at junction voltage `vd`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiodeOperating {
    /// Junction voltage (V).
    pub vd: f64,
    /// Junction current (A).
    pub id: f64,
    /// Small-signal conductance `d(id)/d(vd)` (S).
    pub gd: f64,
    /// Stored charge: diffusion + depletion (C).
    pub qd: f64,
    /// Incremental capacitance `d(qd)/d(vd)` (F).
    pub cd: f64,
}

/// Evaluates the diode equations at junction voltage `vd`.
///
/// Includes reverse breakdown as an exponential branch when the model's
/// `bv` is finite.
pub fn eval_diode(model: &DiodeModel, vd: f64, vt: f64, gmin: f64) -> DiodeOperating {
    let nvt = model.n * vt;
    let (mut id, mut gd) = diode_current(vd, model.is_, nvt, gmin);
    if model.bv.is_finite() && vd < -model.bv + 10.0 * nvt {
        // Breakdown branch: current grows exponentially below -BV.
        let (eb, deb) = limexp(-(vd + model.bv), nvt);
        id -= model.is_ * eb;
        gd += model.is_ * deb;
    }
    let (qj, cj) = depletion(vd, model.cjo, model.vj, model.m, model.fc);
    let idiff = model.is_ * ((vd / nvt).min(80.0).exp() - 1.0);
    let qd = model.tt * idiff + qj;
    let cd = model.tt * (model.is_ / nvt) * (vd / nvt).min(80.0).exp() + cj;
    DiodeOperating { vd, id, gd, qd, cd }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::junction::VT_300K;

    #[test]
    fn forward_conduction() {
        let m = DiodeModel::default();
        let op = eval_diode(&m, 0.7, VT_300K, 0.0);
        assert!(op.id > 1e-3, "id = {}", op.id);
        assert!(op.gd > 0.0);
    }

    #[test]
    fn reverse_leakage_is_saturation_current() {
        let m = DiodeModel::default();
        let op = eval_diode(&m, -5.0, VT_300K, 0.0);
        assert!((op.id + m.is_).abs() < 1e-16);
    }

    #[test]
    fn breakdown_conducts() {
        let m = DiodeModel {
            bv: 5.0,
            ..DiodeModel::default()
        };
        let op = eval_diode(&m, -5.5, VT_300K, 0.0);
        assert!(op.id < -1e-6, "id = {}", op.id);
    }

    #[test]
    fn capacitance_includes_diffusion_term() {
        let m = DiodeModel {
            tt: 1e-9,
            cjo: 1e-12,
            ..DiodeModel::default()
        };
        let rev = eval_diode(&m, -1.0, VT_300K, 0.0);
        let fwd = eval_diode(&m, 0.7, VT_300K, 0.0);
        assert!(fwd.cd > 100.0 * rev.cd);
    }

    #[test]
    fn conductance_is_current_derivative() {
        let m = DiodeModel::default();
        let h = 1e-7;
        let a = eval_diode(&m, 0.6 - h, VT_300K, 1e-12);
        let b = eval_diode(&m, 0.6 + h, VT_300K, 1e-12);
        let mid = eval_diode(&m, 0.6, VT_300K, 1e-12);
        let g_num = (b.id - a.id) / (2.0 * h);
        assert!((mid.gd - g_num).abs() / g_num < 1e-5);
    }
}
