//! Mutual-inductor coupling (`K` card): `K1 L1 L2 k` couples two
//! inductors with mutual inductance `M = k * sqrt(L1 * L2)`.
//!
//! The branch equations become `v1 = L1 di1/dt + M di2/dt` (and
//! symmetrically for `v2`). The inductors themselves stamp their own
//! self terms; this device only adds the cross terms, so it composes
//! with any number of couplings sharing an inductor. It lives entirely
//! under `devices/` — no analysis code knows it exists.

use super::{AcCtx, AcStamper, Device, RealCtx, RealStamper, TopologyEdge};
use crate::analysis::stamp::{Mode, NonlinMemory};
use crate::circuit::{Circuit, ElementKind};
use ahfic_num::Complex;

/// Cross-coupling between two inductor branches. `i1`/`i2` are the
/// element indices of the coupled inductors (inductance is read at
/// stamp time), `k1`/`k2` their branch-current slots.
#[derive(Debug)]
pub(crate) struct MutualInductor {
    pub idx: usize,
    pub i1: usize,
    pub i2: usize,
    pub k1: usize,
    pub k2: usize,
}

impl MutualInductor {
    /// Mutual inductance `M = k * sqrt(L1 * L2)` at current element
    /// values.
    fn m(&self, circuit: &Circuit) -> f64 {
        let ElementKind::MutualInd { k, .. } = circuit.elements()[self.idx].kind else {
            unreachable!("mutual device on non-mutual element")
        };
        let l_of = |i: usize| -> f64 {
            let ElementKind::Inductor { l, .. } = circuit.elements()[i].kind else {
                unreachable!("coupled element is not an inductor")
            };
            l
        };
        k * (l_of(self.i1) * l_of(self.i2)).sqrt()
    }
}

impl Device for MutualInductor {
    fn index(&self) -> usize {
        self.idx
    }

    // Coupling touches only the two inductor branch equations; the
    // inductors themselves declare the node connectivity.
    fn topology(&self, _out: &mut Vec<TopologyEdge>) {}

    fn stamp_real(&self, cx: &RealCtx, _mem: &mut NonlinMemory, s: &mut RealStamper) {
        match cx.mode {
            // The inductor branch rows are already DC shorts; coupling
            // contributes nothing at DC.
            Mode::Dc { .. } => {}
            Mode::Tran { a, x_prev, .. } => {
                // Trapezoidal companion of the cross term M di/dt, matching
                // the inductor's own -L*a / -(L*a*i_prev + v_prev) stamp.
                let m = self.m(&cx.prep.circuit);
                s.add(self.k1, self.k2, -m * a);
                s.add(self.k2, self.k1, -m * a);
                let (r1, r2) = if *a == 0.0 {
                    (0.0, 0.0)
                } else {
                    (-(m * a * x_prev[self.k2]), -(m * a * x_prev[self.k1]))
                };
                s.rhs_add(self.k1, r1);
                s.rhs_add(self.k2, r2);
            }
        }
    }

    fn stamp_ac(&self, cx: &AcCtx, s: &mut AcStamper) {
        let jwm = Complex::new(0.0, cx.omega * self.m(&cx.prep.circuit));
        s.add(self.k1, self.k2, -jwm);
        s.add(self.k2, self.k1, -jwm);
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::{Session, TranParams};
    use crate::circuit::{Circuit, NodeId, Prepared};
    use crate::error::SpiceError;
    use crate::wave::SourceWave;
    use ahfic_num::interp::linspace;

    /// Two identical parallel LC tanks, inductively coupled, the first
    /// driven through a source resistor. Returns (circuit, in, out).
    fn coupled_tanks(k: f64) -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let src = c.node("src");
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", src, Circuit::gnd(), 0.0);
        c.set_ac("V1", 1.0, 0.0).unwrap();
        c.resistor("RS", src, a, 2e3);
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.capacitor("C1", a, Circuit::gnd(), 1e-9);
        c.inductor("L2", b, Circuit::gnd(), 1e-6);
        c.capacitor("C2", b, Circuit::gnd(), 1e-9);
        c.resistor("RL", b, Circuit::gnd(), 2e3);
        c.mutual("K1", "L1", "L2", k);
        (c, a, b)
    }

    #[test]
    fn dc_op_sees_no_coupling() {
        // At DC both inductors are shorts; coupling must not disturb the
        // operating point or make the matrix singular.
        let (c, a, b) = coupled_tanks(0.5);
        let sess = Session::compile(&c).unwrap();
        let r = sess.op().unwrap();
        assert!(sess.prepared().voltage(r.x(), a).abs() < 1e-12);
        assert!(sess.prepared().voltage(r.x(), b).abs() < 1e-12);
    }

    #[test]
    fn ac_response_splits_into_two_resonances() {
        // Overcoupled identical tanks: the single resonance at
        // f0 = 1/(2 pi sqrt(LC)) splits into f0/sqrt(1 +/- k).
        let k = 0.3;
        let (c, _, _) = coupled_tanks(k);
        let sess = Session::compile(&c).unwrap();
        let x_op = sess.op().unwrap().into_x();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let f_lo = f0 / (1.0f64 + k).sqrt();
        let f_hi = f0 / (1.0f64 - k).sqrt();
        let freqs = linspace(0.6 * f0, 1.5 * f0, 901);
        let w = sess.ac(&x_op, &freqs).unwrap();
        let mag = w.magnitude("v(b)").unwrap();
        let mut peaks = Vec::new();
        for i in 1..mag.len() - 1 {
            if mag[i] > mag[i - 1] && mag[i] > mag[i + 1] {
                peaks.push(freqs[i]);
            }
        }
        assert_eq!(peaks.len(), 2, "expected a double-humped response");
        assert!(
            (peaks[0] - f_lo).abs() / f_lo < 0.01,
            "lower peak {:.4e} vs {:.4e}",
            peaks[0],
            f_lo
        );
        assert!(
            (peaks[1] - f_hi).abs() / f_hi < 0.01,
            "upper peak {:.4e} vs {:.4e}",
            peaks[1],
            f_hi
        );
    }

    #[test]
    fn tran_steady_state_matches_ac_transfer() {
        // Drive the coupled tanks with a sine at the lower split
        // resonance; the settled transient amplitude at the secondary
        // must match the AC magnitude at the same frequency.
        let k = 0.3;
        let (mut c, _, _) = coupled_tanks(k);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let f_drive = f0 / (1.0f64 + k).sqrt();
        c.set_source_wave(
            "V1",
            SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: f_drive,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        )
        .unwrap();
        let sess = Session::compile(&c).unwrap();
        let x_op = sess.op().unwrap().into_x();
        let expect = sess
            .ac(&x_op, &[f_drive])
            .unwrap()
            .magnitude("v(b)")
            .unwrap()[0];
        let period = 1.0 / f_drive;
        // Long enough for the tank transients to ring down.
        let w = sess
            .tran(&TranParams::new(400.0 * period, period / 60.0))
            .unwrap()
            .into_wave();
        let v = w.signal("v(b)").unwrap();
        let ts = w.axis();
        let tail_start = ts.last().unwrap() - 10.0 * period;
        let amp = ts
            .iter()
            .zip(v)
            .filter(|(t, _)| **t >= tail_start)
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        assert!(
            (amp - expect).abs() / expect < 0.05,
            "tran amplitude {amp:.4} vs AC {expect:.4}"
        );
    }

    #[test]
    fn coupling_to_non_inductor_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.mutual("K1", "L1", "R1", 0.5);
        assert!(matches!(Prepared::compile(&c), Err(SpiceError::Netlist(_))));
    }

    #[test]
    fn coupling_coefficient_out_of_range_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.inductor("L2", b, Circuit::gnd(), 1e-6);
        c.resistor("R1", a, b, 1.0);
        c.mutual("K1", "L1", "L2", 1.5);
        assert!(matches!(Prepared::compile(&c), Err(SpiceError::Netlist(_))));
    }

    #[test]
    fn self_coupling_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.mutual("K1", "L1", "L1", 0.5);
        assert!(matches!(Prepared::compile(&c), Err(SpiceError::Netlist(_))));
    }
}
