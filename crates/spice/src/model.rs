//! Device model cards (Gummel–Poon BJT, junction diode).

use crate::units::format_value;
use std::fmt;

/// Polarity of a bipolar transistor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BjtPolarity {
    /// NPN device.
    #[default]
    Npn,
    /// PNP device.
    Pnp,
}

impl BjtPolarity {
    /// `+1.0` for NPN, `-1.0` for PNP; multiplies terminal voltages and
    /// currents so one set of equations serves both polarities.
    pub fn sign(self) -> f64 {
        match self {
            BjtPolarity::Npn => 1.0,
            BjtPolarity::Pnp => -1.0,
        }
    }
}

/// A SPICE Gummel–Poon bipolar transistor model card.
///
/// Field names and semantics follow Berkeley SPICE 2G6 [Vladimirescu et
/// al.]; defaults are the SPICE defaults except where noted. Parameters
/// that depend on device *geometry* (`is_`, `ikf`, `ise`, `irb`, `itf`,
/// `rb`, `rbm`, `re`, `rc`, `cje`, `cjc`, `cjs`) are exactly the ones the
/// generator in `ahfic-geom` synthesizes per transistor shape.
#[derive(Clone, Debug, PartialEq)]
pub struct BjtModel {
    /// Model name as referenced by `Q` elements.
    pub name: String,
    /// Device polarity.
    pub polarity: BjtPolarity,
    /// Transport saturation current (A). SPICE `IS`.
    pub is_: f64,
    /// Ideal maximum forward beta. `BF`.
    pub bf: f64,
    /// Forward current emission coefficient. `NF`.
    pub nf: f64,
    /// Forward Early voltage (V); `INFINITY` disables. `VAF`.
    pub vaf: f64,
    /// Corner for forward-beta high-current roll-off (A). `IKF`.
    pub ikf: f64,
    /// B-E leakage saturation current (A). `ISE`.
    pub ise: f64,
    /// B-E leakage emission coefficient. `NE`.
    pub ne: f64,
    /// Ideal maximum reverse beta. `BR`.
    pub br: f64,
    /// Reverse current emission coefficient. `NR`.
    pub nr: f64,
    /// Reverse Early voltage (V). `VAR`.
    pub var: f64,
    /// Corner for reverse-beta high-current roll-off (A). `IKR`.
    pub ikr: f64,
    /// B-C leakage saturation current (A). `ISC`.
    pub isc: f64,
    /// B-C leakage emission coefficient. `NC`.
    pub nc: f64,
    /// Zero-bias base resistance (ohm). `RB`.
    pub rb: f64,
    /// Current where base resistance falls halfway to `RBM` (A). `IRB`.
    pub irb: f64,
    /// Minimum base resistance at high current (ohm). `RBM` (defaults to `RB`).
    pub rbm: f64,
    /// Emitter resistance (ohm). `RE`.
    pub re: f64,
    /// Collector resistance (ohm). `RC`.
    pub rc: f64,
    /// B-E zero-bias depletion capacitance (F). `CJE`.
    pub cje: f64,
    /// B-E built-in potential (V). `VJE`.
    pub vje: f64,
    /// B-E junction grading coefficient. `MJE`.
    pub mje: f64,
    /// Ideal forward transit time (s). `TF`.
    pub tf: f64,
    /// Coefficient for bias dependence of `TF`. `XTF`.
    pub xtf: f64,
    /// Voltage describing VBC dependence of `TF` (V). `VTF`.
    pub vtf: f64,
    /// High-current parameter for `TF` dependence (A). `ITF`.
    pub itf: f64,
    /// B-C zero-bias depletion capacitance (F). `CJC`.
    pub cjc: f64,
    /// B-C built-in potential (V). `VJC`.
    pub vjc: f64,
    /// B-C grading coefficient. `MJC`.
    pub mjc: f64,
    /// Fraction of B-C capacitance at the internal base node. `XCJC`.
    pub xcjc: f64,
    /// Ideal reverse transit time (s). `TR`.
    pub tr: f64,
    /// Collector-substrate zero-bias capacitance (F). `CJS`.
    pub cjs: f64,
    /// Substrate junction built-in potential (V). `VJS`.
    pub vjs: f64,
    /// Substrate junction grading coefficient. `MJS`.
    pub mjs: f64,
    /// Forward-bias depletion capacitance coefficient. `FC`.
    pub fc: f64,
    /// Flicker-noise coefficient (A^(2-AF)). `KF`; `0` disables 1/f noise.
    pub kf: f64,
    /// Flicker-noise current exponent. `AF`.
    pub af: f64,
}

impl Default for BjtModel {
    /// SPICE 2G6 defaults (with `VAF`/`VAR` infinite and unit betas raised
    /// to a practical `BF = 100`).
    fn default() -> Self {
        BjtModel {
            name: "generic".to_string(),
            polarity: BjtPolarity::Npn,
            is_: 1e-16,
            bf: 100.0,
            nf: 1.0,
            vaf: f64::INFINITY,
            ikf: f64::INFINITY,
            ise: 0.0,
            ne: 1.5,
            br: 1.0,
            nr: 1.0,
            var: f64::INFINITY,
            ikr: f64::INFINITY,
            isc: 0.0,
            nc: 2.0,
            rb: 0.0,
            irb: f64::INFINITY,
            rbm: 0.0,
            re: 0.0,
            rc: 0.0,
            cje: 0.0,
            vje: 0.75,
            mje: 0.33,
            tf: 0.0,
            xtf: 0.0,
            vtf: f64::INFINITY,
            itf: 0.0,
            cjc: 0.0,
            vjc: 0.75,
            mjc: 0.33,
            xcjc: 1.0,
            tr: 0.0,
            cjs: 0.0,
            vjs: 0.75,
            mjs: 0.0,
            fc: 0.5,
            kf: 0.0,
            af: 1.0,
        }
    }
}

impl BjtModel {
    /// Creates a default model with the given name.
    pub fn named(name: impl Into<String>) -> Self {
        BjtModel {
            name: name.into(),
            ..BjtModel::default()
        }
    }

    /// Effective minimum base resistance: `RBM` defaults to `RB` when unset.
    pub fn rbm_effective(&self) -> f64 {
        if self.rbm > 0.0 {
            self.rbm
        } else {
            self.rb
        }
    }

    /// Emits a SPICE `.model` card line.
    pub fn to_card(&self) -> String {
        let kind = match self.polarity {
            BjtPolarity::Npn => "NPN",
            BjtPolarity::Pnp => "PNP",
        };
        let mut parts: Vec<String> = Vec::new();
        let mut put = |key: &str, v: f64, default: f64| {
            let differs = if default.is_infinite() {
                v.is_finite()
            } else {
                (v - default).abs() > 1e-300 + 1e-12 * default.abs()
            };
            if differs && v.is_finite() {
                parts.push(format!("{key}={}", format_value(v)));
            }
        };
        let d = BjtModel::default();
        put("IS", self.is_, d.is_);
        put("BF", self.bf, d.bf);
        put("NF", self.nf, d.nf);
        put("VAF", self.vaf, d.vaf);
        put("IKF", self.ikf, d.ikf);
        put("ISE", self.ise, d.ise);
        put("NE", self.ne, d.ne);
        put("BR", self.br, d.br);
        put("NR", self.nr, d.nr);
        put("VAR", self.var, d.var);
        put("IKR", self.ikr, d.ikr);
        put("ISC", self.isc, d.isc);
        put("NC", self.nc, d.nc);
        put("RB", self.rb, d.rb);
        put("IRB", self.irb, d.irb);
        put("RBM", self.rbm, d.rbm);
        put("RE", self.re, d.re);
        put("RC", self.rc, d.rc);
        put("CJE", self.cje, d.cje);
        put("VJE", self.vje, d.vje);
        put("MJE", self.mje, d.mje);
        put("TF", self.tf, d.tf);
        put("XTF", self.xtf, d.xtf);
        put("VTF", self.vtf, d.vtf);
        put("ITF", self.itf, d.itf);
        put("CJC", self.cjc, d.cjc);
        put("VJC", self.vjc, d.vjc);
        put("MJC", self.mjc, d.mjc);
        put("XCJC", self.xcjc, d.xcjc);
        put("TR", self.tr, d.tr);
        put("CJS", self.cjs, d.cjs);
        put("VJS", self.vjs, d.vjs);
        put("MJS", self.mjs, d.mjs);
        put("FC", self.fc, d.fc);
        put("KF", self.kf, d.kf);
        put("AF", self.af, d.af);
        format!(".model {} {kind} ({})", self.name, parts.join(" "))
    }
}

impl fmt::Display for BjtModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_card())
    }
}

/// A SPICE junction diode model card.
#[derive(Clone, Debug, PartialEq)]
pub struct DiodeModel {
    /// Model name.
    pub name: String,
    /// Saturation current (A). `IS`.
    pub is_: f64,
    /// Emission coefficient. `N`.
    pub n: f64,
    /// Ohmic series resistance (ohm). `RS`.
    pub rs: f64,
    /// Zero-bias junction capacitance (F). `CJO`.
    pub cjo: f64,
    /// Built-in potential (V). `VJ`.
    pub vj: f64,
    /// Grading coefficient. `M`.
    pub m: f64,
    /// Transit time (s). `TT`.
    pub tt: f64,
    /// Forward-bias capacitance coefficient. `FC`.
    pub fc: f64,
    /// Reverse breakdown voltage (V, positive number); infinite disables.
    pub bv: f64,
    /// Flicker-noise coefficient (A^(2-AF)). `KF`; `0` disables 1/f noise.
    pub kf: f64,
    /// Flicker-noise current exponent. `AF`.
    pub af: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel {
            name: "d".to_string(),
            is_: 1e-14,
            n: 1.0,
            rs: 0.0,
            cjo: 0.0,
            vj: 1.0,
            m: 0.5,
            tt: 0.0,
            fc: 0.5,
            bv: f64::INFINITY,
            kf: 0.0,
            af: 1.0,
        }
    }
}

impl DiodeModel {
    /// Creates a default model with the given name.
    pub fn named(name: impl Into<String>) -> Self {
        DiodeModel {
            name: name.into(),
            ..DiodeModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_spice() {
        let m = BjtModel::default();
        assert_eq!(m.is_, 1e-16);
        assert_eq!(m.nf, 1.0);
        assert!(m.vaf.is_infinite());
        assert_eq!(m.fc, 0.5);
        let d = DiodeModel::default();
        assert_eq!(d.is_, 1e-14);
        assert_eq!(d.n, 1.0);
    }

    #[test]
    fn polarity_sign() {
        assert_eq!(BjtPolarity::Npn.sign(), 1.0);
        assert_eq!(BjtPolarity::Pnp.sign(), -1.0);
    }

    #[test]
    fn rbm_falls_back_to_rb() {
        let mut m = BjtModel {
            rb: 50.0,
            ..BjtModel::default()
        };
        assert_eq!(m.rbm_effective(), 50.0);
        m.rbm = 10.0;
        assert_eq!(m.rbm_effective(), 10.0);
    }

    #[test]
    fn card_only_lists_non_defaults() {
        let mut m = BjtModel::named("q1");
        m.bf = 120.0;
        m.cje = 1e-13;
        let card = m.to_card();
        assert!(card.starts_with(".model q1 NPN ("));
        assert!(card.contains("BF=120"));
        assert!(card.contains("CJE=100f"));
        assert!(!card.contains("NR="), "{card}");
        assert!(!card.contains("VAF"), "{card}");
    }

    #[test]
    fn display_is_card() {
        let m = BjtModel::named("x");
        assert_eq!(m.to_string(), m.to_card());
    }
}
