//! Time-domain waveforms for independent sources.

use std::f64::consts::PI;

/// Transient shape of an independent voltage or current source.
///
/// All sources also carry an AC magnitude/phase used only by the AC
/// analysis (see [`crate::circuit::Circuit`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// `SIN(offset ampl freq [delay [damping [phase_deg]]])`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Turn-on delay in seconds.
        delay: f64,
        /// Exponential damping factor (1/s) applied after `delay`.
        damping: f64,
        /// Phase in degrees.
        phase_deg: f64,
    },
    /// `PULSE(v1 v2 delay rise fall width period)`.
    Pulse {
        /// Initial level.
        v1: f64,
        /// Pulsed level.
        v2: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (0 is snapped to a 1 ps minimum internally).
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Pulse width at `v2`.
        width: f64,
        /// Repetition period; `0` means single-shot.
        period: f64,
    },
    /// Piece-wise linear `(t, v)` points; flat extrapolation outside.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWave {
    /// Value at time `t` (seconds).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Sin {
                offset,
                ampl,
                freq,
                delay,
                damping,
                phase_deg,
            } => {
                let phase0 = phase_deg.to_radians();
                if t < *delay {
                    offset + ampl * phase0.sin()
                } else {
                    let tt = t - delay;
                    offset
                        + ampl
                            * (-damping * tt).exp()
                            * (2.0 * PI * freq * tt + phase0).sin()
                }
            }
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tt = t - delay;
                if *period > 0.0 {
                    tt %= period;
                }
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                if tt < rise {
                    v1 + (v2 - v1) * tt / rise
                } else if tt < rise + width {
                    *v2
                } else if tt < rise + width + fall {
                    v2 + (v1 - v2) * (tt - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// DC (operating-point) value: the value at `t = 0`.
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            _ => self.eval(0.0),
        }
    }

    /// Time breakpoints at which the transient engine should place steps
    /// (corners of pulses and PWL segments) up to `t_stop`.
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        match self {
            SourceWave::Dc(_) | SourceWave::Sin { .. } => Vec::new(),
            SourceWave::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                let mut out = Vec::new();
                let cycle = [0.0, rise, rise + width, rise + width + fall];
                let mut base = *delay;
                loop {
                    for c in cycle {
                        let t = base + c;
                        if t <= t_stop {
                            out.push(t);
                        }
                    }
                    if *period <= 0.0 {
                        break;
                    }
                    base += period;
                    if base > t_stop {
                        break;
                    }
                }
                out
            }
            SourceWave::Pwl(points) => points
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t <= t_stop)
                .collect(),
        }
    }
}

impl Default for SourceWave {
    fn default() -> Self {
        SourceWave::Dc(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWave::Dc(5.0);
        assert_eq!(w.eval(0.0), 5.0);
        assert_eq!(w.eval(1.0), 5.0);
        assert_eq!(w.dc_value(), 5.0);
    }

    #[test]
    fn sin_basics() {
        let w = SourceWave::Sin {
            offset: 1.0,
            ampl: 2.0,
            freq: 1.0,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        };
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((w.eval(0.25) - 3.0).abs() < 1e-12);
        assert!((w.eval(0.75) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sin_delay_holds_start_value() {
        let w = SourceWave::Sin {
            offset: 0.5,
            ampl: 1.0,
            freq: 10.0,
            delay: 1.0,
            damping: 0.0,
            phase_deg: 0.0,
        };
        assert!((w.eval(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sin_damping_decays() {
        let w = SourceWave::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: 1.0,
            delay: 0.0,
            damping: 1.0,
            phase_deg: 90.0,
        };
        // at t=1: exp(-1)*cos(2pi) = exp(-1)
        assert!((w.eval(1.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 0.0,
        };
        assert_eq!(w.eval(0.5), 0.0);
        assert!((w.eval(1.5) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(3.0), 1.0); // flat top
        assert!((w.eval(4.5) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(10.0), 0.0);
    }

    #[test]
    fn pulse_repeats() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((w.eval(0.2) - w.eval(1.2)).abs() < 1e-12);
        assert!((w.eval(0.2) - w.eval(7.2)).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, -2.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert!((w.eval(0.5) - 1.0).abs() < 1e-12);
        assert!((w.eval(1.5) - 0.0).abs() < 1e-12);
        assert_eq!(w.eval(5.0), -2.0);
    }

    #[test]
    fn breakpoints_of_pulse() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.5,
            fall: 0.5,
            width: 1.0,
            period: 0.0,
        };
        let bp = w.breakpoints(10.0);
        assert_eq!(bp, vec![1.0, 1.5, 2.5, 3.0]);
    }

    #[test]
    fn breakpoints_respect_stop_time() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (5.0, 1.0), (20.0, 0.0)]);
        assert_eq!(w.breakpoints(10.0), vec![0.0, 5.0]);
    }
}
