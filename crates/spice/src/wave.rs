//! Source waveforms and analysis result containers.
//!
//! This module holds both sides of a simulation's waveform story:
//! [`SourceWave`] describes the stimulus an independent source applies
//! over time, while [`Waveform`] and [`AcWaveform`] collect the sampled
//! real/complex signals an analysis produces.

use crate::error::{Result, SpiceError};
use ahfic_num::Complex;
use std::collections::HashMap;
use std::f64::consts::PI;

/// Transient shape of an independent voltage or current source.
///
/// All sources also carry an AC magnitude/phase used only by the AC
/// analysis (see [`crate::circuit::Circuit`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// `SIN(offset ampl freq [delay [damping [phase_deg]]])`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Turn-on delay in seconds.
        delay: f64,
        /// Exponential damping factor (1/s) applied after `delay`.
        damping: f64,
        /// Phase in degrees.
        phase_deg: f64,
    },
    /// `PULSE(v1 v2 delay rise fall width period)`.
    Pulse {
        /// Initial level.
        v1: f64,
        /// Pulsed level.
        v2: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (0 is snapped to a 1 ps minimum internally).
        rise: f64,
        /// Fall time.
        fall: f64,
        /// Pulse width at `v2`.
        width: f64,
        /// Repetition period; `0` means single-shot.
        period: f64,
    },
    /// Piece-wise linear `(t, v)` points; flat extrapolation outside.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWave {
    /// Value at time `t` (seconds).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Sin {
                offset,
                ampl,
                freq,
                delay,
                damping,
                phase_deg,
            } => {
                let phase0 = phase_deg.to_radians();
                if t < *delay {
                    offset + ampl * phase0.sin()
                } else {
                    let tt = t - delay;
                    offset + ampl * (-damping * tt).exp() * (2.0 * PI * freq * tt + phase0).sin()
                }
            }
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tt = t - delay;
                if *period > 0.0 {
                    tt %= period;
                }
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                if tt < rise {
                    v1 + (v2 - v1) * tt / rise
                } else if tt < rise + width {
                    *v2
                } else if tt < rise + width + fall {
                    v2 + (v1 - v2) * (tt - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// DC (operating-point) value: the value at `t = 0`.
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            _ => self.eval(0.0),
        }
    }

    /// Time breakpoints at which the transient engine should place steps
    /// (corners of pulses and PWL segments) up to `t_stop`.
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        match self {
            SourceWave::Dc(_) | SourceWave::Sin { .. } => Vec::new(),
            SourceWave::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(1e-12);
                let fall = fall.max(1e-12);
                let mut out = Vec::new();
                let cycle = [0.0, rise, rise + width, rise + width + fall];
                let mut base = *delay;
                loop {
                    for c in cycle {
                        let t = base + c;
                        if t <= t_stop {
                            out.push(t);
                        }
                    }
                    if *period <= 0.0 {
                        break;
                    }
                    base += period;
                    if base > t_stop {
                        break;
                    }
                }
                out
            }
            SourceWave::Pwl(points) => points
                .iter()
                .map(|&(t, _)| t)
                .filter(|&t| t <= t_stop)
                .collect(),
        }
    }
}

impl Default for SourceWave {
    fn default() -> Self {
        SourceWave::Dc(0.0)
    }
}

/// A set of named real signals sampled on a shared axis (time or sweep
/// variable).
///
/// # Example
///
/// ```
/// use ahfic_spice::wave::Waveform;
/// let mut w = Waveform::new("t");
/// w.push_signal("v(out)");
/// w.push_sample(0.0, &[1.0]);
/// w.push_sample(1e-9, &[2.0]);
/// assert_eq!(w.signal("v(out)").unwrap(), &[1.0, 2.0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Waveform {
    axis_name: String,
    axis: Vec<f64>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    data: Vec<Vec<f64>>,
}

impl Waveform {
    /// Creates an empty waveform with the given axis name.
    pub fn new(axis_name: &str) -> Self {
        Waveform {
            axis_name: axis_name.to_string(),
            ..Default::default()
        }
    }

    /// Registers a signal column (before pushing samples).
    pub fn push_signal(&mut self, name: &str) -> usize {
        let id = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_ascii_lowercase(), id);
        self.data.push(Vec::new());
        id
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered signal count.
    pub fn push_sample(&mut self, axis_value: f64, values: &[f64]) {
        assert_eq!(values.len(), self.data.len(), "sample width mismatch");
        self.axis.push(axis_value);
        for (col, &v) in self.data.iter_mut().zip(values.iter()) {
            col.push(v);
        }
    }

    /// Axis label.
    pub fn axis_name(&self) -> &str {
        &self.axis_name
    }

    /// The shared axis samples.
    pub fn axis(&self) -> &[f64] {
        &self.axis
    }

    /// Number of sample rows.
    pub fn len(&self) -> usize {
        self.axis.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.axis.is_empty()
    }

    /// Registered signal names.
    pub fn signal_names(&self) -> &[String] {
        &self.names
    }

    /// A signal by (case-insensitive) name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] when the signal does not exist.
    pub fn signal(&self, name: &str) -> Result<&[f64]> {
        self.index
            .get(&name.to_ascii_lowercase())
            .map(|&i| self.data[i].as_slice())
            .ok_or_else(|| SpiceError::Measure(format!("no signal named {name}")))
    }

    /// Last value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] when the signal is missing or empty.
    pub fn last(&self, name: &str) -> Result<f64> {
        self.signal(name)?
            .last()
            .copied()
            .ok_or_else(|| SpiceError::Measure(format!("signal {name} is empty")))
    }

    /// Serializes the waveform as CSV (axis column first) for plotting in
    /// external tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.axis_name);
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for k in 0..self.len() {
            out.push_str(&format!("{:e}", self.axis[k]));
            for col in &self.data {
                out.push_str(&format!(",{:e}", col[k]));
            }
            out.push('\n');
        }
        out
    }

    /// Resamples a signal onto a uniform grid of `n` points spanning the
    /// axis (linear interpolation) — the FFT front-end for transient data
    /// recorded with adaptive steps.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] if the signal is missing or has
    /// fewer than two samples.
    pub fn resample_uniform(&self, name: &str, n: usize) -> Result<(f64, Vec<f64>)> {
        let y = self.signal(name)?;
        if y.len() < 2 || n < 2 {
            return Err(SpiceError::Measure(format!(
                "signal {name} has too few samples to resample"
            )));
        }
        let t0 = self.axis[0];
        let t1 = self.axis[self.axis.len() - 1];
        let dt = (t1 - t0) / (n - 1) as f64;
        let mut out = Vec::with_capacity(n);
        let mut j = 0usize;
        for k in 0..n {
            let t = t0 + k as f64 * dt;
            while j + 1 < self.axis.len() - 1 && self.axis[j + 1] < t {
                j += 1;
            }
            let (ta, tb) = (self.axis[j], self.axis[j + 1]);
            let (ya, yb) = (y[j], y[j + 1]);
            let v = if tb > ta {
                ya + (yb - ya) * ((t - ta) / (tb - ta)).clamp(0.0, 1.0)
            } else {
                yb
            };
            out.push(v);
        }
        Ok((1.0 / dt, out))
    }
}

/// A set of named complex signals over a frequency axis (AC results).
#[derive(Clone, Debug, Default)]
pub struct AcWaveform {
    freqs: Vec<f64>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    data: Vec<Vec<Complex>>,
}

impl AcWaveform {
    /// Creates an empty AC waveform.
    pub fn new() -> Self {
        AcWaveform::default()
    }

    /// Registers a signal column.
    pub fn push_signal(&mut self, name: &str) -> usize {
        let id = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_ascii_lowercase(), id);
        self.data.push(Vec::new());
        id
    }

    /// Appends one frequency point.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered signal count.
    pub fn push_sample(&mut self, freq: f64, values: &[Complex]) {
        assert_eq!(values.len(), self.data.len(), "sample width mismatch");
        self.freqs.push(freq);
        for (col, &v) in self.data.iter_mut().zip(values.iter()) {
            col.push(v);
        }
    }

    /// Frequency axis (Hz).
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// A complex signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] when the signal does not exist.
    pub fn signal(&self, name: &str) -> Result<&[Complex]> {
        self.index
            .get(&name.to_ascii_lowercase())
            .map(|&i| self.data[i].as_slice())
            .ok_or_else(|| SpiceError::Measure(format!("no signal named {name}")))
    }

    /// Magnitude of a signal at every frequency.
    ///
    /// # Errors
    ///
    /// Propagates missing-signal errors from [`Self::signal`].
    pub fn magnitude(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.signal(name)?.iter().map(|z| z.abs()).collect())
    }

    /// Phase in degrees of a signal at every frequency.
    ///
    /// # Errors
    ///
    /// Propagates missing-signal errors from [`Self::signal`].
    pub fn phase_deg(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.signal(name)?.iter().map(|z| z.arg_deg()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = SourceWave::Dc(5.0);
        assert_eq!(w.eval(0.0), 5.0);
        assert_eq!(w.eval(1.0), 5.0);
        assert_eq!(w.dc_value(), 5.0);
    }

    #[test]
    fn sin_basics() {
        let w = SourceWave::Sin {
            offset: 1.0,
            ampl: 2.0,
            freq: 1.0,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        };
        assert!((w.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((w.eval(0.25) - 3.0).abs() < 1e-12);
        assert!((w.eval(0.75) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sin_delay_holds_start_value() {
        let w = SourceWave::Sin {
            offset: 0.5,
            ampl: 1.0,
            freq: 10.0,
            delay: 1.0,
            damping: 0.0,
            phase_deg: 0.0,
        };
        assert!((w.eval(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sin_damping_decays() {
        let w = SourceWave::Sin {
            offset: 0.0,
            ampl: 1.0,
            freq: 1.0,
            delay: 0.0,
            damping: 1.0,
            phase_deg: 90.0,
        };
        // at t=1: exp(-1)*cos(2pi) = exp(-1)
        assert!((w.eval(1.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 0.0,
        };
        assert_eq!(w.eval(0.5), 0.0);
        assert!((w.eval(1.5) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(3.0), 1.0); // flat top
        assert!((w.eval(4.5) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(10.0), 0.0);
    }

    #[test]
    fn pulse_repeats() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((w.eval(0.2) - w.eval(1.2)).abs() < 1e-12);
        assert!((w.eval(0.2) - w.eval(7.2)).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, -2.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert!((w.eval(0.5) - 1.0).abs() < 1e-12);
        assert!((w.eval(1.5) - 0.0).abs() < 1e-12);
        assert_eq!(w.eval(5.0), -2.0);
    }

    #[test]
    fn breakpoints_of_pulse() {
        let w = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.5,
            fall: 0.5,
            width: 1.0,
            period: 0.0,
        };
        let bp = w.breakpoints(10.0);
        assert_eq!(bp, vec![1.0, 1.5, 2.5, 3.0]);
    }

    #[test]
    fn breakpoints_respect_stop_time() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (5.0, 1.0), (20.0, 0.0)]);
        assert_eq!(w.breakpoints(10.0), vec![0.0, 5.0]);
    }

    #[test]
    fn waveform_round_trip() {
        let mut w = Waveform::new("t");
        w.push_signal("a");
        w.push_signal("b");
        w.push_sample(0.0, &[1.0, -1.0]);
        w.push_sample(1.0, &[2.0, -2.0]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.axis(), &[0.0, 1.0]);
        assert_eq!(w.signal("A").unwrap(), &[1.0, 2.0]);
        assert_eq!(w.last("b").unwrap(), -2.0);
        assert!(w.signal("zz").is_err());
    }

    #[test]
    fn csv_round_trips_by_eye() {
        let mut w = Waveform::new("t");
        w.push_signal("v(out)");
        w.push_sample(0.0, &[1.5]);
        w.push_sample(1e-9, &[-2.0]);
        let csv = w.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t,v(out)"));
        assert_eq!(lines.next(), Some("0e0,1.5e0"));
        assert_eq!(lines.next(), Some("1e-9,-2e0"));
    }

    #[test]
    fn resample_linear_ramp_exactly() {
        let mut w = Waveform::new("t");
        w.push_signal("x");
        // Non-uniform sampling of x(t) = 2 t
        for &t in &[0.0, 0.1, 0.15, 0.4, 1.0] {
            w.push_sample(t, &[2.0 * t]);
        }
        let (fs, y) = w.resample_uniform("x", 11).unwrap();
        assert!((fs - 10.0).abs() < 1e-12);
        for (k, v) in y.iter().enumerate() {
            assert!((v - 0.2 * k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn ac_waveform_magnitude_phase() {
        let mut w = AcWaveform::new();
        w.push_signal("v(out)");
        w.push_sample(1e3, &[Complex::new(0.0, 2.0)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.magnitude("v(out)").unwrap(), vec![2.0]);
        assert!((w.phase_deg("v(out)").unwrap()[0] - 90.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn sample_width_checked() {
        let mut w = Waveform::new("t");
        w.push_signal("a");
        w.push_sample(0.0, &[1.0, 2.0]);
    }
}
