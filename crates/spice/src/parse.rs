//! SPICE netlist (deck) parser.
//!
//! Supports the classic card set needed by the AHFIC flows:
//!
//! ```text
//! * comment / title
//! R1 in out 2.2k
//! C1 out 0 10p
//! L1 a b 4n
//! V1 in 0 DC 5 AC 1 0
//! V2 x 0 SIN(0 1 1g)        ; also PULSE(...) and PWL(...)
//! I1 0 b 1m
//! E1 o 0 a 0 10             ; VCVS
//! G1 o 0 a 0 1m             ; VCCS
//! F1 o 0 V1 5               ; CCCS
//! H1 o 0 V1 100             ; CCVS
//! D1 a 0 dmod
//! Q1 c b e nmod             ; or: Q1 c b e s nmod area
//! .model nmod NPN (IS=1e-16 BF=120 TF=15p ...)
//! .model dmod D (IS=1e-14)
//! .ic v(out)=2.5
//! .end
//! ```
//!
//! Continuation lines start with `+`. Names and node labels are
//! case-insensitive; `0` and `gnd` are ground.

use crate::circuit::Circuit;
use crate::error::{Result, SpiceError};
use crate::model::{BjtModel, BjtPolarity, DiodeModel};
use crate::units::parse_value;
use crate::wave::SourceWave;

/// Parses a SPICE deck into a [`Circuit`].
///
/// # Errors
///
/// Returns [`SpiceError::Parse`] with a line number for any malformed
/// card, unknown element letter, or missing model reference.
pub fn parse_netlist(text: &str) -> Result<Circuit> {
    let lines = crate::subckt::expand_subcircuits(join_continuations(text))?;
    let mut ckt = Circuit::new();
    parse_cards(lines, &mut ckt)?;
    Ok(ckt)
}

/// Parses a SPICE deck from a file, resolving `.include` directives
/// relative to the deck's directory (one level of nesting per include;
/// includes may include further files up to a depth of 16).
///
/// # Errors
///
/// I/O failures surface as [`SpiceError::Parse`] naming the file;
/// otherwise as [`parse_netlist`].
pub fn parse_netlist_file(path: impl AsRef<std::path::Path>) -> Result<Circuit> {
    let text = read_with_includes(path.as_ref(), 0)?;
    parse_netlist(&text)
}

fn read_with_includes(path: &std::path::Path, depth: usize) -> Result<String> {
    if depth > 16 {
        return Err(SpiceError::Parse {
            line: 0,
            message: format!(".include nesting too deep at {}", path.display()),
        });
    }
    let text = std::fs::read_to_string(path).map_err(|e| SpiceError::Parse {
        line: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.to_ascii_lowercase().starts_with(".include") {
            let target = trimmed
                .get(".include".len()..)
                .unwrap_or("")
                .trim()
                .trim_matches(['"', '\'']);
            if target.is_empty() {
                return Err(SpiceError::Parse {
                    line: 0,
                    message: ".include needs a file name".into(),
                });
            }
            out.push_str(&read_with_includes(&dir.join(target), depth + 1)?);
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok(out)
}

fn parse_cards(lines: Vec<(usize, String)>, ckt: &mut Circuit) -> Result<()> {
    // Pass 1: model cards (elements may reference models defined later).
    for (lineno, line) in &lines {
        if let Some(rest) = strip_directive(line, ".model") {
            parse_model(ckt, rest, *lineno)?;
        }
    }

    // Pass 2: everything else.
    for (lineno, line) in &lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with(".model") || lower.starts_with(".end") {
            continue;
        }
        if let Some(rest) = strip_directive(line, ".ic") {
            parse_ic(ckt, rest, *lineno)?;
            continue;
        }
        if lower.starts_with('.') {
            // Unknown directives are ignored (analyses are driven from the
            // API, not from cards).
            continue;
        }
        parse_element(ckt, line, *lineno)?;
    }
    Ok(())
}

/// Joins `+` continuation lines, strips `*` comment lines, inline `;`
/// comments and blank lines, keeping original line numbers.
fn join_continuations(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (k, raw) in text.lines().enumerate() {
        let line = match raw.find(';') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont.trim());
                continue;
            }
        }
        out.push((k + 1, trimmed.to_string()));
    }
    out
}

fn strip_directive<'a>(line: &'a str, directive: &str) -> Option<&'a str> {
    let lower = line.to_ascii_lowercase();
    if lower.starts_with(directive) {
        line.get(directive.len()..).map(str::trim_start)
    } else {
        None
    }
}

fn perr(line: usize, message: impl Into<String>) -> SpiceError {
    SpiceError::Parse {
        line,
        message: message.into(),
    }
}

fn need_value(tok: &str, line: usize, what: &str) -> Result<f64> {
    parse_value(tok).ok_or_else(|| perr(line, format!("expected a number for {what}, got `{tok}`")))
}

/// Splits a card into tokens, keeping `fn(...)` argument groups together.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in line.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_model(ckt: &mut Circuit, rest: &str, line: usize) -> Result<()> {
    // name TYPE (K=V ...)  — parens optional.
    let cleaned = rest.replace(['(', ')'], " ");
    let toks: Vec<&str> = cleaned.split_whitespace().collect();
    if toks.len() < 2 {
        return Err(perr(line, "malformed .model card"));
    }
    let name = toks[0];
    let kind = toks[1].to_ascii_uppercase();
    let pairs = &toks[2..];
    match kind.as_str() {
        "NPN" | "PNP" => {
            let mut m = BjtModel::named(name);
            m.polarity = if kind == "PNP" {
                BjtPolarity::Pnp
            } else {
                BjtPolarity::Npn
            };
            for kv in pairs {
                let (k, v) = split_kv(kv, line)?;
                apply_bjt_param(&mut m, &k, v, line)?;
            }
            ckt.add_bjt_model(m);
        }
        "D" => {
            let mut m = DiodeModel::named(name);
            for kv in pairs {
                let (k, v) = split_kv(kv, line)?;
                apply_diode_param(&mut m, &k, v, line)?;
            }
            ckt.add_diode_model(m);
        }
        other => return Err(perr(line, format!("unsupported model type {other}"))),
    }
    Ok(())
}

fn split_kv(kv: &str, line: usize) -> Result<(String, f64)> {
    let (k, v) = kv
        .split_once('=')
        .ok_or_else(|| perr(line, format!("expected key=value, got `{kv}`")))?;
    Ok((
        k.trim().to_ascii_uppercase(),
        need_value(v.trim(), line, k)?,
    ))
}

fn apply_bjt_param(m: &mut BjtModel, key: &str, v: f64, line: usize) -> Result<()> {
    match key {
        "IS" => m.is_ = v,
        "BF" => m.bf = v,
        "NF" => m.nf = v,
        "VAF" => m.vaf = v,
        "IKF" => m.ikf = v,
        "ISE" => m.ise = v,
        "NE" => m.ne = v,
        "BR" => m.br = v,
        "NR" => m.nr = v,
        "VAR" => m.var = v,
        "IKR" => m.ikr = v,
        "ISC" => m.isc = v,
        "NC" => m.nc = v,
        "RB" => m.rb = v,
        "IRB" => m.irb = v,
        "RBM" => m.rbm = v,
        "RE" => m.re = v,
        "RC" => m.rc = v,
        "CJE" => m.cje = v,
        "VJE" => m.vje = v,
        "MJE" => m.mje = v,
        "TF" => m.tf = v,
        "XTF" => m.xtf = v,
        "VTF" => m.vtf = v,
        "ITF" => m.itf = v,
        "CJC" => m.cjc = v,
        "VJC" => m.vjc = v,
        "MJC" => m.mjc = v,
        "XCJC" => m.xcjc = v,
        "TR" => m.tr = v,
        "CJS" => m.cjs = v,
        "VJS" => m.vjs = v,
        "MJS" => m.mjs = v,
        "FC" => m.fc = v,
        "KF" => m.kf = v,
        "AF" => m.af = v,
        _ => return Err(perr(line, format!("unknown BJT parameter {key}"))),
    }
    Ok(())
}

fn apply_diode_param(m: &mut DiodeModel, key: &str, v: f64, line: usize) -> Result<()> {
    match key {
        "IS" => m.is_ = v,
        "N" => m.n = v,
        "RS" => m.rs = v,
        "CJO" | "CJ0" => m.cjo = v,
        "VJ" => m.vj = v,
        "M" => m.m = v,
        "TT" => m.tt = v,
        "FC" => m.fc = v,
        "BV" => m.bv = v,
        "KF" => m.kf = v,
        "AF" => m.af = v,
        _ => return Err(perr(line, format!("unknown diode parameter {key}"))),
    }
    Ok(())
}

fn parse_ic(ckt: &mut Circuit, rest: &str, line: usize) -> Result<()> {
    // .ic v(node)=value [v(node)=value ...]
    for item in rest.split_whitespace() {
        let lower = item.to_ascii_lowercase();
        let inner = lower
            .strip_prefix("v(")
            .and_then(|s| s.split_once(")="))
            .ok_or_else(|| perr(line, format!("malformed .ic item `{item}`")))?;
        let node = ckt.node(inner.0);
        let value = need_value(inner.1, line, "initial condition")?;
        ckt.set_ic(node, value);
    }
    Ok(())
}

/// Parses an independent-source value specification.
fn parse_source_spec(toks: &[String], line: usize) -> Result<(SourceWave, Option<(f64, f64)>)> {
    let mut wave: Option<SourceWave> = None;
    let mut dc: f64 = 0.0;
    let mut ac: Option<(f64, f64)> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i].to_ascii_lowercase();
        if t == "dc" {
            dc = need_value(
                toks.get(i + 1)
                    .ok_or_else(|| perr(line, "DC needs a value"))?,
                line,
                "DC value",
            )?;
            i += 2;
        } else if t == "ac" {
            let mag = need_value(
                toks.get(i + 1)
                    .ok_or_else(|| perr(line, "AC needs a magnitude"))?,
                line,
                "AC magnitude",
            )?;
            let mut phase = 0.0;
            let mut consumed = 2;
            if let Some(p) = toks.get(i + 2).and_then(|t| parse_value(t)) {
                phase = p;
                consumed = 3;
            }
            ac = Some((mag, phase));
            i += consumed;
        } else if let Some(args) = fn_args(&t, "sin") {
            let v = parse_args(args, line)?;
            wave = Some(SourceWave::Sin {
                offset: v.first().copied().unwrap_or(0.0),
                ampl: v.get(1).copied().unwrap_or(0.0),
                freq: v.get(2).copied().unwrap_or(0.0),
                delay: v.get(3).copied().unwrap_or(0.0),
                damping: v.get(4).copied().unwrap_or(0.0),
                phase_deg: v.get(5).copied().unwrap_or(0.0),
            });
            i += 1;
        } else if let Some(args) = fn_args(&t, "pulse") {
            let v = parse_args(args, line)?;
            if v.len() < 7 {
                return Err(perr(line, "PULSE needs 7 arguments"));
            }
            wave = Some(SourceWave::Pulse {
                v1: v[0],
                v2: v[1],
                delay: v[2],
                rise: v[3],
                fall: v[4],
                width: v[5],
                period: v[6],
            });
            i += 1;
        } else if let Some(args) = fn_args(&t, "pwl") {
            let v = parse_args(args, line)?;
            if v.len() < 2 || v.len() % 2 != 0 {
                return Err(perr(line, "PWL needs an even number of arguments"));
            }
            wave = Some(SourceWave::Pwl(v.chunks(2).map(|c| (c[0], c[1])).collect()));
            i += 1;
        } else if let Some(v) = parse_value(&t) {
            // Bare number = DC value.
            dc = v;
            i += 1;
        } else {
            return Err(perr(line, format!("unexpected source token `{t}`")));
        }
    }
    Ok((wave.unwrap_or(SourceWave::Dc(dc)), ac))
}

fn fn_args<'a>(tok: &'a str, name: &str) -> Option<&'a str> {
    let rest = tok.strip_prefix(name)?;
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn parse_args(args: &str, line: usize) -> Result<Vec<f64>> {
    args.split(|c: char| c.is_whitespace() || c == ',')
        .filter(|s| !s.is_empty())
        .map(|s| need_value(s, line, "source argument"))
        .collect()
}

fn parse_element(ckt: &mut Circuit, line_text: &str, line: usize) -> Result<()> {
    let toks = tokenize(line_text);
    if toks.is_empty() {
        return Ok(());
    }
    let name = toks[0].clone();
    // Subcircuit expansion prefixes names with the instance path
    // (`x1.R3`); the element letter is that of the last path segment.
    let first = name
        .rsplit('.')
        .next()
        .and_then(|seg| seg.chars().next())
        .ok_or_else(|| perr(line, format!("malformed element name `{name}`")))?
        .to_ascii_uppercase();
    // The `Circuit` builder enforces its invariants (positive values,
    // unique names) with panics — a fine contract for programmatic
    // construction, but netlist text is untrusted input and must come
    // back as a typed error instead.
    if ckt.find_element(&name).is_some() {
        return Err(perr(line, format!("duplicate element name `{name}`")));
    }
    // Whatever the arm below adds gets this card's line number, so lint
    // diagnostics can point back into the deck.
    let first_new = ckt.elements().len();
    match first {
        'R' | 'C' | 'L' => {
            if toks.len() < 4 {
                return Err(perr(line, format!("{name}: needs 2 nodes and a value")));
            }
            let p = ckt.node(&toks[1]);
            let n = ckt.node(&toks[2]);
            let v = need_value(&toks[3], line, "element value")?;
            match first {
                'R' if v <= 0.0 => {
                    return Err(perr(line, format!("{name}: resistance must be positive")));
                }
                'C' if v < 0.0 => {
                    return Err(perr(
                        line,
                        format!("{name}: capacitance must be non-negative"),
                    ));
                }
                'L' if v <= 0.0 => {
                    return Err(perr(line, format!("{name}: inductance must be positive")));
                }
                _ => {}
            }
            match first {
                'R' => ckt.resistor(&name, p, n, v),
                'C' => ckt.capacitor(&name, p, n, v),
                _ => ckt.inductor(&name, p, n, v),
            };
        }
        'V' | 'I' => {
            if toks.len() < 3 {
                return Err(perr(line, format!("{name}: needs 2 nodes")));
            }
            let p = ckt.node(&toks[1]);
            let n = ckt.node(&toks[2]);
            let (wave, ac) = parse_source_spec(&toks[3..], line)?;
            if first == 'V' {
                ckt.vsource_wave(&name, p, n, wave);
            } else {
                ckt.isource_wave(&name, p, n, wave);
            }
            if let Some((mag, phase)) = ac {
                ckt.set_ac(&name, mag, phase)?;
            }
        }
        'E' | 'G' => {
            if toks.len() < 6 {
                return Err(perr(line, format!("{name}: needs 4 nodes and a gain")));
            }
            let p = ckt.node(&toks[1]);
            let n = ckt.node(&toks[2]);
            let cp = ckt.node(&toks[3]);
            let cn = ckt.node(&toks[4]);
            let g = need_value(&toks[5], line, "gain")?;
            if first == 'E' {
                ckt.vcvs(&name, p, n, cp, cn, g);
            } else {
                ckt.vccs(&name, p, n, cp, cn, g);
            }
        }
        'K' => {
            // K1 L1 L2 k — mutual coupling between two inductors.
            if toks.len() < 4 {
                return Err(perr(
                    line,
                    format!("{name}: needs two inductors and a coefficient"),
                ));
            }
            let k = need_value(&toks[3], line, "coupling coefficient")?;
            ckt.mutual(&name, &toks[1], &toks[2], k);
        }
        'F' | 'H' => {
            if toks.len() < 5 {
                return Err(perr(
                    line,
                    format!("{name}: needs 2 nodes, a source and a gain"),
                ));
            }
            let p = ckt.node(&toks[1]);
            let n = ckt.node(&toks[2]);
            let vname = toks[3].clone();
            let g = need_value(&toks[4], line, "gain")?;
            if first == 'F' {
                ckt.cccs(&name, p, n, &vname, g);
            } else {
                ckt.ccvs(&name, p, n, &vname, g);
            }
        }
        'D' => {
            if toks.len() < 4 {
                return Err(perr(line, format!("{name}: needs 2 nodes and a model")));
            }
            let p = ckt.node(&toks[1]);
            let n = ckt.node(&toks[2]);
            let model = ckt
                .find_diode_model(&toks[3])
                .ok_or_else(|| perr(line, format!("unknown diode model {}", toks[3])))?;
            let area = toks.get(4).and_then(|t| parse_value(t)).unwrap_or(1.0);
            ckt.diode(&name, p, n, model, area);
        }
        'Q' => {
            if toks.len() < 5 {
                return Err(perr(line, format!("{name}: needs c b e and a model")));
            }
            // Either `Q c b e model [area]` or `Q c b e s model [area]`:
            // disambiguate by checking whether token 4 is a known model.
            let c = ckt.node(&toks[1]);
            let b = ckt.node(&toks[2]);
            let e = ckt.node(&toks[3]);
            if let Some(model) = ckt.find_bjt_model(&toks[4]) {
                let area = toks.get(5).and_then(|t| parse_value(t)).unwrap_or(1.0);
                ckt.bjt(&name, c, b, e, model, area);
            } else if toks.len() >= 6 {
                let s = ckt.node(&toks[4]);
                let model = ckt
                    .find_bjt_model(&toks[5])
                    .ok_or_else(|| perr(line, format!("unknown BJT model {}", toks[5])))?;
                let area = toks.get(6).and_then(|t| parse_value(t)).unwrap_or(1.0);
                ckt.bjt4(&name, c, b, e, s, model, area);
            } else {
                return Err(perr(line, format!("unknown BJT model {}", toks[4])));
            }
        }
        other => {
            return Err(perr(
                line,
                format!("unsupported element letter `{other}` in {name}"),
            ))
        }
    }
    for idx in first_new..ckt.elements().len() {
        ckt.set_element_line(idx, line);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::op_eval as op;
    use crate::analysis::Options;
    use crate::circuit::{ElementKind, Prepared};

    #[test]
    fn parses_divider_and_solves() {
        let ckt =
            parse_netlist("* divider\nV1 in 0 DC 10\nR1 in out 1k\nR2 out 0 1k\n.end\n").unwrap();
        let prep = Prepared::compile(&ckt).unwrap();
        let r = op(&prep, &Options::default()).unwrap();
        let out = prep.circuit.find_node("out").unwrap();
        assert!((prep.voltage(&r.x, out) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn parses_models_and_bjt() {
        let ckt = parse_netlist(
            ".model nmod NPN (IS=2e-16 BF=150 RB=100 CJE=50f TF=12p)\n\
             VCC vcc 0 5\nRB vcc b 470k\nRC vcc c 1k\nQ1 c b 0 nmod\n",
        )
        .unwrap();
        assert_eq!(ckt.bjt_models.len(), 1);
        let m = &ckt.bjt_models[0];
        assert_eq!(m.bf, 150.0);
        assert!((m.cje - 50e-15).abs() < 1e-20);
        assert!((m.tf - 12e-12).abs() < 1e-18);
        let prep = Prepared::compile(&ckt).unwrap();
        let r = op(&prep, &Options::default()).unwrap();
        let b = prep.circuit.find_node("b").unwrap();
        assert!(prep.voltage(&r.x, b) > 0.5);
    }

    #[test]
    fn parses_sin_and_ac_spec() {
        let ckt = parse_netlist("V1 a 0 DC 0.5 AC 1 90 SIN(0 1 1g 0 0 45)\nR1 a 0 50\n").unwrap();
        match &ckt.elements()[0].kind {
            ElementKind::Vsource { wave, ac, .. } => {
                assert_eq!(ac.mag, 1.0);
                assert_eq!(ac.phase_deg, 90.0);
                match wave {
                    SourceWave::Sin {
                        ampl,
                        freq,
                        phase_deg,
                        ..
                    } => {
                        assert_eq!(*ampl, 1.0);
                        assert_eq!(*freq, 1e9);
                        assert_eq!(*phase_deg, 45.0);
                    }
                    w => panic!("wrong wave {w:?}"),
                }
            }
            _ => panic!("not a vsource"),
        }
    }

    #[test]
    fn parses_pulse_pwl_with_continuation() {
        let ckt = parse_netlist(
            "V1 a 0 PULSE(0 1 1n 0.1n 0.1n 5n 10n)\n\
             V2 b 0 PWL(0 0,\n+ 1n 1, 2n 0)\nR1 a 0 1k\nR2 b 0 1k\n",
        )
        .unwrap();
        match &ckt.elements()[0].kind {
            ElementKind::Vsource { wave, .. } => {
                assert!(matches!(wave, SourceWave::Pulse { period, .. } if *period == 10e-9));
            }
            _ => panic!(),
        }
        match &ckt.elements()[1].kind {
            ElementKind::Vsource { wave, .. } => match wave {
                SourceWave::Pwl(pts) => assert_eq!(pts.len(), 3),
                w => panic!("wrong wave {w:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_controlled_sources() {
        let ckt = parse_netlist(
            "V1 a 0 1\nR1 a 0 1k\nE1 e 0 a 0 2\nG1 0 g a 0 1m\n\
             F1 0 f V1 2\nH1 h 0 V1 100\nRe e 0 1k\nRg g 0 1k\nRf f 0 1k\nRh h 0 1k\n",
        )
        .unwrap();
        assert_eq!(ckt.elements().len(), 10);
        let prep = Prepared::compile(&ckt).unwrap();
        let r = op(&prep, &Options::default()).unwrap();
        let e = prep.circuit.find_node("e").unwrap();
        assert!((prep.voltage(&r.x, e) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parses_mutual_inductor_card() {
        let ckt = parse_netlist(
            "V1 a 0 DC 0 AC 1\nRS a p 50\nL1 p 0 1u\nL2 s 0 1u\nRL s 0 50\nK1 L1 L2 0.8\n",
        )
        .unwrap();
        match &ckt.elements()[5].kind {
            ElementKind::MutualInd { l1, l2, k } => {
                assert_eq!(l1, "L1");
                assert_eq!(l2, "L2");
                assert_eq!(*k, 0.8);
            }
            _ => panic!("not a mutual inductor"),
        }
        // Compiles: the K card's references resolve.
        Prepared::compile(&ckt).unwrap();
        assert!(parse_netlist("K1 L1\n").is_err());
    }

    #[test]
    fn parses_flicker_noise_params() {
        let ckt = parse_netlist(
            ".model nm NPN (IS=1e-16 KF=1e-12 AF=1.2)\n\
             .model dm D (IS=1e-14 KF=2e-13)\n\
             Q1 c b 0 nm\nD1 a 0 dm\n",
        )
        .unwrap();
        assert_eq!(ckt.bjt_models[0].kf, 1e-12);
        assert_eq!(ckt.bjt_models[0].af, 1.2);
        assert_eq!(ckt.diode_models[0].kf, 2e-13);
        assert_eq!(ckt.diode_models[0].af, 1.0);
    }

    #[test]
    fn parses_ic_directive() {
        let ckt = parse_netlist("C1 x 0 1n\nR1 x 0 1k\n.ic v(x)=2.0\n").unwrap();
        assert_eq!(ckt.ics().len(), 1);
        assert_eq!(ckt.ics()[0].1, 2.0);
    }

    #[test]
    fn comments_and_inline_semicolons() {
        let ckt =
            parse_netlist("* full line comment\nR1 a 0 1k ; load\n* another\nV1 a 0 1\n").unwrap();
        assert_eq!(ckt.elements().len(), 2);
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_netlist("R1 a 0 1k\nR2 a 0 oops\n").unwrap_err();
        match err {
            SpiceError::Parse { line, .. } => assert_eq!(line, 2),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn unknown_model_is_error() {
        assert!(parse_netlist("Q1 c b 0 missing\n").is_err());
        assert!(parse_netlist("D1 a 0 nope\n").is_err());
    }

    #[test]
    fn four_terminal_bjt() {
        let ckt = parse_netlist(".model m NPN (IS=1e-16)\nQ1 c b e subs m 2.0\n").unwrap();
        match &ckt.elements()[0].kind {
            ElementKind::Bjt { s, area, .. } => {
                assert_eq!(ckt.node_name(*s), "subs");
                assert_eq!(*area, 2.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn include_resolves_relative_files() {
        let dir = std::env::temp_dir().join("ahfic-include-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("models.lib"),
            ".model incmod NPN (IS=3e-16 BF=77)\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("top.cir"),
            "* top deck\n.include models.lib\nVCC vcc 0 5\nRC vcc c 1k\nRB vcc b 400k\nQ1 c b 0 incmod\n",
        )
        .unwrap();
        let ckt = crate::parse::parse_netlist_file(dir.join("top.cir")).unwrap();
        assert!(ckt.find_bjt_model("incmod").is_some());
        assert_eq!(ckt.bjt_models[0].bf, 77.0);
        assert!(crate::parse::parse_netlist_file(dir.join("missing.cir")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_card_round_trip() {
        // A model emitted by BjtModel::to_card parses back equal (within
        // the 4-digit precision of the emitter).
        let mut m = BjtModel::named("rt");
        m.bf = 123.0;
        m.cje = 55e-15;
        m.rb = 81.5;
        m.tf = 14.2e-12;
        m.vaf = 42.0;
        let deck = format!("{}\n", m.to_card());
        let ckt = parse_netlist(&deck).unwrap();
        let back = &ckt.bjt_models[0];
        assert!((back.bf - m.bf).abs() / m.bf < 1e-3);
        assert!((back.cje - m.cje).abs() / m.cje < 1e-3);
        assert!((back.rb - m.rb).abs() / m.rb < 1e-3);
        assert!((back.tf - m.tf).abs() / m.tf < 1e-3);
        assert!((back.vaf - m.vaf).abs() / m.vaf < 1e-3);
    }
}
