//! Error types for circuit construction and simulation.

use crate::lint::LintReport;
use std::fmt;

/// One unknown's contribution to a failed convergence check: how far the
/// last Newton update moved it relative to its tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct WorstUnknown {
    /// Unknown name (`v(node)` or `i(element)`).
    pub name: String,
    /// Magnitude of the last Newton update for this unknown.
    pub delta: f64,
    /// Convergence tolerance the update was checked against.
    pub tol: f64,
}

impl WorstUnknown {
    /// How many times over tolerance the update was (`>1` = unconverged).
    pub fn excess(&self) -> f64 {
        if self.tol > 0.0 {
            self.delta / self.tol
        } else {
            f64::INFINITY
        }
    }
}

/// One rung of the operating-point continuation ladder, as attempted.
#[derive(Clone, Debug, PartialEq)]
pub struct RungReport {
    /// Rung name: `"newton"`, `"damped"`, `"gmin"`, `"source"`, `"ptran"`.
    pub rung: &'static str,
    /// Newton iterations spent inside this rung.
    pub iterations: usize,
    /// Continuation steps taken (gmin stages, source steps, ptran steps;
    /// 0 for single-solve rungs).
    pub steps: usize,
    /// Whether the rung produced a converged solution.
    pub converged: bool,
    /// Free-form detail (where a stepping rung stalled, what poisoned a
    /// stamp, …). Empty when there is nothing to add.
    pub detail: String,
}

impl RungReport {
    /// A failed rung with no extra detail.
    pub fn failed(rung: &'static str, iterations: usize, steps: usize) -> Self {
        RungReport {
            rung,
            iterations,
            steps,
            converged: false,
            detail: String::new(),
        }
    }
}

/// Structured post-mortem of a failed operating-point solve: which
/// ladder rungs ran, how much work each spent, and which unknowns were
/// still moving when the last rung gave up.
///
/// Attached to [`SpiceError::NoConvergence`] and rendered by its
/// `Display`; the same data is surfaced as `op.rungs_attempted` /
/// `op.*` counters through `ahfic-trace`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConvergenceReport {
    /// Every rung attempted, in ladder order.
    pub rungs: Vec<RungReport>,
    /// Worst-residual unknowns (largest tolerance excess first) at the
    /// final failed Newton iteration.
    pub worst: Vec<WorstUnknown>,
}

impl ConvergenceReport {
    /// Total Newton iterations across all rungs.
    pub fn total_iterations(&self) -> usize {
        self.rungs.iter().map(|r| r.iterations).sum()
    }
}

impl fmt::Display for ConvergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rungs:")?;
        for r in &self.rungs {
            write!(
                f,
                " {}({} it{}{})",
                r.rung,
                r.iterations,
                if r.steps > 0 {
                    format!(", {} steps", r.steps)
                } else {
                    String::new()
                },
                if r.converged { ", ok" } else { "" }
            )?;
        }
        if !self.worst.is_empty() {
            write!(f, "; worst unknowns:")?;
            for w in &self.worst {
                write!(f, " {} (|dx|={:.3e}, tol={:.3e})", w.name, w.delta, w.tol)?;
            }
        }
        Ok(())
    }
}

/// Error produced while building, parsing or simulating a circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum SpiceError {
    /// The MNA matrix was singular (typically a floating node or a loop of
    /// ideal voltage sources).
    Singular {
        /// Human-readable description of the offending unknown, when it can
        /// be attributed (`v(node)` or `i(element)`).
        unknown: String,
    },
    /// Newton iteration failed to converge in the allotted iterations even
    /// after the full continuation ladder.
    NoConvergence {
        /// Analysis that failed (`"op"`, `"tran"`, …).
        analysis: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
        /// Simulation time at failure for transient analyses.
        time: Option<f64>,
        /// Structured rung-by-rung diagnostics, when the continuation
        /// ladder produced them (`None` for inner solves and transient
        /// steps).
        report: Option<Box<ConvergenceReport>>,
    },
    /// A NaN or infinity appeared in the assembled MNA system — a
    /// poisoned stamp (zero-valued part, overflowing model evaluation,
    /// or injected fault) caught before it could corrupt the solve.
    NonFinite {
        /// Analysis in which the guard fired (`"op"`, `"tran"`, …).
        analysis: &'static str,
        /// What was poisoned (matrix, right-hand side, solution).
        context: String,
    },
    /// Netlist text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The pre-flight static verification pass found error-severity
    /// defects (floating nodes, voltage-source loops, current-source
    /// cutsets, …) under [`crate::lint::LintPolicy::Deny`].
    LintFailed(Box<LintReport>),
    /// The netlist is structurally invalid (unknown model, bad node, …).
    Netlist(String),
    /// An analysis was asked for something impossible (empty sweep, zero
    /// stop time, missing probe …).
    BadAnalysis(String),
    /// A measurement could not be extracted from simulation results.
    Measure(String),
    /// The analysis was cooperatively cancelled through a
    /// [`CancelToken`](crate::analysis::CancelToken), observed at a
    /// Newton-iteration or timestep boundary.
    Cancelled {
        /// Analysis that was cancelled (`"op"`, `"tran"`, …).
        analysis: &'static str,
        /// Simulation time at cancellation for transient analyses.
        time: Option<f64>,
    },
    /// A per-job resource [`Budget`](crate::analysis::Budget) limit was
    /// reached before the analysis finished.
    BudgetExhausted {
        /// Analysis that ran out of budget (`"op"`, `"tran"`, …).
        analysis: &'static str,
        /// Which limit fired (`"newton_iterations"`, `"steps"`,
        /// `"wall_clock_ms"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// Work actually spent when the limit fired.
        spent: u64,
    },
}

impl SpiceError {
    /// The [`ConvergenceReport`] attached to a [`SpiceError::NoConvergence`],
    /// if any.
    pub fn convergence_report(&self) -> Option<&ConvergenceReport> {
        match self {
            SpiceError::NoConvergence { report, .. } => report.as_deref(),
            _ => None,
        }
    }

    /// The [`LintReport`] attached to a [`SpiceError::LintFailed`], if
    /// any.
    pub fn lint_report(&self) -> Option<&LintReport> {
        match self {
            SpiceError::LintFailed(report) => Some(report),
            _ => None,
        }
    }

    /// Whether this error is a deliberate abort (cancellation or budget
    /// exhaustion) rather than a solver failure. Abort errors must
    /// propagate immediately: the continuation ladder must not try
    /// further rungs to "recover" from them.
    pub fn is_abort(&self) -> bool {
        matches!(
            self,
            SpiceError::Cancelled { .. } | SpiceError::BudgetExhausted { .. }
        )
    }
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Singular { unknown } => {
                write!(f, "singular MNA matrix near unknown {unknown}")
            }
            SpiceError::NoConvergence {
                analysis,
                iterations,
                time,
                report,
            } => {
                match time {
                    Some(t) => write!(
                        f,
                        "{analysis} analysis failed to converge after {iterations} iterations at t={t:.4e}s"
                    )?,
                    None => write!(
                        f,
                        "{analysis} analysis failed to converge after {iterations} iterations"
                    )?,
                }
                if let Some(r) = report {
                    write!(f, " ({r})")?;
                }
                Ok(())
            }
            SpiceError::NonFinite { analysis, context } => {
                write!(f, "non-finite value in {analysis} analysis: {context}")
            }
            SpiceError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            SpiceError::LintFailed(report) => {
                write!(
                    f,
                    "pre-flight verification failed ({} error(s)): {report}",
                    report.errors().count()
                )
            }
            SpiceError::Netlist(msg) => write!(f, "invalid netlist: {msg}"),
            SpiceError::BadAnalysis(msg) => write!(f, "invalid analysis request: {msg}"),
            SpiceError::Measure(msg) => write!(f, "measurement failed: {msg}"),
            SpiceError::Cancelled { analysis, time } => match time {
                Some(t) => write!(f, "{analysis} analysis cancelled at t={t:.4e}s"),
                None => write!(f, "{analysis} analysis cancelled"),
            },
            SpiceError::BudgetExhausted {
                analysis,
                resource,
                limit,
                spent,
            } => write!(
                f,
                "{analysis} analysis exhausted its {resource} budget ({spent} spent, limit {limit})"
            ),
        }
    }
}

impl std::error::Error for SpiceError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SpiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SpiceError::Singular {
            unknown: "v(out)".into(),
        };
        assert!(e.to_string().contains("v(out)"));
        let e = SpiceError::NoConvergence {
            analysis: "op",
            iterations: 100,
            time: None,
            report: None,
        };
        assert!(e.to_string().contains("op"));
        let e = SpiceError::NoConvergence {
            analysis: "tran",
            iterations: 7,
            time: Some(1e-9),
            report: None,
        };
        assert!(e.to_string().contains("t=1.0000e-9"));
        let e = SpiceError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = SpiceError::NonFinite {
            analysis: "op",
            context: "NaN in assembled matrix".into(),
        };
        assert!(e.to_string().contains("non-finite"));
        let e = SpiceError::Cancelled {
            analysis: "tran",
            time: Some(2.5e-9),
        };
        assert!(e.to_string().contains("cancelled at t=2.5000e-9"));
        assert!(e.is_abort());
        let e = SpiceError::Cancelled {
            analysis: "op",
            time: None,
        };
        assert!(e.to_string().contains("op analysis cancelled"));
        let e = SpiceError::BudgetExhausted {
            analysis: "op",
            resource: "newton_iterations",
            limit: 50,
            spent: 53,
        };
        assert!(e.to_string().contains("newton_iterations budget"));
        assert!(e.to_string().contains("limit 50"));
        assert!(e.is_abort());
        assert!(!SpiceError::Netlist("x".into()).is_abort());
    }

    #[test]
    fn convergence_report_renders_rungs_and_worst() {
        let report = ConvergenceReport {
            rungs: vec![
                RungReport {
                    rung: "newton",
                    iterations: 100,
                    steps: 0,
                    converged: false,
                    detail: String::new(),
                },
                RungReport {
                    rung: "source",
                    iterations: 250,
                    steps: 13,
                    converged: false,
                    detail: "stalled at scale 0.4".into(),
                },
            ],
            worst: vec![WorstUnknown {
                name: "v(out)".into(),
                delta: 1.5,
                tol: 1e-6,
            }],
        };
        assert_eq!(report.total_iterations(), 350);
        let e = SpiceError::NoConvergence {
            analysis: "op",
            iterations: 350,
            time: None,
            report: Some(Box::new(report.clone())),
        };
        let s = e.to_string();
        assert!(s.contains("newton(100 it)"), "{s}");
        assert!(s.contains("source(250 it, 13 steps)"), "{s}");
        assert!(s.contains("v(out)"), "{s}");
        assert!(e.convergence_report() == Some(&report));
        assert!((report.worst[0].excess() - 1.5e6).abs() / 1.5e6 < 1e-9);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SpiceError::Netlist("x".into()));
        assert!(e.to_string().contains("invalid netlist"));
    }
}
