//! Error types for circuit construction and simulation.

use std::fmt;

/// Error produced while building, parsing or simulating a circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum SpiceError {
    /// The MNA matrix was singular (typically a floating node or a loop of
    /// ideal voltage sources).
    Singular {
        /// Human-readable description of the offending unknown, when it can
        /// be attributed (`v(node)` or `i(element)`).
        unknown: String,
    },
    /// Newton iteration failed to converge in the allotted iterations even
    /// after gmin and source stepping.
    NoConvergence {
        /// Analysis that failed (`"op"`, `"tran"`, …).
        analysis: &'static str,
        /// Iterations spent before giving up.
        iterations: usize,
        /// Simulation time at failure for transient analyses.
        time: Option<f64>,
    },
    /// Netlist text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The netlist is structurally invalid (unknown model, bad node, …).
    Netlist(String),
    /// An analysis was asked for something impossible (empty sweep, zero
    /// stop time, missing probe …).
    BadAnalysis(String),
    /// A measurement could not be extracted from simulation results.
    Measure(String),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Singular { unknown } => {
                write!(f, "singular MNA matrix near unknown {unknown}")
            }
            SpiceError::NoConvergence {
                analysis,
                iterations,
                time,
            } => match time {
                Some(t) => write!(
                    f,
                    "{analysis} analysis failed to converge after {iterations} iterations at t={t:.4e}s"
                ),
                None => write!(
                    f,
                    "{analysis} analysis failed to converge after {iterations} iterations"
                ),
            },
            SpiceError::Parse { line, message } => {
                write!(f, "netlist parse error at line {line}: {message}")
            }
            SpiceError::Netlist(msg) => write!(f, "invalid netlist: {msg}"),
            SpiceError::BadAnalysis(msg) => write!(f, "invalid analysis request: {msg}"),
            SpiceError::Measure(msg) => write!(f, "measurement failed: {msg}"),
        }
    }
}

impl std::error::Error for SpiceError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SpiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SpiceError::Singular {
            unknown: "v(out)".into(),
        };
        assert!(e.to_string().contains("v(out)"));
        let e = SpiceError::NoConvergence {
            analysis: "op",
            iterations: 100,
            time: None,
        };
        assert!(e.to_string().contains("op"));
        let e = SpiceError::NoConvergence {
            analysis: "tran",
            iterations: 7,
            time: Some(1e-9),
        };
        assert!(e.to_string().contains("t=1.0000e-9"));
        let e = SpiceError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SpiceError::Netlist("x".into()));
        assert!(e.to_string().contains("invalid netlist"));
    }
}
