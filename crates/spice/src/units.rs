//! SPICE-style numeric literals (`1k`, `2.5MEG`, `10p`, `1e-9`).
//!
//! Suffixes are case-insensitive, as in Berkeley SPICE; trailing unit text
//! after a recognized suffix is ignored (`10pF` parses as `10e-12`).

/// Parses a SPICE numeric literal.
///
/// Recognized scale suffixes: `t` (1e12), `g` (1e9), `meg` (1e6), `k`
/// (1e3), `m` (1e-3), `mil` (25.4e-6), `u` (1e-6), `n` (1e-9), `p`
/// (1e-12), `f` (1e-15).
///
/// Returns `None` when the leading text is not a number.
///
/// # Example
///
/// ```
/// use ahfic_spice::units::parse_value;
/// assert_eq!(parse_value("2.2k"), Some(2200.0));
/// assert_eq!(parse_value("1MEG"), Some(1e6));
/// assert_eq!(parse_value("100pF"), Some(100e-12));
/// assert_eq!(parse_value("x"), None);
/// ```
pub fn parse_value(text: &str) -> Option<f64> {
    let t = text.trim();
    if t.is_empty() {
        return None;
    }
    // Split the numeric prefix from the alphabetic suffix.
    let mut split = t.len();
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let numeric = c.is_ascii_digit()
            || c == '.'
            || c == '+'
            || c == '-'
            || ((c == 'e' || c == 'E')
                && seen_digit
                && i + 1 < bytes.len()
                && (bytes[i + 1].is_ascii_digit() || bytes[i + 1] == b'+' || bytes[i + 1] == b'-'));
        if c.is_ascii_digit() {
            seen_digit = true;
        }
        if !numeric {
            split = i;
            break;
        }
        if c == 'e' || c == 'E' {
            // Consume the exponent sign so a following digit run stays in
            // the numeric part.
            i += 1;
        }
        i += 1;
    }
    if !seen_digit {
        return None;
    }
    let number: f64 = t[..split].parse().ok()?;
    let suffix = t[split..].to_ascii_lowercase();
    let scale = scale_of(&suffix);
    Some(number * scale)
}

fn scale_of(suffix: &str) -> f64 {
    // Longest-match first: "meg" and "mil" before "m".
    if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with("mil") {
        25.4e-6
    } else {
        match suffix.chars().next() {
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            _ => 1.0,
        }
    }
}

/// Formats a value in engineering notation with a SPICE suffix
/// (e.g. `2200.0` → `"2.2k"`). Used by netlist and model-card emitters.
pub fn format_value(v: f64) -> String {
    if v == 0.0 || !v.is_finite() {
        return format!("{v}");
    }
    let mag = v.abs();
    let (scale, suffix) = if mag >= 1e12 {
        (1e12, "t")
    } else if mag >= 1e9 {
        (1e9, "g")
    } else if mag >= 1e6 {
        (1e6, "meg")
    } else if mag >= 1e3 {
        (1e3, "k")
    } else if mag >= 1.0 {
        (1.0, "")
    } else if mag >= 1e-3 {
        (1e-3, "m")
    } else if mag >= 1e-6 {
        (1e-6, "u")
    } else if mag >= 1e-9 {
        (1e-9, "n")
    } else if mag >= 1e-12 {
        (1e-12, "p")
    } else {
        (1e-15, "f")
    };
    let scaled = v / scale;
    // Up to 4 significant-ish decimals, trimmed.
    let s = format!("{scaled:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    format!("{s}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("5"), Some(5.0));
        assert_eq!(parse_value("-3.25"), Some(-3.25));
        assert_eq!(parse_value("1e-9"), Some(1e-9));
        assert_eq!(parse_value("2.5E6"), Some(2.5e6));
    }

    #[test]
    fn suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("1K"), Some(1e3));
        assert_eq!(parse_value("1meg"), Some(1e6));
        assert_eq!(parse_value("1MeG"), Some(1e6));
        assert_eq!(parse_value("1m"), Some(1e-3));
        assert_eq!(parse_value("3u"), Some(3e-6));
        assert_eq!(parse_value("2n"), Some(2e-9));
        assert_eq!(parse_value("4p"), Some(4e-12));
        assert!((parse_value("5f").unwrap() - 5e-15).abs() < 1e-27);
        assert_eq!(parse_value("1g"), Some(1e9));
        assert_eq!(parse_value("1t"), Some(1e12));
        assert_eq!(parse_value("1mil"), Some(25.4e-6));
    }

    #[test]
    fn unit_text_after_suffix_ignored() {
        assert_eq!(parse_value("10pF"), Some(10e-12));
        assert_eq!(parse_value("2.2kOhm"), Some(2200.0));
        assert_eq!(parse_value("5Volts"), Some(5.0));
    }

    #[test]
    fn exponent_and_suffix_together() {
        // SPICE semantics: exponent binds to the number, suffix scales it.
        assert_eq!(parse_value("1e3k"), Some(1e6));
    }

    #[test]
    fn rejects_non_numbers() {
        assert_eq!(parse_value(""), None);
        assert_eq!(parse_value("abc"), None);
        assert_eq!(parse_value("k1"), None);
    }

    #[test]
    fn format_round_trips_through_parse() {
        for &v in &[
            0.0, 1.0, -2.5, 2200.0, 1e6, 4.7e-12, 3.3e-9, 1.5e10, 2.54e-5, 1e-15,
        ] {
            let s = format_value(v);
            let back = parse_value(&s).unwrap();
            let tol = 1e-3 * v.abs().max(1e-18);
            assert!((back - v).abs() <= tol, "{v} -> {s} -> {back}");
        }
    }
}
