//! Result containers for analyses.

use crate::error::{Result, SpiceError};
use ahfic_num::Complex;
use std::collections::HashMap;

/// A set of named real signals sampled on a shared axis (time or sweep
/// variable).
///
/// # Example
///
/// ```
/// use ahfic_spice::waveform::Waveform;
/// let mut w = Waveform::new("t");
/// w.push_signal("v(out)");
/// w.push_sample(0.0, &[1.0]);
/// w.push_sample(1e-9, &[2.0]);
/// assert_eq!(w.signal("v(out)").unwrap(), &[1.0, 2.0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Waveform {
    axis_name: String,
    axis: Vec<f64>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    data: Vec<Vec<f64>>,
}

impl Waveform {
    /// Creates an empty waveform with the given axis name.
    pub fn new(axis_name: &str) -> Self {
        Waveform {
            axis_name: axis_name.to_string(),
            ..Default::default()
        }
    }

    /// Registers a signal column (before pushing samples).
    pub fn push_signal(&mut self, name: &str) -> usize {
        let id = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_ascii_lowercase(), id);
        self.data.push(Vec::new());
        id
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered signal count.
    pub fn push_sample(&mut self, axis_value: f64, values: &[f64]) {
        assert_eq!(values.len(), self.data.len(), "sample width mismatch");
        self.axis.push(axis_value);
        for (col, &v) in self.data.iter_mut().zip(values.iter()) {
            col.push(v);
        }
    }

    /// Axis label.
    pub fn axis_name(&self) -> &str {
        &self.axis_name
    }

    /// The shared axis samples.
    pub fn axis(&self) -> &[f64] {
        &self.axis
    }

    /// Number of sample rows.
    pub fn len(&self) -> usize {
        self.axis.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.axis.is_empty()
    }

    /// Registered signal names.
    pub fn signal_names(&self) -> &[String] {
        &self.names
    }

    /// A signal by (case-insensitive) name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] when the signal does not exist.
    pub fn signal(&self, name: &str) -> Result<&[f64]> {
        self.index
            .get(&name.to_ascii_lowercase())
            .map(|&i| self.data[i].as_slice())
            .ok_or_else(|| SpiceError::Measure(format!("no signal named {name}")))
    }

    /// Last value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] when the signal is missing or empty.
    pub fn last(&self, name: &str) -> Result<f64> {
        self.signal(name)?
            .last()
            .copied()
            .ok_or_else(|| SpiceError::Measure(format!("signal {name} is empty")))
    }

    /// Serializes the waveform as CSV (axis column first) for plotting in
    /// external tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.axis_name);
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for k in 0..self.len() {
            out.push_str(&format!("{:e}", self.axis[k]));
            for col in &self.data {
                out.push_str(&format!(",{:e}", col[k]));
            }
            out.push('\n');
        }
        out
    }

    /// Resamples a signal onto a uniform grid of `n` points spanning the
    /// axis (linear interpolation) — the FFT front-end for transient data
    /// recorded with adaptive steps.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] if the signal is missing or has
    /// fewer than two samples.
    pub fn resample_uniform(&self, name: &str, n: usize) -> Result<(f64, Vec<f64>)> {
        let y = self.signal(name)?;
        if y.len() < 2 || n < 2 {
            return Err(SpiceError::Measure(format!(
                "signal {name} has too few samples to resample"
            )));
        }
        let t0 = self.axis[0];
        let t1 = self.axis[self.axis.len() - 1];
        let dt = (t1 - t0) / (n - 1) as f64;
        let mut out = Vec::with_capacity(n);
        let mut j = 0usize;
        for k in 0..n {
            let t = t0 + k as f64 * dt;
            while j + 1 < self.axis.len() - 1 && self.axis[j + 1] < t {
                j += 1;
            }
            let (ta, tb) = (self.axis[j], self.axis[j + 1]);
            let (ya, yb) = (y[j], y[j + 1]);
            let v = if tb > ta {
                ya + (yb - ya) * ((t - ta) / (tb - ta)).clamp(0.0, 1.0)
            } else {
                yb
            };
            out.push(v);
        }
        Ok((1.0 / dt, out))
    }
}

/// A set of named complex signals over a frequency axis (AC results).
#[derive(Clone, Debug, Default)]
pub struct AcWaveform {
    freqs: Vec<f64>,
    names: Vec<String>,
    index: HashMap<String, usize>,
    data: Vec<Vec<Complex>>,
}

impl AcWaveform {
    /// Creates an empty AC waveform.
    pub fn new() -> Self {
        AcWaveform::default()
    }

    /// Registers a signal column.
    pub fn push_signal(&mut self, name: &str) -> usize {
        let id = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_ascii_lowercase(), id);
        self.data.push(Vec::new());
        id
    }

    /// Appends one frequency point.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the registered signal count.
    pub fn push_sample(&mut self, freq: f64, values: &[Complex]) {
        assert_eq!(values.len(), self.data.len(), "sample width mismatch");
        self.freqs.push(freq);
        for (col, &v) in self.data.iter_mut().zip(values.iter()) {
            col.push(v);
        }
    }

    /// Frequency axis (Hz).
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// A complex signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::Measure`] when the signal does not exist.
    pub fn signal(&self, name: &str) -> Result<&[Complex]> {
        self.index
            .get(&name.to_ascii_lowercase())
            .map(|&i| self.data[i].as_slice())
            .ok_or_else(|| SpiceError::Measure(format!("no signal named {name}")))
    }

    /// Magnitude of a signal at every frequency.
    ///
    /// # Errors
    ///
    /// Propagates missing-signal errors from [`Self::signal`].
    pub fn magnitude(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.signal(name)?.iter().map(|z| z.abs()).collect())
    }

    /// Phase in degrees of a signal at every frequency.
    ///
    /// # Errors
    ///
    /// Propagates missing-signal errors from [`Self::signal`].
    pub fn phase_deg(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.signal(name)?.iter().map(|z| z.arg_deg()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_round_trip() {
        let mut w = Waveform::new("t");
        w.push_signal("a");
        w.push_signal("b");
        w.push_sample(0.0, &[1.0, -1.0]);
        w.push_sample(1.0, &[2.0, -2.0]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.axis(), &[0.0, 1.0]);
        assert_eq!(w.signal("A").unwrap(), &[1.0, 2.0]);
        assert_eq!(w.last("b").unwrap(), -2.0);
        assert!(w.signal("zz").is_err());
    }

    #[test]
    fn csv_round_trips_by_eye() {
        let mut w = Waveform::new("t");
        w.push_signal("v(out)");
        w.push_sample(0.0, &[1.5]);
        w.push_sample(1e-9, &[-2.0]);
        let csv = w.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t,v(out)"));
        assert_eq!(lines.next(), Some("0e0,1.5e0"));
        assert_eq!(lines.next(), Some("1e-9,-2e0"));
    }

    #[test]
    fn resample_linear_ramp_exactly() {
        let mut w = Waveform::new("t");
        w.push_signal("x");
        // Non-uniform sampling of x(t) = 2 t
        for &t in &[0.0, 0.1, 0.15, 0.4, 1.0] {
            w.push_sample(t, &[2.0 * t]);
        }
        let (fs, y) = w.resample_uniform("x", 11).unwrap();
        assert!((fs - 10.0).abs() < 1e-12);
        for (k, v) in y.iter().enumerate() {
            assert!((v - 0.2 * k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn ac_waveform_magnitude_phase() {
        let mut w = AcWaveform::new();
        w.push_signal("v(out)");
        w.push_sample(1e3, &[Complex::new(0.0, 2.0)]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.magnitude("v(out)").unwrap(), vec![2.0]);
        assert!((w.phase_deg("v(out)").unwrap()[0] - 90.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn sample_width_checked() {
        let mut w = Waveform::new("t");
        w.push_signal("a");
        w.push_sample(0.0, &[1.0, 2.0]);
    }
}
