//! Deprecated alias of [`crate::wave`].
//!
//! The result containers ([`Waveform`], [`AcWaveform`]) used to live
//! here, separate from the source-stimulus types in `wave`. The two
//! modules are now merged into [`crate::wave`]; this shim re-exports
//! everything so existing imports keep compiling.

#[deprecated(
    since = "0.1.0",
    note = "the `waveform` module merged into `wave`; import from `ahfic_spice::wave` instead"
)]
pub use crate::wave::{AcWaveform, SourceWave, Waveform};
