//! Small-signal AC analysis: linearize at the operating point, assemble a
//! complex admittance system per frequency, solve.

use crate::analysis::solver::{parallel_freq_map, singular_unknown, SolverWorkspace};
use crate::analysis::stamp::{MnaSink, Options};
use crate::circuit::{read_slot, ElementKind, Prepared, GROUND_SLOT};
use crate::devices::bjt::eval_bjt;
use crate::devices::diode::eval_diode;
use crate::devices::junction::depletion;
use crate::error::{Result, SpiceError};
use crate::wave::AcWaveform;
use ahfic_num::Complex;

struct CSys<'m, M> {
    mat: &'m mut M,
    rhs: &'m mut [Complex],
}

impl<M: MnaSink<Complex>> CSys<'_, M> {
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: Complex) {
        if r != GROUND_SLOT && c != GROUND_SLOT {
            self.mat.add(r, c, v);
        }
    }

    #[inline]
    fn rhs_add(&mut self, r: usize, v: Complex) {
        if r != GROUND_SLOT {
            self.rhs[r] += v;
        }
    }

    fn admittance(&mut self, p: usize, n: usize, y: Complex) {
        self.add(p, p, y);
        self.add(n, n, y);
        self.add(p, n, -y);
        self.add(n, p, -y);
    }

    fn current(&mut self, p: usize, n: usize, i: Complex) {
        self.rhs_add(p, -i);
        self.rhs_add(n, i);
    }

    fn transadmittance(&mut self, p: usize, n: usize, cp: usize, cn: usize, y: Complex) {
        self.add(p, cp, y);
        self.add(p, cn, -y);
        self.add(n, cp, -y);
        self.add(n, cn, y);
    }
}

/// Assembles the complex MNA system at angular frequency `omega`,
/// linearized around the operating point `x_op`.
pub fn assemble_ac<M: MnaSink<Complex>>(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    omega: f64,
    mat: &mut M,
    rhs: &mut [Complex],
) {
    mat.reset();
    rhs.fill(Complex::ZERO);
    let mut sys = CSys { mat, rhs };
    let jw = Complex::new(0.0, omega);
    let re = Complex::from_re;

    for (idx, el) in prep.circuit.elements().iter().enumerate() {
        match &el.kind {
            ElementKind::Resistor { p, n, r } => {
                sys.admittance(prep.slot_of(*p), prep.slot_of(*n), re(1.0 / r));
            }
            ElementKind::Capacitor { p, n, c } => {
                sys.admittance(prep.slot_of(*p), prep.slot_of(*n), jw * *c);
            }
            ElementKind::Inductor { p, n, l } => {
                let k = prep.branch_of[idx].0.expect("inductor branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, Complex::ONE);
                sys.add(n, k, -Complex::ONE);
                sys.add(k, p, Complex::ONE);
                sys.add(k, n, -Complex::ONE);
                sys.add(k, k, -(jw * *l));
            }
            ElementKind::Vsource { p, n, ac, .. } => {
                let k = prep.branch_of[idx].0.expect("vsource branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, Complex::ONE);
                sys.add(n, k, -Complex::ONE);
                sys.add(k, p, Complex::ONE);
                sys.add(k, n, -Complex::ONE);
                sys.rhs_add(k, Complex::from_polar(ac.mag, ac.phase_deg.to_radians()));
            }
            ElementKind::Isource { p, n, ac, .. } => {
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.current(p, n, Complex::from_polar(ac.mag, ac.phase_deg.to_radians()));
            }
            ElementKind::Vcvs { p, n, cp, cn, gain } => {
                let k = prep.branch_of[idx].0.expect("vcvs branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                let (cp, cn) = (prep.slot_of(*cp), prep.slot_of(*cn));
                sys.add(p, k, Complex::ONE);
                sys.add(n, k, -Complex::ONE);
                sys.add(k, p, Complex::ONE);
                sys.add(k, n, -Complex::ONE);
                sys.add(k, cp, re(-gain));
                sys.add(k, cn, re(*gain));
            }
            ElementKind::Vccs { p, n, cp, cn, gm } => {
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                let (cp, cn) = (prep.slot_of(*cp), prep.slot_of(*cn));
                sys.transadmittance(p, n, cp, cn, re(*gm));
            }
            ElementKind::Cccs {
                p,
                n,
                vsource,
                gain,
            } => {
                let j = prep.branch_slot(vsource).expect("validated");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, j, re(*gain));
                sys.add(n, j, re(-gain));
            }
            ElementKind::Ccvs { p, n, vsource, r } => {
                let k = prep.branch_of[idx].0.expect("ccvs branch");
                let j = prep.branch_slot(vsource).expect("validated");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, Complex::ONE);
                sys.add(n, k, -Complex::ONE);
                sys.add(k, p, Complex::ONE);
                sys.add(k, n, -Complex::ONE);
                sys.add(k, j, re(-r));
            }
            ElementKind::BehavioralV {
                p,
                n,
                controls,
                func,
            } => {
                // Small-signal: a multi-input VCVS with gains = partial
                // derivatives at the operating point.
                let k = prep.branch_of[idx].0.expect("behavioral branch");
                let (p, n) = (prep.slot_of(*p), prep.slot_of(*n));
                sys.add(p, k, Complex::ONE);
                sys.add(n, k, -Complex::ONE);
                sys.add(k, p, Complex::ONE);
                sys.add(k, n, -Complex::ONE);
                let slots: Vec<usize> = controls.iter().map(|&c| prep.slot_of(c)).collect();
                let vc: Vec<f64> = slots.iter().map(|&s| read_slot(x_op, s)).collect();
                for (i, &cs) in slots.iter().enumerate() {
                    let d = func.derivative(&vc, i);
                    sys.add(k, cs, re(-d));
                }
            }
            ElementKind::Diode { p, n, .. } => {
                let model = prep.scaled_diode[idx].as_ref().expect("scaled diode");
                let (pa, nc) = (prep.slot_of(*p), prep.slot_of(*n));
                let ai = prep.diode_internal[idx].unwrap_or(pa);
                if ai != pa {
                    sys.admittance(pa, ai, re(1.0 / model.rs));
                }
                let vd = read_slot(x_op, ai) - read_slot(x_op, nc);
                let op = eval_diode(model, vd, opts.vt, opts.gmin);
                sys.admittance(ai, nc, re(op.gd) + jw * op.cd);
            }
            ElementKind::Bjt { .. } => {
                let model = prep.scaled_bjt[idx].as_ref().expect("scaled bjt");
                let nodes = prep.bjt_nodes[idx].expect("bjt nodes");
                let sg = model.polarity.sign();
                let vbe = sg * (read_slot(x_op, nodes.bi) - read_slot(x_op, nodes.ei));
                let vbc = sg * (read_slot(x_op, nodes.bi) - read_slot(x_op, nodes.ci));
                let vcs = sg * (read_slot(x_op, nodes.s) - read_slot(x_op, nodes.ci));
                let op = eval_bjt(model, vbe, vbc, vcs, opts.vt, opts.gmin);

                if nodes.bi != nodes.b {
                    sys.admittance(nodes.b, nodes.bi, re(1.0 / op.rbb.max(1e-3)));
                }
                if nodes.ci != nodes.c {
                    sys.admittance(nodes.c, nodes.ci, re(1.0 / model.rc));
                }
                if nodes.ei != nodes.e {
                    sys.admittance(nodes.e, nodes.ei, re(1.0 / model.re));
                }

                // Junction conductances + diffusion/depletion capacitances.
                sys.admittance(nodes.bi, nodes.ei, re(op.gpi) + jw * op.cbe);
                sys.admittance(nodes.bi, nodes.ci, re(op.gmu) + jw * op.cbc);
                // Cross capacitance d(qbe)/d(vbc): current in b'-e' branch
                // driven by vbc.
                if op.cbe_bc != 0.0 {
                    sys.transadmittance(nodes.bi, nodes.ei, nodes.bi, nodes.ci, jw * op.cbe_bc);
                }
                // Transport transconductances.
                let gmf = re(op.gmf);
                let gmr = re(op.gmr);
                sys.add(nodes.ci, nodes.bi, gmf + gmr);
                sys.add(nodes.ci, nodes.ei, -gmf);
                sys.add(nodes.ci, nodes.ci, -gmr);
                sys.add(nodes.ei, nodes.bi, -(gmf + gmr));
                sys.add(nodes.ei, nodes.ei, gmf);
                sys.add(nodes.ei, nodes.ci, gmr);
                // External-base fraction of CJC.
                let vbx = sg * (read_slot(x_op, nodes.b) - read_slot(x_op, nodes.ci));
                let (_, cbx) = depletion(
                    vbx,
                    model.cjc * (1.0 - model.xcjc.clamp(0.0, 1.0)),
                    model.vjc,
                    model.mjc,
                    model.fc,
                );
                if cbx > 0.0 {
                    sys.admittance(nodes.b, nodes.ci, jw * cbx);
                }
                // Collector-substrate capacitance.
                if op.ccs > 0.0 {
                    sys.admittance(nodes.s, nodes.ci, jw * op.ccs);
                }
            }
        }
    }
}

/// Runs an AC sweep over the given frequencies (Hz), recording every
/// unknown as a complex signal (names follow `Prepared::unknown_names`).
///
/// The sweep is split in contiguous chunks across scoped worker threads;
/// each worker keeps a private [`SolverWorkspace`], so within a chunk the
/// matrix pattern and factor storage are reused from point to point.
///
/// # Errors
///
/// [`SpiceError::BadAnalysis`] for an empty frequency list,
/// [`SpiceError::Singular`] if the admittance matrix is singular.
pub fn ac_sweep(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    freqs: &[f64],
) -> Result<AcWaveform> {
    if freqs.is_empty() {
        return Err(SpiceError::BadAnalysis("empty AC frequency list".into()));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("ac");
    let n = prep.num_unknowns;
    let (sols, par) = parallel_freq_map(
        n,
        opts.solver,
        tr.enabled(),
        freqs,
        |ws: &mut SolverWorkspace<Complex>, f| {
            let omega = 2.0 * std::f64::consts::PI * f;
            loop {
                assemble_ac(prep, x_op, opts, omega, &mut ws.kernel, &mut ws.rhs);
                if !ws.finish_assembly() {
                    break;
                }
            }
            ws.factor().map_err(|e| singular_unknown(prep, e))?;
            Ok(ws.solve().to_vec())
        },
    )?;
    let mut out = AcWaveform::new();
    for name in &prep.unknown_names {
        out.push_signal(name);
    }
    for (&f, sol) in freqs.iter().zip(&sols) {
        out.push_sample(f, sol);
    }
    ahfic_trace::SweepStats {
        points: freqs.len() as u64,
        threads: par.threads as u64,
    }
    .emit(tr, "ac");
    par.solver.emit(tr, "ac");
    span.end();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::op;
    use crate::circuit::Circuit;
    use ahfic_num::interp::logspace;

    fn run_ac(ckt: Circuit, freqs: &[f64]) -> (Prepared, AcWaveform) {
        let prep = Prepared::compile(&ckt).unwrap();
        let opts = Options::default();
        let r = op(&prep, &opts).unwrap();
        let w = ac_sweep(&prep, &r.x, &opts, freqs).unwrap();
        (prep, w)
    }

    #[test]
    fn rc_lowpass_pole() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        c.set_ac("V1", 1.0, 0.0).unwrap();
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        let fp = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9); // ~159 kHz
        let (_, w) = run_ac(c, &[fp / 100.0, fp, 100.0 * fp]);
        let mag = w.magnitude("v(out)").unwrap();
        let ph = w.phase_deg("v(out)").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3);
        assert!((mag[1] - 1.0 / 2.0f64.sqrt()).abs() < 1e-3);
        assert!((ph[1] + 45.0).abs() < 0.1);
        assert!(mag[2] < 0.011);
    }

    #[test]
    fn lc_resonance() {
        // Series RLC driven by 1 V: current peaks at f0 with |i| = 1/R.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        c.set_ac("V1", 1.0, 0.0).unwrap();
        c.resistor("R1", a, b, 10.0);
        c.inductor("L1", b, d, 1e-6);
        c.capacitor("C1", d, Circuit::gnd(), 1e-9);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let (prep, w) = run_ac(c, &[f0]);
        let i = w.signal("i(V1)").unwrap()[0];
        assert!((i.abs() - 0.1).abs() < 1e-4, "i = {}", i.abs());
        let _ = prep;
    }

    #[test]
    fn bjt_amplifier_gain_and_rolloff() {
        // Common-emitter stage: gain ~ gm * RC at low f, rolls off.
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.75);
        c.set_ac("VB", 1.0, 0.0).unwrap();
        c.resistor("RC", vcc, col, 1e3);
        let mut m = crate::model::BjtModel::named("n1");
        m.bf = 100.0;
        m.cje = 1e-12;
        m.cjc = 0.5e-12;
        m.tf = 50e-12;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let r = op(&prep, &opts).unwrap();
        let q = crate::analysis::op::bjt_operating(&prep, &r.x, &opts, "Q1").unwrap();
        let freqs = logspace(1e3, 10e9, 40);
        let w = ac_sweep(&prep, &r.x, &opts, &freqs).unwrap();
        let mag = w.magnitude("v(c)").unwrap();
        // Low-frequency gain = gm*RC (inverting).
        let expect = q.gmf * 1e3;
        assert!(
            (mag[0] - expect).abs() / expect < 0.02,
            "gain {} vs {expect}",
            mag[0]
        );
        // High-frequency magnitude must fall well below the midband gain.
        assert!(mag[39] < 0.2 * mag[0]);
        // Low-frequency phase ~ 180 deg (inverting).
        let ph = w.phase_deg("v(c)").unwrap();
        assert!((ph[0].abs() - 180.0).abs() < 2.0);
    }

    #[test]
    fn empty_freqs_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let prep = Prepared::compile(&c).unwrap();
        assert!(ac_sweep(&prep, &[0.0], &Options::default(), &[]).is_err());
    }
}
