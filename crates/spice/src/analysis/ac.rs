//! Small-signal AC analysis: linearize at the operating point, assemble a
//! complex admittance system per frequency, solve.

use crate::analysis::solver::{parallel_freq_map, singular_unknown, SolverWorkspace};
use crate::analysis::stamp::{MnaSink, Options, PatternProbe};
use crate::circuit::Prepared;
use crate::devices::{AcCtx, AcStamper};
use crate::error::{Result, SpiceError};
use crate::wave::AcWaveform;
use ahfic_num::Complex;

/// Assembles the complex MNA system at angular frequency `omega`,
/// linearized around the operating point `x_op`.
///
/// Every device contributes through
/// [`crate::devices::Device::stamp_ac`]; the walk covers the linear
/// partition first and then the nonlinear one, mirroring the real-valued
/// assembly order so both declare identical sparsity patterns.
pub fn assemble_ac<M: MnaSink<Complex>>(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    omega: f64,
    mat: &mut M,
    rhs: &mut [Complex],
) {
    mat.reset();
    rhs.fill(Complex::ZERO);
    let cx = AcCtx {
        prep,
        opts,
        x_op,
        omega,
    };
    let mut s = AcStamper::new(mat, rhs);
    for d in prep.linear.iter().chain(&prep.nonlinear) {
        prep.devices[*d].stamp_ac(&cx, &mut s);
    }
}

/// Runs an AC sweep over the given frequencies (Hz), recording every
/// unknown as a complex signal (names follow `Prepared::unknown_names`).
///
/// The sweep is split in contiguous chunks across scoped worker threads;
/// each worker keeps a private [`SolverWorkspace`], so within a chunk the
/// matrix pattern and factor storage are reused from point to point.
///
/// # Errors
///
/// [`SpiceError::BadAnalysis`] for an empty frequency list,
/// [`SpiceError::Singular`] if the admittance matrix is singular.
#[deprecated(note = "use Session::ac — Session is the primary analysis entry point")]
pub fn ac_sweep(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    freqs: &[f64],
) -> Result<AcWaveform> {
    ac_sweep_impl(prep, x_op, opts, freqs)
}

/// Crate-internal canonical AC-sweep entry (what
/// [`Session::ac`](crate::analysis::Session::ac) and the deprecated
/// free [`ac_sweep`] both call).
pub(crate) fn ac_sweep_impl(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    freqs: &[f64],
) -> Result<AcWaveform> {
    if freqs.is_empty() {
        return Err(SpiceError::BadAnalysis("empty AC frequency list".into()));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("ac");
    let n = prep.num_unknowns;
    // Device AC stamps are pattern-stable across frequency (conditional
    // stamps key on model structure, not on omega), so one probe pass
    // feeds every worker's symbolic analysis up front.
    let pattern = {
        let mut probe = PatternProbe::default();
        let mut rhs = vec![Complex::ZERO; n];
        assemble_ac(prep, x_op, opts, 1.0, &mut probe, &mut rhs);
        probe.coords
    };
    let (sols, par) = parallel_freq_map(
        n,
        opts.solver,
        tr.enabled(),
        opts.threads,
        freqs,
        |ws: &mut SolverWorkspace<Complex>, f| {
            let omega = 2.0 * std::f64::consts::PI * f;
            if ws.needs_pattern() {
                ws.preset_pattern(&pattern);
            }
            loop {
                assemble_ac(prep, x_op, opts, omega, &mut ws.kernel, &mut ws.rhs);
                if !ws.finish_assembly() {
                    break;
                }
            }
            ws.factor().map_err(|e| singular_unknown(prep, e))?;
            Ok(ws.solve().map_err(|e| singular_unknown(prep, e))?.to_vec())
        },
    )?;
    let mut out = AcWaveform::new();
    for name in &prep.unknown_names {
        out.push_signal(name);
    }
    for (&f, sol) in freqs.iter().zip(&sols) {
        out.push_sample(f, sol);
    }
    ahfic_trace::SweepStats {
        points: freqs.len() as u64,
        threads: par.threads as u64,
    }
    .emit(tr, "ac");
    par.solver.emit(tr, "ac");
    span.end();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::op_eval as op;
    use crate::circuit::Circuit;
    use ahfic_num::interp::logspace;

    /// Test shim over the canonical entry (shadows the deprecated free
    /// function of the same name).
    fn ac_sweep(
        prep: &Prepared,
        x_op: &[f64],
        opts: &Options,
        freqs: &[f64],
    ) -> Result<AcWaveform> {
        ac_sweep_impl(prep, x_op, opts, freqs)
    }

    fn run_ac(ckt: Circuit, freqs: &[f64]) -> (Prepared, AcWaveform) {
        let prep = Prepared::compile(&ckt).unwrap();
        let opts = Options::default();
        let r = op(&prep, &opts).unwrap();
        let w = ac_sweep(&prep, &r.x, &opts, freqs).unwrap();
        (prep, w)
    }

    #[test]
    fn rc_lowpass_pole() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        c.set_ac("V1", 1.0, 0.0).unwrap();
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        let fp = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9); // ~159 kHz
        let (_, w) = run_ac(c, &[fp / 100.0, fp, 100.0 * fp]);
        let mag = w.magnitude("v(out)").unwrap();
        let ph = w.phase_deg("v(out)").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3);
        assert!((mag[1] - 1.0 / 2.0f64.sqrt()).abs() < 1e-3);
        assert!((ph[1] + 45.0).abs() < 0.1);
        assert!(mag[2] < 0.011);
    }

    #[test]
    fn lc_resonance() {
        // Series RLC driven by 1 V: current peaks at f0 with |i| = 1/R.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        c.set_ac("V1", 1.0, 0.0).unwrap();
        c.resistor("R1", a, b, 10.0);
        c.inductor("L1", b, d, 1e-6);
        c.capacitor("C1", d, Circuit::gnd(), 1e-9);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let (prep, w) = run_ac(c, &[f0]);
        let i = w.signal("i(V1)").unwrap()[0];
        assert!((i.abs() - 0.1).abs() < 1e-4, "i = {}", i.abs());
        let _ = prep;
    }

    #[test]
    fn bjt_amplifier_gain_and_rolloff() {
        // Common-emitter stage: gain ~ gm * RC at low f, rolls off.
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.75);
        c.set_ac("VB", 1.0, 0.0).unwrap();
        c.resistor("RC", vcc, col, 1e3);
        let mut m = crate::model::BjtModel::named("n1");
        m.bf = 100.0;
        m.cje = 1e-12;
        m.cjc = 0.5e-12;
        m.tf = 50e-12;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let r = op(&prep, &opts).unwrap();
        let q = crate::analysis::op::bjt_operating(&prep, &r.x, &opts, "Q1").unwrap();
        let freqs = logspace(1e3, 10e9, 40);
        let w = ac_sweep(&prep, &r.x, &opts, &freqs).unwrap();
        let mag = w.magnitude("v(c)").unwrap();
        // Low-frequency gain = gm*RC (inverting).
        let expect = q.gmf * 1e3;
        assert!(
            (mag[0] - expect).abs() / expect < 0.02,
            "gain {} vs {expect}",
            mag[0]
        );
        // High-frequency magnitude must fall well below the midband gain.
        assert!(mag[39] < 0.2 * mag[0]);
        // Low-frequency phase ~ 180 deg (inverting).
        let ph = w.phase_deg("v(c)").unwrap();
        assert!((ph[0].abs() - 180.0).abs() < 2.0);
    }

    #[test]
    fn empty_freqs_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let prep = Prepared::compile(&c).unwrap();
        assert!(ac_sweep(&prep, &[0.0], &Options::default(), &[]).is_err());
    }
}
