//! Batched variant engine: solve N parameter variants of one circuit in
//! lockstep over a shared sparsity pattern.
//!
//! Monte-Carlo yield studies, corner characterization, and DC sweeps all
//! solve the *same* matrix structure over and over with different values
//! (a retuned resistor, a scaled source). The sequential path pays the
//! full per-sample overhead each time: a fresh workspace, a pattern
//! probe, symbolic analysis, and a pivot search. The batched engine
//! amortizes all of it: one pattern compile, one symbolic factorization
//! on a reference lane, and [`CpuBatchedLu`] numeric refactor/solve
//! sweeps over structure-of-arrays value lanes (SIMD-friendly, see
//! `ahfic_num::simd`).
//!
//! Correctness over speed: any lane that steps outside the batched fast
//! path — a stamp-sequence mismatch, a degraded pivot, a non-finite
//! value, an injected fault, a residual that will not shrink, or plain
//! non-convergence — is transparently re-run through the ordinary
//! sequential solver, so batch results degrade to sequential results,
//! never to wrong answers. With a single lane the batched arithmetic
//! replays the sequential sparse path bit for bit.

use crate::analysis::ac::assemble_ac;
use crate::analysis::fault::FaultKind;
use crate::analysis::op::{op_from_eval as op_from, OpResult};
use crate::analysis::solver::{singular_unknown, SolverWorkspace};
use crate::analysis::stamp::{
    real_pattern, stamp_linear, stamp_nonlinear, MnaSink, Mode, NonlinMemory, Options, PatternProbe,
};
use crate::circuit::Prepared;
use crate::error::{Result, SpiceError};
use ahfic_num::simd;
use ahfic_num::sparse::{CscMatrix, TripletBuilder};
use ahfic_num::{BatchedLuSolver, Complex, CpuBatchedLu, LaneKernels, Scalar};

/// Relative residual threshold of the batched fast path: a lane whose
/// post-solve residual `||A x - b||_inf` exceeds this fraction of the
/// system magnitude is handed back to the sequential solver. Healthy
/// shared-pattern factorizations sit many orders of magnitude below.
const RESID_REL: f64 = 1e-7;

/// An [`MnaSink`] that routes one variant lane's stamps into the shared
/// structure-of-arrays value storage of a [`BatchedWorkspace`].
///
/// Stamps are replayed against the recorded `(row, col)` sequence; any
/// divergence (a variant with different structure) raises `mismatch`
/// instead of corrupting a neighbour lane.
struct LaneSink<'a, T: Scalar> {
    coords: &'a [(usize, usize)],
    slots: &'a [usize],
    /// Slot-major SoA values: slot `s` of lane `b` at `s * lanes + b`.
    vals: &'a mut [T],
    lanes: usize,
    lane: usize,
    cursor: usize,
    mismatch: bool,
}

impl<T: Scalar> MnaSink<T> for LaneSink<'_, T> {
    fn reset(&mut self) {
        for block in self.vals.chunks_exact_mut(self.lanes) {
            block[self.lane] = T::ZERO;
        }
        self.cursor = 0;
        self.mismatch = false;
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: T) {
        if self.cursor < self.slots.len() && self.coords[self.cursor] == (r, c) {
            self.vals[self.slots[self.cursor] * self.lanes + self.lane] += v;
            self.cursor += 1;
        } else {
            self.mismatch = true;
        }
    }
}

/// Shared-pattern SoA storage for N variant lanes of one MNA system:
/// the compiled sparsity pattern, slot-major matrix values, lane-major
/// right-hand sides and solutions, and the batched LU backend.
///
/// This is the data layout underneath [`BatchedOpEngine`] and
/// [`BatchedAcEngine`]; it is generic over the scalar so the real
/// (operating-point) and complex (AC) engines share one implementation.
pub struct BatchedWorkspace<T: Scalar + LaneKernels> {
    n: usize,
    lanes: usize,
    /// `(row, col)` of every stamp, in stamp order.
    coords: Vec<(usize, usize)>,
    /// CSC value slot of the k-th stamp.
    slots: Vec<usize>,
    /// Compiled pattern; its value array doubles as a one-lane gather
    /// scratch for reference factorization and residual checks.
    pattern: CscMatrix<T>,
    /// Matrix values, slot-major SoA: `vals[slot * lanes + lane]`.
    vals: Vec<T>,
    /// Right-hand sides, lane-major: `rhs[lane * n + row]`.
    rhs: Vec<T>,
    /// Row-major SoA solve buffer: `soa[row * lanes + lane]`.
    soa: Vec<T>,
    /// Solutions, lane-major: `sol[lane * n + row]`.
    sol: Vec<T>,
    /// Residual scratch (one lane).
    resid: Vec<T>,
    /// Per-lane refactor health, written by `refactor_lanes`.
    ok: Vec<bool>,
    blu: Option<CpuBatchedLu<T>>,
}

impl<T: Scalar + LaneKernels> BatchedWorkspace<T> {
    fn new(n: usize, lanes: usize, pattern_coords: &[(usize, usize)]) -> Self {
        let mut tb = TripletBuilder::new(n);
        for &(r, c) in pattern_coords {
            tb.add(r, c);
        }
        let (pattern, slots) = tb.compile::<T>();
        let nnz = pattern.values().len();
        BatchedWorkspace {
            n,
            lanes,
            coords: pattern_coords.to_vec(),
            slots,
            pattern,
            vals: vec![T::ZERO; nnz * lanes],
            rhs: vec![T::ZERO; n * lanes],
            soa: vec![T::ZERO; n * lanes],
            sol: vec![T::ZERO; n * lanes],
            resid: vec![T::ZERO; n],
            ok: vec![false; lanes],
            blu: None,
        }
    }

    /// One lane's right-hand side.
    fn rhs_lane(&self, lane: usize) -> &[T] {
        &self.rhs[lane * self.n..(lane + 1) * self.n]
    }

    /// One lane's solution from the last `solve_lanes`.
    fn sol_lane(&self, lane: usize) -> &[T] {
        &self.sol[lane * self.n..(lane + 1) * self.n]
    }

    /// Copies one lane's matrix values into the pattern's value array.
    fn gather(&mut self, lane: usize) {
        let lanes = self.lanes;
        for (s, pv) in self.pattern.values_mut().iter_mut().enumerate() {
            *pv = self.vals[s * lanes + lane];
        }
    }

    /// Whether every matrix value and right-hand-side entry of one lane
    /// is finite.
    fn lane_finite(&self, lane: usize) -> bool {
        self.vals[lane..]
            .iter()
            .step_by(self.lanes)
            .all(|v| v.modulus().is_finite())
            && self.rhs_lane(lane).iter().all(|v| v.modulus().is_finite())
    }

    /// Whether one lane's last solution is finite.
    fn sol_finite(&self, lane: usize) -> bool {
        self.sol_lane(lane).iter().all(|v| v.modulus().is_finite())
    }

    /// Full reference factorization of `lane`, establishing the pivot
    /// order and symbolic pattern every other lane replays. The lane's
    /// factor values are bit-identical to a sequential
    /// `SparseLu::factor` of the same matrix.
    fn factor_reference(&mut self, lane: usize) -> bool {
        self.gather(lane);
        match CpuBatchedLu::new(&self.pattern, self.lanes, lane) {
            Ok(blu) => {
                self.blu = Some(blu);
                true
            }
            Err(_) => false,
        }
    }

    /// Numeric refactorization of every lane; `self.ok` reports per-lane
    /// health afterwards. `skip` preserves the freshly seeded reference
    /// lane's factor values (and its health) untouched.
    fn refactor_lanes(&mut self, skip: Option<usize>) {
        let BatchedWorkspace {
            pattern,
            vals,
            ok,
            blu,
            ..
        } = self;
        if let Some(blu) = blu.as_mut() {
            ok.fill(true);
            blu.refactor(pattern, vals, ok, skip);
            if let Some(r) = skip {
                // The skipped lane carries a successful full
                // factorization; a spurious replay-health flag from the
                // shared sweep must not demote it.
                ok[r] = true;
            }
        } else {
            ok.fill(false);
        }
    }

    /// Solves every lane against the current right-hand sides; results
    /// land in `sol`. Degraded lanes produce garbage in their own lane
    /// only.
    fn solve_lanes(&mut self) {
        transpose_to_soa(&self.rhs, &mut self.soa, self.n, self.lanes);
        if let Some(blu) = self.blu.as_mut() {
            blu.solve_in_place(&mut self.soa);
        }
        transpose_from_soa(&self.soa, &mut self.sol, self.n, self.lanes);
    }

    /// Post-solve health check: the lane's residual `||A x - b||_inf`
    /// must be a tiny fraction of the system magnitude. Catches
    /// accuracy loss from replaying the reference lane's pivot order on
    /// a variant it fits poorly. `NaN` fails the check.
    fn residual_ok(&mut self, lane: usize) -> bool {
        self.gather(lane);
        let n = self.n;
        let xl = &self.sol[lane * n..(lane + 1) * n];
        self.pattern.mul_vec_into(xl, &mut self.resid);
        let rl = &self.rhs[lane * n..(lane + 1) * n];
        let mut err = 0.0f64;
        let mut scale = 0.0f64;
        for (a, b) in self.resid.iter().zip(rl) {
            let e = (*a - *b).modulus();
            if e > err {
                err = e;
            }
            scale = scale.max(a.modulus()).max(b.modulus());
        }
        // `err <= bound` (not `err > bound`) so NaN falls out.
        err <= RESID_REL * scale
    }
}

fn transpose_to_soa<T: Scalar>(lane_major: &[T], soa: &mut [T], n: usize, lanes: usize) {
    for lane in 0..lanes {
        for (k, v) in lane_major[lane * n..(lane + 1) * n].iter().enumerate() {
            soa[k * lanes + lane] = *v;
        }
    }
}

fn transpose_from_soa<T: Scalar>(soa: &[T], lane_major: &mut [T], n: usize, lanes: usize) {
    for lane in 0..lanes {
        for (k, v) in lane_major[lane * n..(lane + 1) * n].iter_mut().enumerate() {
            *v = soa[k * lanes + lane];
        }
    }
}

/// How one variant lane of an in-flight batch is disposed.
enum LaneState {
    /// Still iterating in the batch.
    Active,
    /// Converged in the batch at the recorded iteration.
    Done(OpResult),
    /// Terminal error that no solver retry can fix (the tune closure
    /// itself failed — e.g. a lint-rejected defect deck).
    Failed(SpiceError),
    /// Left the batched fast path; re-run sequentially afterwards.
    Fallback,
}

/// Newton-solve state carried next to a real-valued
/// [`BatchedWorkspace`]: lane iterates and the linear-baseline
/// checkpoint replayed by `memcpy` each iteration.
struct OpState {
    /// Lane-major iterates.
    x: Vec<f64>,
    /// Checkpointed matrix values after the linear partition (plus
    /// convergence diagonals) of every lane was stamped.
    base_vals: Vec<f64>,
    base_rhs: Vec<f64>,
    /// Stamp cursor at the checkpoint; the nonlinear restamp of every
    /// lane resumes here.
    base_cursor: usize,
}

/// Batched DC operating-point engine: runs plain Newton on up to
/// `lanes` parameter variants in lockstep over one shared pattern and
/// one [`CpuBatchedLu`].
///
/// Each variant is installed by a caller-provided tune closure (e.g.
/// [`crate::circuit::Circuit::set_resistance`]) invoked with the sample
/// index before that lane is stamped — every iteration, so tuned
/// parameters may feed nonlinear stamps too. Lanes converge and freeze
/// individually; lanes that leave the fast path (see the module docs)
/// are re-solved with the sequential `op_from` ladder, so results
/// match the sequential path's semantics sample for sample.
///
/// The engine is tied to one [`Prepared`] circuit structure; reusing it
/// after the unknown count changes re-probes the pattern automatically.
pub struct BatchedOpEngine {
    lanes: usize,
    persist_factor: bool,
    ws: Option<BatchedWorkspace<f64>>,
    op: Option<OpState>,
}

impl BatchedOpEngine {
    /// Engine with independent samples: every chunk refactors from a
    /// fresh reference factorization, matching the sequential path's
    /// fresh-workspace-per-sample semantics (Monte-Carlo, corners).
    pub fn new(lanes: usize) -> Self {
        BatchedOpEngine {
            lanes: lanes.max(1),
            persist_factor: false,
            ws: None,
            op: None,
        }
    }

    /// Engine for chained sweeps: the reference factorization persists
    /// across chunks (and across [`BatchedOpEngine::run_from`] calls),
    /// matching a sequential sweep's shared-workspace refactor chain.
    pub fn new_persistent(lanes: usize) -> Self {
        BatchedOpEngine {
            persist_factor: true,
            ..BatchedOpEngine::new(lanes)
        }
    }

    /// Configured lane width.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Solves operating points for samples `0..count`, all started from
    /// zero. Equivalent to, and interchangeable with, calling
    /// `tune(prep, i)` then [`crate::analysis::op()`] per sample.
    pub fn run<F>(
        &mut self,
        prep: &mut Prepared,
        opts: &Options,
        count: usize,
        tune: F,
    ) -> Vec<Result<OpResult>>
    where
        F: FnMut(&mut Prepared, usize) -> Result<()>,
    {
        self.run_from(prep, opts, count, None, tune)
    }

    /// [`BatchedOpEngine::run`] warm-started from `x0` (used by sweeps:
    /// pass the previous chunk's last solution).
    pub fn run_from<F>(
        &mut self,
        prep: &mut Prepared,
        opts: &Options,
        count: usize,
        x0: Option<&[f64]>,
        mut tune: F,
    ) -> Vec<Result<OpResult>>
    where
        F: FnMut(&mut Prepared, usize) -> Result<()>,
    {
        if self.ws.as_ref().is_some_and(|w| w.n != prep.num_unknowns) {
            self.ws = None;
            self.op = None;
        }
        let tr = opts.trace.tracer();
        let span = tr.span("op_batch");
        let mut fallbacks = 0usize;
        let mut out = Vec::with_capacity(count);
        let mut start = 0;
        while start < count {
            let b = self.lanes.min(count - start);
            self.run_chunk(
                prep,
                opts,
                start,
                b,
                x0,
                &mut tune,
                &mut out,
                &mut fallbacks,
            );
            start += b;
        }
        if tr.enabled() {
            tr.counter("op_batch.samples", count as f64);
            tr.counter("op_batch.fallbacks", fallbacks as f64);
        }
        span.end();
        out
    }

    /// One lockstep Newton run over lanes `start..start + b`.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk<F>(
        &mut self,
        prep: &mut Prepared,
        opts: &Options,
        start: usize,
        b: usize,
        x0: Option<&[f64]>,
        tune: &mut F,
        out: &mut Vec<Result<OpResult>>,
        fallbacks: &mut usize,
    ) where
        F: FnMut(&mut Prepared, usize) -> Result<()>,
    {
        let mode = Mode::Dc { source_scale: 1.0 };
        let lanes = self.lanes;
        if !self.persist_factor {
            // Independent samples: each chunk re-establishes its own
            // reference factorization, like a fresh sequential
            // workspace per sample.
            if let Some(ws) = self.ws.as_mut() {
                ws.blu = None;
            }
        }
        let injector = opts.faults.get();
        let mut solve_idx: Vec<Option<u64>> = vec![None; b];
        let mut mems: Vec<NonlinMemory> = (0..b).map(|_| NonlinMemory::new(prep)).collect();
        let mut states: Vec<LaneState> = Vec::with_capacity(b);

        // Tune and stamp each lane's linear baseline while its variant
        // parameters are installed in `prep`.
        let mut base_cursor: Option<usize> = None;
        for (lane, lane_solve_idx) in solve_idx.iter_mut().enumerate() {
            if let Err(e) = tune(prep, start + lane) {
                states.push(LaneState::Failed(e));
                continue;
            }
            if self.ws.is_none() {
                let zeros = vec![0.0; prep.num_unknowns];
                let pat = real_pattern(prep, &zeros, opts, &mode, prep.num_voltage_unknowns);
                self.ws = Some(BatchedWorkspace::new(prep.num_unknowns, lanes, &pat));
                self.op = Some(OpState {
                    x: vec![0.0; prep.num_unknowns * lanes],
                    base_vals: Vec::new(),
                    base_rhs: Vec::new(),
                    base_cursor: 0,
                });
            }
            let (Some(ws), Some(ops)) = (self.ws.as_mut(), self.op.as_mut()) else {
                unreachable!("workspace created above");
            };
            let n = ws.n;
            let xs = &mut ops.x[lane * n..(lane + 1) * n];
            match x0 {
                Some(v) => xs.copy_from_slice(v),
                None => xs.fill(0.0),
            }
            let mut sink = LaneSink {
                coords: &ws.coords,
                slots: &ws.slots,
                vals: &mut ws.vals,
                lanes,
                lane,
                cursor: 0,
                mismatch: false,
            };
            sink.reset();
            let rl = &mut ws.rhs[lane * n..(lane + 1) * n];
            rl.fill(0.0);
            stamp_linear(prep, xs, opts, &mode, &mut sink, rl);
            // Convergence-aid diagonals, stamped even at 0.0 so the
            // cursor sequence matches the sequential plain-Newton rung.
            for k in 0..prep.num_voltage_unknowns {
                sink.add(k, k, 0.0);
            }
            let same_shape = !sink.mismatch && base_cursor.is_none_or(|c| c == sink.cursor);
            if !same_shape {
                states.push(LaneState::Fallback);
                continue;
            }
            base_cursor = Some(sink.cursor);
            *lane_solve_idx = injector.map(|f| f.begin_solve());
            states.push(LaneState::Active);
        }
        let Some(ws) = self.ws.as_mut() else {
            // No lane tuned successfully and nothing was ever probed:
            // every state is Failed (or Fallback, resolved below).
            for (lane, state) in states.into_iter().enumerate() {
                out.push(resolve_lane_seq(
                    state, prep, opts, start, lane, x0, tune, fallbacks,
                ));
            }
            return;
        };
        let Some(ops) = self.op.as_mut() else {
            unreachable!("op state exists whenever the workspace does");
        };
        let n = ws.n;
        let nv = prep.num_voltage_unknowns;
        ops.base_vals.clear();
        ops.base_vals.extend_from_slice(&ws.vals);
        ops.base_rhs.clear();
        ops.base_rhs.extend_from_slice(&ws.rhs);
        ops.base_cursor = base_cursor.unwrap_or(0);

        let mut iter = 0;
        while iter < opts.max_newton && states.iter().any(|s| matches!(s, LaneState::Active)) {
            iter += 1;
            // Linear-baseline replay: one memcpy instead of restamping
            // every lane's linear partition.
            ws.vals.copy_from_slice(&ops.base_vals);
            ws.rhs.copy_from_slice(&ops.base_rhs);
            let total_stamps = ws.coords.len();
            for (lane, state) in states.iter_mut().enumerate() {
                if !matches!(state, LaneState::Active) {
                    continue;
                }
                if let Err(e) = tune(prep, start + lane) {
                    *state = LaneState::Failed(e);
                    continue;
                }
                let mut sink = LaneSink {
                    coords: &ws.coords,
                    slots: &ws.slots,
                    vals: &mut ws.vals,
                    lanes,
                    lane,
                    cursor: ops.base_cursor,
                    mismatch: false,
                };
                let xs = &ops.x[lane * n..(lane + 1) * n];
                let rl = &mut ws.rhs[lane * n..(lane + 1) * n];
                stamp_nonlinear(prep, xs, opts, &mode, &mut mems[lane], &mut sink, rl);
                if sink.mismatch || sink.cursor != total_stamps {
                    *state = LaneState::Fallback;
                    continue;
                }
                if let (Some(f), Some(idx)) = (injector, solve_idx[lane]) {
                    match f.poll(idx, iter) {
                        Some(FaultKind::NanStamp) => {
                            // Poison this lane's first value; the finite
                            // guard below demotes it, like the
                            // sequential NaN guard raises NonFinite.
                            ws.vals[lane] = f64::NAN;
                        }
                        Some(FaultKind::SingularMatrix) => {
                            for block in ws.vals.chunks_exact_mut(lanes) {
                                block[lane] = 0.0;
                            }
                        }
                        Some(FaultKind::NoConvergence) => {
                            *state = LaneState::Fallback;
                            continue;
                        }
                        // Serve-level faults keep their sequential
                        // semantics: the panic unwinds to the supervised
                        // worker boundary, the stall burns wall clock
                        // against the deadline budget.
                        Some(FaultKind::Panic) => {
                            panic!("injected fault: device model panic at iteration {iter}");
                        }
                        Some(FaultKind::Stall { millis }) => {
                            std::thread::sleep(std::time::Duration::from_millis(millis));
                        }
                        None => {}
                    }
                }
                if !ws.lane_finite(lane) {
                    *state = LaneState::Fallback;
                }
            }

            // Reference factorization (first healthy iteration of the
            // chunk), then lane-wise numeric refactor.
            let mut ref_lane = None;
            if ws.blu.is_none() {
                while let Some(r) = states.iter().position(|s| matches!(s, LaneState::Active)) {
                    if ws.factor_reference(r) {
                        ref_lane = Some(r);
                        break;
                    }
                    // Singular reference candidate: the sequential
                    // ladder (gmin retry, lint post-mortem) owns it.
                    states[r] = LaneState::Fallback;
                }
                if ref_lane.is_none() {
                    break;
                }
            }
            ws.refactor_lanes(ref_lane);
            for (lane, state) in states.iter_mut().enumerate() {
                if matches!(state, LaneState::Active) && !ws.ok[lane] {
                    *state = LaneState::Fallback;
                }
            }
            if !states.iter().any(|s| matches!(s, LaneState::Active)) {
                break;
            }

            ws.solve_lanes();

            for (lane, state) in states.iter_mut().enumerate() {
                if !matches!(state, LaneState::Active) {
                    continue;
                }
                if !ws.sol_finite(lane) || !ws.residual_ok(lane) {
                    *state = LaneState::Fallback;
                    continue;
                }
                let xs = &ops.x[lane * n..(lane + 1) * n];
                let xn = ws.sol_lane(lane);
                let mv = simd::conv_metric(&xn[..nv], &xs[..nv], opts.reltol, opts.vntol);
                let mi = simd::conv_metric(&xn[nv..], &xs[nv..], opts.reltol, opts.abstol);
                let metric = if mv > mi { mv } else { mi };
                if metric <= 1.0 && mems[lane].limited == 0 {
                    *state = LaneState::Done(OpResult {
                        x: xn.to_vec(),
                        iterations: iter,
                    });
                } else if iter == opts.max_newton {
                    // Plain Newton is out of budget; the sequential
                    // ladder's stronger rungs take over.
                    *state = LaneState::Fallback;
                } else {
                    ops.x[lane * n..(lane + 1) * n]
                        .copy_from_slice(&ws.sol[lane * n..(lane + 1) * n]);
                }
            }
        }

        for (lane, state) in states.into_iter().enumerate() {
            out.push(resolve_lane_seq(
                state, prep, opts, start, lane, x0, tune, fallbacks,
            ));
        }
    }
}

/// Resolves one lane's final disposition, re-running fallback lanes
/// through the sequential ladder.
#[allow(clippy::too_many_arguments)]
fn resolve_lane_seq<F>(
    state: LaneState,
    prep: &mut Prepared,
    opts: &Options,
    start: usize,
    lane: usize,
    x0: Option<&[f64]>,
    tune: &mut F,
    fallbacks: &mut usize,
) -> Result<OpResult>
where
    F: FnMut(&mut Prepared, usize) -> Result<()>,
{
    match state {
        LaneState::Done(r) => Ok(r),
        LaneState::Failed(e) => Err(e),
        LaneState::Active | LaneState::Fallback => {
            *fallbacks += 1;
            tune(prep, start + lane)?;
            op_from(prep, opts, x0)
        }
    }
}

/// Batched single-frequency AC engine: assembles and solves the complex
/// small-signal system of up to `lanes` variants in lockstep.
///
/// Mirrors [`crate::analysis::ac_sweep`] at one frequency per variant
/// batch — the yield study's post-operating-point characterization.
/// Lanes that leave the fast path are re-solved with a fresh sequential
/// [`SolverWorkspace`], exactly as `ac_sweep` would.
pub struct BatchedAcEngine {
    lanes: usize,
    ws: Option<BatchedWorkspace<Complex>>,
}

impl BatchedAcEngine {
    /// Engine with `lanes` variant lanes.
    pub fn new(lanes: usize) -> Self {
        BatchedAcEngine {
            lanes: lanes.max(1),
            ws: None,
        }
    }

    /// Solves the AC system at `freq` (Hz) for every `(sample_index,
    /// operating_point)` item, returning full solution vectors in item
    /// order (index into them with
    /// [`crate::circuit::Prepared::slot_of`]).
    pub fn run<F>(
        &mut self,
        prep: &mut Prepared,
        opts: &Options,
        freq: f64,
        items: &[(usize, &[f64])],
        mut tune: F,
    ) -> Vec<Result<Vec<Complex>>>
    where
        F: FnMut(&mut Prepared, usize) -> Result<()>,
    {
        if self.ws.as_ref().is_some_and(|w| w.n != prep.num_unknowns) {
            self.ws = None;
        }
        let omega = 2.0 * std::f64::consts::PI * freq;
        let lanes = self.lanes;
        let mut out: Vec<Result<Vec<Complex>>> = Vec::with_capacity(items.len());
        for chunk in items.chunks(lanes) {
            self.run_ac_chunk(prep, opts, omega, chunk, &mut tune, &mut out);
        }
        out
    }

    fn run_ac_chunk<F>(
        &mut self,
        prep: &mut Prepared,
        opts: &Options,
        omega: f64,
        chunk: &[(usize, &[f64])],
        tune: &mut F,
        out: &mut Vec<Result<Vec<Complex>>>,
    ) where
        F: FnMut(&mut Prepared, usize) -> Result<()>,
    {
        let lanes = self.lanes;
        // Fresh reference factorization per chunk: sequential AC solves
        // each sample in its own workspace.
        if let Some(ws) = self.ws.as_mut() {
            ws.blu = None;
        }
        // Per-lane disposition: Ok(solution) once solved, Err for
        // terminal failures; None while pending or for fallback lanes.
        let mut done: Vec<Option<Result<Vec<Complex>>>> = Vec::with_capacity(chunk.len());
        let mut active = vec![false; chunk.len()];
        for (lane, &(idx, x_op)) in chunk.iter().enumerate() {
            if let Err(e) = tune(prep, idx) {
                done.push(Some(Err(e)));
                continue;
            }
            if self.ws.is_none() {
                let mut probe = PatternProbe::default();
                let mut rhs = vec![Complex::ZERO; prep.num_unknowns];
                assemble_ac(prep, x_op, opts, 1.0, &mut probe, &mut rhs);
                self.ws = Some(BatchedWorkspace::new(
                    prep.num_unknowns,
                    lanes,
                    &probe.coords,
                ));
            }
            let Some(ws) = self.ws.as_mut() else {
                unreachable!("workspace created above");
            };
            let n = ws.n;
            let total = ws.coords.len();
            let mut sink = LaneSink {
                coords: &ws.coords,
                slots: &ws.slots,
                vals: &mut ws.vals,
                lanes,
                lane,
                cursor: 0,
                mismatch: false,
            };
            let rl = &mut ws.rhs[lane * n..(lane + 1) * n];
            assemble_ac(prep, x_op, opts, omega, &mut sink, rl);
            if sink.mismatch || sink.cursor != total {
                done.push(None); // structure mismatch: fallback
                continue;
            }
            active[lane] = true;
            done.push(None);
        }

        if let Some(ws) = self.ws.as_mut() {
            let mut ref_lane = None;
            while let Some(r) = active.iter().position(|&a| a) {
                if ws.factor_reference(r) {
                    ref_lane = Some(r);
                    break;
                }
                active[r] = false; // singular reference: fallback
            }
            if ref_lane.is_some() {
                ws.refactor_lanes(ref_lane);
                for (lane, a) in active.iter_mut().enumerate() {
                    if *a && !ws.ok[lane] {
                        *a = false;
                    }
                }
                ws.solve_lanes();
                for (lane, slot) in done.iter_mut().enumerate() {
                    if !active[lane] || slot.is_some() {
                        continue;
                    }
                    if ws.sol_finite(lane) && ws.residual_ok(lane) {
                        *slot = Some(Ok(ws.sol_lane(lane).to_vec()));
                    }
                }
            }
        }

        // Fallback lanes: the plain sequential AC solve, one fresh
        // workspace each, mirroring `ac_sweep`'s inner loop.
        for (lane, slot) in done.into_iter().enumerate() {
            let (idx, x_op) = chunk[lane];
            out.push(match slot {
                Some(r) => r,
                None => match tune(prep, idx) {
                    Err(e) => Err(e),
                    Ok(()) => sequential_ac_solve(prep, opts, omega, x_op),
                },
            });
        }
    }
}

/// One sequential complex solve at `omega`, identical to the body of
/// `ac_sweep`'s per-frequency worker.
fn sequential_ac_solve(
    prep: &Prepared,
    opts: &Options,
    omega: f64,
    x_op: &[f64],
) -> Result<Vec<Complex>> {
    let mut ws = SolverWorkspace::<Complex>::new(prep.num_unknowns, opts.solver);
    loop {
        assemble_ac(prep, x_op, opts, omega, &mut ws.kernel, &mut ws.rhs);
        if !ws.finish_assembly() {
            break;
        }
    }
    ws.factor().map_err(|e| singular_unknown(prep, e))?;
    Ok(ws.solve().map_err(|e| singular_unknown(prep, e))?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::op_eval as op;
    use crate::analysis::solver::SolverChoice;
    use crate::analysis::stamp::BatchMode;
    use crate::circuit::Circuit;

    /// An RC divider with a tunable series resistor: linear, so plain
    /// Newton converges in one iteration and lane agreement is exact.
    fn divider() -> (Prepared, f64) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.set_ac("V1", 1.0, 0.0).unwrap();
        c.resistor("R1", a, out, 1e3);
        c.resistor("R2", out, Circuit::gnd(), 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        (Prepared::compile(&c).unwrap(), 1e3)
    }

    /// A common-emitter BJT stage with a tunable collector resistor:
    /// genuinely nonlinear, several Newton iterations.
    fn bjt_stage() -> Prepared {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.7);
        c.resistor("RC", vcc, col, 1e3);
        let mi = c.add_bjt_model(crate::model::BjtModel::named("n1"));
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        Prepared::compile(&c).unwrap()
    }

    /// Batch size 1 on the sparse backend reproduces the sequential
    /// operating point bit for bit.
    #[test]
    fn single_lane_matches_sequential_bitwise() {
        let mut prep = bjt_stage();
        let opts = Options::new().solver(SolverChoice::Sparse);
        let scales = [0.5, 1.0, 2.0, 7.5];
        let mut engine = BatchedOpEngine::new(1);
        let batched = engine.run(&mut prep, &opts, scales.len(), |p, i| {
            p.circuit.set_resistance("RC", 1e3 * scales[i])
        });
        for (i, r) in batched.iter().enumerate() {
            prep.circuit.set_resistance("RC", 1e3 * scales[i]).unwrap();
            let seq = op(&prep, &opts).unwrap();
            let b = r.as_ref().unwrap();
            assert_eq!(b.iterations, seq.iterations, "sample {i}");
            assert_eq!(b.x, seq.x, "sample {i}");
        }
    }

    /// Multi-lane batches agree with the sequential path to far below
    /// the Newton tolerance on a nonlinear deck.
    #[test]
    fn multi_lane_matches_sequential_tightly() {
        let mut prep = bjt_stage();
        let opts = Options::new().solver(SolverChoice::Sparse);
        let scales: Vec<f64> = (0..11).map(|k| 0.5 + 0.2 * k as f64).collect();
        for lanes in [2, 3, 8] {
            let mut engine = BatchedOpEngine::new(lanes);
            let batched = engine.run(&mut prep, &opts, scales.len(), |p, i| {
                p.circuit.set_resistance("RC", 1e3 * scales[i])
            });
            for (i, r) in batched.iter().enumerate() {
                prep.circuit.set_resistance("RC", 1e3 * scales[i]).unwrap();
                let seq = op(&prep, &opts).unwrap();
                let b = r.as_ref().unwrap();
                for (bv, sv) in b.x.iter().zip(&seq.x) {
                    assert!(
                        (bv - sv).abs() <= 1e-9 * sv.abs().max(1.0),
                        "lanes={lanes} sample {i}: {bv} vs {sv}"
                    );
                }
            }
        }
    }

    /// A lane whose tune closure fails (defective sample) reports its
    /// error without disturbing its batch neighbours.
    #[test]
    fn failed_tune_is_contained() {
        let (mut prep, r) = divider();
        let opts = Options::new().solver(SolverChoice::Sparse);
        let mut engine = BatchedOpEngine::new(4);
        let res = engine.run(&mut prep, &opts, 4, |p, i| {
            if i == 2 {
                // Non-positive resistance: a netlist error.
                p.circuit.set_resistance("R1", -1.0)
            } else {
                p.circuit.set_resistance("R1", r * (1.0 + 0.1 * i as f64))
            }
        });
        assert!(res[2].is_err());
        for (i, out) in res.iter().enumerate() {
            if i != 2 {
                let got = out.as_ref().unwrap();
                prep.circuit
                    .set_resistance("R1", r * (1.0 + 0.1 * i as f64))
                    .unwrap();
                let seq = op(&prep, &opts).unwrap();
                for (gv, sv) in got.x.iter().zip(&seq.x) {
                    assert!(
                        (gv - sv).abs() <= 1e-12 * sv.abs().max(1.0),
                        "sample {i}: {gv} vs {sv}"
                    );
                }
            }
        }
    }

    /// The AC engine matches `ac_sweep` on every lane, including a
    /// tune-failed one.
    #[test]
    fn ac_engine_matches_ac_sweep() {
        use crate::analysis::ac::ac_sweep_impl as ac_sweep;
        let (mut prep, r) = divider();
        let opts = Options::new().solver(SolverChoice::Sparse);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let dc = op(&prep, &opts).unwrap();
        let mut engine = BatchedAcEngine::new(3);
        let items: Vec<(usize, &[f64])> = (0..5).map(|i| (i, dc.x.as_slice())).collect();
        let res = engine.run(&mut prep, &opts, f0, &items, |p, i| {
            if i == 4 {
                p.circuit.set_resistance("R1", -1.0)
            } else {
                p.circuit.set_resistance("R1", r * (1.0 + 0.05 * i as f64))
            }
        });
        assert!(res[4].is_err());
        let out_slot = prep.slot_of(prep.circuit.find_node("out").unwrap());
        for (i, got) in res.iter().take(4).enumerate() {
            prep.circuit
                .set_resistance("R1", r * (1.0 + 0.05 * i as f64))
                .unwrap();
            let w = ac_sweep(&prep, &dc.x, &opts, &[f0]).unwrap();
            let want = w.signal("v(out)").unwrap()[0];
            let gv = got.as_ref().unwrap()[out_slot];
            assert!(
                (gv - want).modulus() < 1e-12,
                "sample {i}: {gv:?} vs {want:?}"
            );
        }
    }

    /// BatchMode::lanes resolves Off/Auto/Lanes as documented.
    #[test]
    fn batch_mode_lane_resolution() {
        assert_eq!(BatchMode::Off.lanes(), None);
        assert!(BatchMode::Auto.lanes().unwrap() >= 2);
        assert_eq!(BatchMode::Lanes(5).lanes(), Some(5));
        assert_eq!(BatchMode::Lanes(0).lanes(), Some(1));
    }
}
