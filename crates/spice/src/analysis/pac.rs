//! Periodic small-signal conversion gain on top of the shooting PSS.
//!
//! A mixer's conversion gain relates an input tone at `f_in` to an
//! output component at a *different* frequency `f_out = |f_in − k·f_LO|`
//! — ordinary AC analysis around a DC operating point cannot see it,
//! because the frequency translation comes from the LO's periodic
//! modulation of the operating point.
//!
//! This analysis measures it by a *difference transient* seeded from
//! the periodic steady state:
//!
//! 1. solve the LO-only orbit with the shooting engine (the input
//!    source is forced to zero during this phase),
//! 2. re-enable the input as a small tone at `f_in` and integrate the
//!    perturbed circuit from the orbit's start state on the *same*
//!    fixed per-period grid, tiled over settle + measurement periods,
//! 3. subtract the tiled PSS orbit sample-by-sample — everything the
//!    LO does alone cancels exactly (same grid, same integrator, same
//!    discretization error), leaving the small-signal response
//!    `δy(t)`, and
//! 4. project `δy` onto `e^{−j2πf_out t}` with a trapezoidal Fourier
//!    integral over the measurement window.
//!
//! The window is validated to hold an integer number of both `f_in`
//! and `f_out` cycles, so the projection has no leakage bias.

use crate::analysis::pss::{pss_impl, PeriodIntegrator, PssParams, PssResult, PssStatus};
use crate::analysis::stamp::Options;
use crate::circuit::Prepared;
use crate::error::{Result, SpiceError};
use crate::wave::SourceWave;
use ahfic_num::Complex;

/// Periodic small-signal conversion-gain parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct PacParams {
    /// Name of the independent source carrying the small-signal input
    /// tone. Its waveform is replaced for the duration of the analysis
    /// (zeroed during the PSS phase, a sine during the measurement)
    /// and restored afterwards.
    pub source: String,
    /// Output signal to measure, by waveform name (e.g. `"v(out)"`).
    pub output: String,
    /// Input tone amplitude (V or A, per the source kind). Keep it
    /// small against the LO drive so the response stays linear.
    pub amplitude: f64,
    /// Input tone frequency (Hz).
    pub freq_in: f64,
    /// Output frequency to measure (Hz), e.g. the IF.
    pub freq_out: f64,
    /// LO periods in the measurement window. `freq_in` and `freq_out`
    /// must complete an integer number of cycles in this window.
    pub measure_periods: usize,
    /// LO periods integrated (and discarded) before the window opens,
    /// letting the small-signal transient settle onto its steady
    /// response.
    pub settle_periods: usize,
}

impl PacParams {
    /// Conventional setup; 20 measurement periods after 10 settle
    /// periods.
    pub fn new(
        source: impl Into<String>,
        output: impl Into<String>,
        amplitude: f64,
        freq_in: f64,
        freq_out: f64,
    ) -> Self {
        PacParams {
            source: source.into(),
            output: output.into(),
            amplitude,
            freq_in,
            freq_out,
            measure_periods: 20,
            settle_periods: 10,
        }
    }

    /// Sets the measurement window length (LO periods).
    pub fn measure_periods(mut self, n: usize) -> Self {
        self.measure_periods = n;
        self
    }

    /// Sets the settle prefix length (LO periods).
    pub fn settle_periods(mut self, n: usize) -> Self {
        self.settle_periods = n;
        self
    }
}

/// Result of a periodic small-signal conversion-gain analysis.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct PacResult {
    /// Complex conversion gain: output phasor at `freq_out` divided by
    /// the input amplitude.
    pub gain: Complex,
    /// The LO-only periodic steady state the measurement was seeded
    /// from.
    pub pss: PssResult,
}

impl PacResult {
    /// Conversion-gain magnitude.
    pub fn gain_mag(&self) -> f64 {
        self.gain.abs()
    }

    /// Conversion gain in dB (`20·log10`).
    pub fn gain_db(&self) -> f64 {
        20.0 * self.gain.abs().log10()
    }
}

/// Checks that `freq` completes an integer (≥ 1) number of cycles in
/// `window` seconds.
fn check_commensurate(what: &str, freq: f64, window: f64) -> Result<()> {
    let cycles = freq * window;
    if cycles < 0.5 || (cycles - cycles.round()).abs() > 1e-6 * cycles.max(1.0) {
        return Err(SpiceError::BadAnalysis(format!(
            "pac: {what} ({freq} Hz) does not complete an integer number of \
             cycles in the {window} s measurement window ({cycles} cycles)"
        )));
    }
    Ok(())
}

/// The engine behind [`Session::pac`](crate::analysis::Session::pac):
/// PSS, perturbed tiled transient, difference, Fourier projection.
///
/// Takes `&mut Prepared` because the input source's waveform is swapped
/// out and back (values only — the compiled structure is untouched,
/// exactly like a DC sweep).
pub(crate) fn pac_impl(
    prep: &mut Prepared,
    opts: &Options,
    pss_params: &PssParams,
    params: &PacParams,
) -> Result<PacResult> {
    if params.amplitude <= 0.0 || params.freq_in <= 0.0 || params.freq_out <= 0.0 {
        return Err(SpiceError::BadAnalysis(
            "pac needs positive amplitude, freq_in and freq_out".into(),
        ));
    }
    if params.measure_periods == 0 {
        return Err(SpiceError::BadAnalysis(
            "pac needs measure_periods >= 1".into(),
        ));
    }
    let window = pss_params.period * params.measure_periods as f64;
    check_commensurate("freq_in", params.freq_in, window)?;
    check_commensurate("freq_out", params.freq_out, window)?;
    let orig = prep
        .circuit
        .source_wave(&params.source)
        .cloned()
        .ok_or_else(|| SpiceError::Netlist(format!("no source named {}", params.source)))?;

    let result = pac_body(prep, opts, pss_params, params);
    // Restore the caller's waveform on every path before surfacing the
    // outcome.
    prep.circuit.set_source_wave(&params.source, orig)?;
    result
}

fn pac_body(
    prep: &mut Prepared,
    opts: &Options,
    pss_params: &PssParams,
    params: &PacParams,
) -> Result<PacResult> {
    let tr = opts.trace.tracer();
    let span = tr.span("pac");
    // Phase 1: LO-only periodic steady state with the input silenced.
    prep.circuit
        .set_source_wave(&params.source, SourceWave::Dc(0.0))?;
    let pss = pss_impl(prep, opts, pss_params)?;
    match pss.status() {
        PssStatus::Converged => {}
        PssStatus::Cancelled { .. } => {
            return Err(SpiceError::Cancelled {
                analysis: "pac",
                time: None,
            })
        }
        PssStatus::BudgetExhausted {
            resource, limit, ..
        } => {
            return Err(SpiceError::BudgetExhausted {
                analysis: "pac",
                resource,
                limit: *limit,
                spent: *limit,
            })
        }
        // `PssStatus` is non_exhaustive; future variants must not
        // silently pass as converged.
        #[allow(unreachable_patterns)]
        _ => {
            return Err(SpiceError::NoConvergence {
                analysis: "pac",
                iterations: pss.shooting_iterations as usize,
                time: None,
                report: None,
            })
        }
    }
    let x_orbit = pss.x0();
    let y_pss = pss.wave().signal(&params.output)?.to_vec();

    // Phase 2: perturb and integrate on the tiled grid.
    prep.circuit.set_source_wave(
        &params.source,
        SourceWave::Sin {
            offset: 0.0,
            ampl: params.amplitude,
            freq: params.freq_in,
            delay: 0.0,
            damping: 0.0,
            phase_deg: 0.0,
        },
    )?;
    let mut integ = PeriodIntegrator::new(prep, opts, pss_params);
    let period = pss_params.period;
    let omega = 2.0 * std::f64::consts::PI * params.freq_out;
    let mut x = x_orbit;
    let mut acc = Complex::ZERO;
    for p in 0..params.settle_periods + params.measure_periods {
        // Period-boundary control points, mirroring the shooting loop.
        if opts.cancel.cancelled() {
            return Err(SpiceError::Cancelled {
                analysis: "pac",
                time: Some(p as f64 * period),
            });
        }
        if let Some(limit) = opts.budget.steps_exhausted(integ.steps) {
            return Err(SpiceError::BudgetExhausted {
                analysis: "pac",
                resource: "steps",
                limit,
                spent: integ.steps,
            });
        }
        if let Some((limit, spent)) = opts.budget.wall_exhausted() {
            return Err(SpiceError::BudgetExhausted {
                analysis: "pac",
                resource: "wall_clock_ms",
                limit,
                spent,
            });
        }
        let t_offset = p as f64 * period;
        if p < params.settle_periods {
            x = integ.integrate(&x, t_offset, None)?;
            continue;
        }
        let mut wave = integ.fresh_wave();
        x = integ.integrate(&x, t_offset, Some(&mut wave))?;
        let y = wave.signal(&params.output)?;
        let ts = wave.axis();
        // Phase 3+4 fused: per-interval trapezoid of
        // δy(t)·e^{−jωt} over this period. The grid matches the PSS
        // orbit's sample-for-sample, so the subtraction is exact.
        let f_at = |k: usize| {
            let dy = y[k] - y_pss[k];
            let ph = -omega * ts[k];
            Complex::new(dy * ph.cos(), dy * ph.sin())
        };
        let mut prev = f_at(0);
        for k in 1..ts.len() {
            let cur = f_at(k);
            let h = ts[k] - ts[k - 1];
            acc += (prev + cur).scale(0.5 * h);
            prev = cur;
        }
    }
    // X(f_out) = (2/T_win)·∫ δy·e^{−jωt} dt; gain = X / A_in.
    let phasor = acc.scale(2.0 / (params.measure_periods as f64 * period));
    let gain = phasor.scale(1.0 / params.amplitude);
    tr.counter("pac.gain_mag", gain.abs());
    span.end();
    Ok(PacResult { gain, pss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    /// Linear RC lowpass with a "LO" that does nothing (linear circuit:
    /// no frequency translation) — conversion gain at f_in equals the
    /// AC transfer magnitude, and the machinery (PSS seed, difference
    /// transient, Fourier projection) is exercised end to end.
    #[test]
    fn linear_circuit_reproduces_ac_transfer() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource_wave("VIN", inp, Circuit::gnd(), SourceWave::Dc(0.0));
        c.resistor("R1", inp, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        let mut prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        // "LO" period 1 us; input tone at 2 MHz, measured at 2 MHz
        // (k = 0 sideband: plain transfer).
        let pss_params = PssParams::new(1e-6, 256);
        let pac = PacParams::new("VIN", "v(out)", 0.01, 2e6, 2e6)
            .measure_periods(10)
            .settle_periods(10);
        let r = pac_impl(&mut prep, &opts, &pss_params, &pac).unwrap();
        let wrc = 2.0 * std::f64::consts::PI * 2e6 * 1e3 * 1e-9;
        let expect = 1.0 / (1.0 + wrc * wrc).sqrt();
        assert!(
            (r.gain_mag() - expect).abs() < 0.02 * expect,
            "gain {} vs analytic {expect}",
            r.gain_mag()
        );
        // The input waveform was restored.
        assert_eq!(
            prep.circuit.source_wave("VIN").cloned(),
            Some(SourceWave::Dc(0.0))
        );
    }

    #[test]
    fn rejects_leaky_window() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        c.vsource_wave("VIN", inp, Circuit::gnd(), SourceWave::Dc(0.0));
        c.resistor("R1", inp, Circuit::gnd(), 1e3);
        let mut prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        // 1.37 MHz in a 10 us window: 13.7 cycles — not integer.
        let pac = PacParams::new("VIN", "v(in)", 0.01, 1.37e6, 1.37e6).measure_periods(10);
        let e = pac_impl(&mut prep, &opts, &PssParams::new(1e-6, 64), &pac).unwrap_err();
        assert!(matches!(e, SpiceError::BadAnalysis(_)), "{e}");
    }

    #[test]
    fn unknown_source_is_a_netlist_error() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        c.vsource_wave("VIN", inp, Circuit::gnd(), SourceWave::Dc(0.0));
        c.resistor("R1", inp, Circuit::gnd(), 1e3);
        let mut prep = Prepared::compile(&c).unwrap();
        let pac = PacParams::new("VNOPE", "v(in)", 0.01, 1e6, 1e6);
        let e = pac_impl(
            &mut prep,
            &Options::default(),
            &PssParams::new(1e-6, 64),
            &pac,
        )
        .unwrap_err();
        assert!(matches!(e, SpiceError::Netlist(_)), "{e}");
    }
}
