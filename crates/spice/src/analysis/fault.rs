//! Deterministic fault injection for the Newton solver.
//!
//! A [`FaultInjector`] is installed through
//! [`Options::fault_injector`](crate::analysis::Options::fault_injector)
//! and consulted once per Newton iteration. It can poison the assembled
//! system (NaN stamp), zero it (singular factorization), abort the
//! solve (forced non-convergence), panic (a device model blowing a
//! debug assertion), or stall (a wedged solve) at a precisely chosen
//! point — the test harness that proves each recovery path in the
//! continuation ladder and the serving layer's supervision actually
//! fires. Unset (the default) it costs one not-taken branch per
//! iteration.
//!
//! Faults are targeted either exactly ([`FaultTrigger::At`]: the n-th
//! `newton_solve` invocation, a specific iteration, optionally
//! recurring) or statistically but reproducibly ([`FaultTrigger::Seeded`]:
//! a hash of the seed and the solve index decides, so the same seed
//! always hits the same solves regardless of wall clock or thread
//! timing).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the injector does to the solve it fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Zero every assembled matrix value: the factorization genuinely
    /// breaks down and reports a singular matrix.
    SingularMatrix,
    /// Write a NaN into the assembled matrix, exercising the
    /// NaN/Inf guard in the Newton loop.
    NanStamp,
    /// Abort the solve as if Newton had run out of iterations,
    /// exercising ladder escalation and step rejection.
    NoConvergence,
    /// Panic at the poll site, standing in for a device model whose
    /// debug assertion fires mid-stamp. Exercises the serving layer's
    /// `catch_unwind` supervision — outside a supervised worker this
    /// unwinds like any other library panic.
    Panic,
    /// Sleep `millis` at the poll site, standing in for a wedged solve
    /// (stuck preconditioner, pathological model evaluation). Exercises
    /// wall-clock [`Budget`](crate::analysis::Budget) deadlines.
    Stall {
        /// How long the injected stall sleeps, in milliseconds.
        millis: u64,
    },
}

/// When the injector fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultTrigger {
    /// Fire at solve index `solve` (0-based count of `newton_solve`
    /// invocations seen by this injector), Newton iteration `iteration`
    /// (1-based), and — when `every` is set — again at every later solve
    /// whose index is `solve + k*every`.
    At {
        /// First solve index to fire on.
        solve: u64,
        /// Newton iteration within the solve (1-based).
        iteration: usize,
        /// Recurrence period in solves (`None` = fire once).
        every: Option<u64>,
    },
    /// Fire on iteration 1 of a reproducible pseudo-random subset of
    /// solves: solve index `i` is hit iff `splitmix64(seed ^ i) < rate`.
    Seeded {
        /// Seed mixed into the per-solve hash.
        seed: u64,
        /// Fraction of solves to hit, in `[0, 1]`.
        rate: f64,
    },
}

/// A deterministic fault plan plus its firing counters.
///
/// Shared via `Arc` between the options that install it and the test
/// that asserts on [`FaultInjector::fires`].
#[derive(Debug)]
pub struct FaultInjector {
    kind: FaultKind,
    trigger: FaultTrigger,
    max_fires: u64,
    solves: AtomicU64,
    fires: AtomicU64,
}

impl FaultInjector {
    /// Fires `kind` once, at the given solve index and Newton iteration.
    pub fn once(kind: FaultKind, solve: u64, iteration: usize) -> Arc<Self> {
        Arc::new(FaultInjector {
            kind,
            trigger: FaultTrigger::At {
                solve,
                iteration,
                every: None,
            },
            max_fires: 1,
            solves: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        })
    }

    /// Fires `kind` at solve `first` and then every `every` solves,
    /// without limit.
    pub fn recurring(kind: FaultKind, first: u64, every: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            kind,
            trigger: FaultTrigger::At {
                solve: first,
                iteration: 1,
                every: Some(every.max(1)),
            },
            max_fires: u64::MAX,
            solves: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        })
    }

    /// Fires `kind` on a seeded pseudo-random fraction `rate` of solves.
    /// Fully reproducible: the decision depends only on `seed` and the
    /// solve index.
    pub fn seeded(kind: FaultKind, seed: u64, rate: f64) -> Arc<Self> {
        Arc::new(FaultInjector {
            kind,
            trigger: FaultTrigger::Seeded {
                seed,
                rate: rate.clamp(0.0, 1.0),
            },
            max_fires: u64::MAX,
            solves: AtomicU64::new(0),
            fires: AtomicU64::new(0),
        })
    }

    /// Caps the total number of fires (chainable at construction time
    /// via `Arc::try_unwrap` is not needed — build with the constructors
    /// above and this only when a cap matters).
    pub fn with_max_fires(self: Arc<Self>, max: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            kind: self.kind,
            trigger: self.trigger,
            max_fires: max,
            solves: AtomicU64::new(self.solves.load(Ordering::Relaxed)),
            fires: AtomicU64::new(self.fires.load(Ordering::Relaxed)),
        })
    }

    /// The fault this injector delivers.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// How many times the fault has fired so far.
    pub fn fires(&self) -> u64 {
        self.fires.load(Ordering::Relaxed)
    }

    /// How many Newton solves this injector has observed.
    pub fn solves_seen(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// Called by `newton_solve` on entry; returns this solve's index.
    pub(crate) fn begin_solve(&self) -> u64 {
        self.solves.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether to fire on iteration `iteration` of solve `solve_idx`;
    /// counts the fire when it does.
    pub(crate) fn poll(&self, solve_idx: u64, iteration: usize) -> Option<FaultKind> {
        if self.fires.load(Ordering::Relaxed) >= self.max_fires {
            return None;
        }
        let hit = match self.trigger {
            FaultTrigger::At {
                solve,
                iteration: it,
                every,
            } => {
                iteration == it
                    && match every {
                        None => solve_idx == solve,
                        Some(p) => solve_idx >= solve && (solve_idx - solve).is_multiple_of(p),
                    }
            }
            FaultTrigger::Seeded { seed, rate } => {
                iteration == 1 && (splitmix64(seed ^ solve_idx) as f64 / u64::MAX as f64) < rate
            }
        };
        if hit {
            self.fires.fetch_add(1, Ordering::Relaxed);
            Some(self.kind)
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer: a statistically solid stateless hash.
///
/// Public because the serving layer reuses it for deterministic
/// retry-backoff jitter — same seed, same schedule, no wall-clock or
/// thread-timing dependence.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared handle to an optional [`FaultInjector`], stored inside
/// [`Options`](crate::analysis::Options).
///
/// Equality compares only whether injection is enabled (mirroring
/// `TraceHandle`), so `Options` keeps a useful `PartialEq`.
#[derive(Clone, Default)]
pub struct FaultHandle {
    inner: Option<Arc<FaultInjector>>,
}

impl FaultHandle {
    /// A disabled handle: every poll site is a single not-taken branch.
    pub const fn off() -> Self {
        FaultHandle { inner: None }
    }

    /// Wraps an injector for installation into options.
    pub fn new(injector: &Arc<FaultInjector>) -> Self {
        FaultHandle {
            inner: Some(Arc::clone(injector)),
        }
    }

    /// Whether an injector is installed.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The installed injector, if any.
    pub(crate) fn get(&self) -> Option<&FaultInjector> {
        self.inner.as_deref()
    }
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl PartialEq for FaultHandle {
    fn eq(&self, other: &Self) -> bool {
        self.enabled() == other.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_fires_exactly_once_at_target() {
        let inj = FaultInjector::once(FaultKind::NanStamp, 2, 3);
        assert_eq!(inj.begin_solve(), 0);
        assert_eq!(inj.poll(0, 3), None);
        assert_eq!(inj.begin_solve(), 1);
        assert_eq!(inj.begin_solve(), 2);
        assert_eq!(inj.poll(2, 2), None, "wrong iteration");
        assert_eq!(inj.poll(2, 3), Some(FaultKind::NanStamp));
        assert_eq!(inj.poll(2, 3), None, "max_fires=1 exhausted");
        assert_eq!(inj.fires(), 1);
        assert_eq!(inj.solves_seen(), 3);
    }

    #[test]
    fn recurring_fires_on_period() {
        let inj = FaultInjector::recurring(FaultKind::NoConvergence, 1, 3);
        let hits: Vec<u64> = (0..10).filter(|&s| inj.poll(s, 1).is_some()).collect();
        assert_eq!(hits, vec![1, 4, 7]);
        assert_eq!(inj.fires(), 3);
    }

    #[test]
    fn seeded_is_reproducible_and_rate_bounded() {
        let a = FaultInjector::seeded(FaultKind::NoConvergence, 42, 0.25);
        let b = FaultInjector::seeded(FaultKind::NoConvergence, 42, 0.25);
        let hits_a: Vec<u64> = (0..400).filter(|&s| a.poll(s, 1).is_some()).collect();
        let hits_b: Vec<u64> = (0..400).filter(|&s| b.poll(s, 1).is_some()).collect();
        assert_eq!(hits_a, hits_b, "same seed, same hits");
        assert!(!hits_a.is_empty());
        let frac = hits_a.len() as f64 / 400.0;
        assert!((0.1..0.4).contains(&frac), "rate wildly off: {frac}");
        let c = FaultInjector::seeded(FaultKind::NoConvergence, 43, 0.25);
        let hits_c: Vec<u64> = (0..400).filter(|&s| c.poll(s, 1).is_some()).collect();
        assert_ne!(hits_a, hits_c, "different seed, different hits");
    }

    #[test]
    fn max_fires_caps_recurring() {
        let inj = FaultInjector::recurring(FaultKind::SingularMatrix, 0, 1).with_max_fires(2);
        let hits: Vec<u64> = (0..10).filter(|&s| inj.poll(s, 1).is_some()).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn handle_equality_tracks_enablement_only() {
        let a = FaultHandle::new(&FaultInjector::once(FaultKind::NanStamp, 0, 1));
        let b = FaultHandle::new(&FaultInjector::once(FaultKind::SingularMatrix, 7, 2));
        assert_eq!(a, b);
        assert_ne!(a, FaultHandle::off());
        assert!(FaultHandle::off() == FaultHandle::default());
        assert!(format!("{a:?}").contains("enabled: true"));
    }
}
