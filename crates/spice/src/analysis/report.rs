//! Human-readable operating-point reports (the `.op` printout of
//! classic SPICE) and pre-flight lint rendering.

use crate::analysis::stamp::Options;
use crate::circuit::Prepared;
use crate::devices::OpCtx;
use crate::lint::{LintReport, LintSeverity};
use crate::units::format_value;
use std::fmt::Write as _;

/// Renders node voltages, branch currents and BJT operating points at a
/// converged solution.
pub fn op_report(prep: &Prepared, x: &[f64], opts: &Options) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== operating point ==");
    let _ = writeln!(out, "-- node voltages --");
    for (k, name) in prep.unknown_names.iter().enumerate() {
        if k < prep.num_voltage_unknowns {
            let _ = writeln!(out, "  {name:<18} {:>12}V", format_value(x[k]));
        }
    }
    let _ = writeln!(out, "-- branch currents --");
    for (k, name) in prep.unknown_names.iter().enumerate() {
        if k >= prep.num_voltage_unknowns {
            let _ = writeln!(out, "  {name:<18} {:>12}A", format_value(x[k]));
        }
    }
    let mut header_done = false;
    let cx = OpCtx { prep, opts, x };
    for d in prep.devices() {
        let Some(q) = d.bjt_operating(&cx) else {
            continue;
        };
        if !header_done {
            let _ = writeln!(out, "-- bipolar transistors --");
            let _ = writeln!(
                out,
                "  {:<10} {:>10} {:>10} {:>10} {:>8} {:>10}",
                "name", "ic", "ib", "vbe", "beta", "ft"
            );
            header_done = true;
        }
        let name = &prep.circuit.elements()[d.index()].name;
        let _ = writeln!(
            out,
            "  {:<10} {:>9}A {:>9}A {:>9}V {:>8.1} {:>9}Hz",
            name,
            format_value(q.ic),
            format_value(q.ib),
            format_value(q.vbe),
            q.beta_dc(),
            format_value(q.ft())
        );
    }
    out
}

/// Renders a pre-flight verification report, one finding per line:
///
/// ```text
/// == pre-flight verification: 1 error, 1 warning ==
///   error[floating-node]: node(s) f have no DC path to ground …
///       nodes: f    elements: C1 (line 4)
/// ```
pub fn lint_report(report: &LintReport) -> String {
    let mut out = String::new();
    let (errors, warnings) = (report.errors().count(), report.warnings().count());
    let _ = writeln!(
        out,
        "== pre-flight verification: {errors} error(s), {warnings} warning(s) =="
    );
    for d in &report.diagnostics {
        let sev = match d.severity {
            LintSeverity::Error => "error",
            LintSeverity::Warning => "warning",
        };
        let _ = writeln!(out, "  {sev}[{}]: {}", d.code, d.message);
        if !d.nodes.is_empty() || !d.elements.is_empty() {
            let _ = writeln!(
                out,
                "      nodes: {}    elements: {}",
                if d.nodes.is_empty() {
                    "-".to_string()
                } else {
                    d.nodes.join(", ")
                },
                if d.elements.is_empty() {
                    "-".to_string()
                } else {
                    d.elements.join(", ")
                }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::op_eval as op;
    use crate::circuit::Circuit;
    use crate::model::BjtModel;

    #[test]
    fn report_lists_everything() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.resistor("RB", vcc, b, 470e3);
        c.resistor("RC", vcc, col, 1e3);
        let mut m = BjtModel::named("n1");
        m.cje = 80e-15;
        m.cjc = 40e-15;
        m.tf = 15e-12;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let r = op(&prep, &opts).unwrap();
        let text = op_report(&prep, &r.x, &opts);
        assert!(text.contains("node voltages"));
        assert!(text.contains("v(c)"));
        assert!(text.contains("i(VCC)"));
        assert!(text.contains("Q1"), "{text}");
        assert!(text.contains("beta") && text.contains("ft"));
    }

    #[test]
    fn report_without_bjts_omits_table() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let r = op(&prep, &opts).unwrap();
        let text = op_report(&prep, &r.x, &opts);
        assert!(!text.contains("bipolar"));
    }
}
