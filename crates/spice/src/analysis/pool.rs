//! Work-stealing sample pool for embarrassingly parallel variant
//! studies (Monte-Carlo yield, corner characterization, batch sweeps).
//!
//! Unlike the internal `parallel_freq_map` frequency-sweep helper,
//! which splits its points into fixed contiguous chunks up front, the
//! pool hands out chunks dynamically from a shared atomic cursor: a
//! worker that draws cheap samples (e.g. lint-rejected defect decks)
//! immediately steals the next chunk instead of idling while a sibling
//! grinds through expensive Newton ladders. The hot path is lock-free —
//! one `fetch_add` per chunk claim, no mutex, no channel.
//!
//! Worker state (solver workspaces, batched engines, cloned benches) is
//! built *inside* each worker thread by the `init` factory, so it never
//! has to be `Send`; only the per-sample results cross threads.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `work` over sample indices `0..count`, claiming chunks of
/// `chunk` consecutive indices from a shared atomic cursor.
///
/// `threads` follows [`Options::threads`](crate::analysis::Options::threads)
/// semantics: `0` = auto-detect from available parallelism, `1` = run
/// inline on the calling thread (fully deterministic ordering, no
/// spawns). The effective worker count never exceeds the number of
/// chunks. `init(worker_index)` builds each worker's private state on
/// its own thread; `work(&mut state, sample_index)` produces one result
/// per sample. Results are returned in sample order regardless of which
/// worker produced them.
///
/// # Panics
///
/// Propagates panics from `work` (the panic payload is re-raised on the
/// calling thread once the scope joins).
pub fn sample_pool_map<W, R, I, F>(
    threads: usize,
    count: usize,
    chunk: usize,
    init: I,
    work: F,
) -> Vec<R>
where
    R: Send,
    I: Fn(usize) -> W + Sync,
    F: Fn(&mut W, usize) -> R + Sync,
{
    let chunk = chunk.max(1);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |c| c.get())
    } else {
        threads
    }
    .min(count.div_ceil(chunk).max(1));
    if count == 0 {
        return Vec::new();
    }
    if threads <= 1 {
        let mut state = init(0);
        return (0..count).map(|i| work(&mut state, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|widx| {
                let cursor = &cursor;
                let init = &init;
                let work = &work;
                s.spawn(move || {
                    let mut state = init(widx);
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= count {
                            break;
                        }
                        for i in start..(start + chunk).min(count) {
                            got.push((i, work(&mut state, i)));
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(b) => buckets.push(b),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    // Every index in 0..count is claimed by exactly one worker before
    // the scope joins; an empty slot is a bug in the cursor logic.
    #[allow(clippy::expect_used)]
    slots
        .into_iter()
        .map(|s| s.expect("pool filled every sample slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Results come back in sample order whatever the worker count.
    #[test]
    fn preserves_sample_order() {
        for threads in [0, 1, 2, 3, 7] {
            let out = sample_pool_map(threads, 23, 3, |_| (), |_, i| 10 * i);
            assert_eq!(out.len(), 23);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 10 * i, "threads={threads}");
            }
        }
    }

    /// threads=1 runs inline: one worker state, strictly sequential.
    #[test]
    fn single_thread_runs_inline() {
        let inits = AtomicUsize::new(0);
        let out = sample_pool_map(
            1,
            10,
            4,
            |widx| {
                inits.fetch_add(1, Ordering::Relaxed);
                widx
            },
            |state, i| (*state, i),
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert!(out.iter().enumerate().all(|(i, &(w, s))| w == 0 && s == i));
    }

    /// Worker state persists across chunks claimed by the same worker.
    #[test]
    fn worker_state_accumulates() {
        let out = sample_pool_map(
            2,
            12,
            1,
            |_| 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        // Every worker's local counter only ever increments, and the
        // total across workers covers every sample exactly once.
        let total: usize = out.iter().map(|&(_, seen)| seen).filter(|&s| s > 0).count();
        assert_eq!(total, 12);
    }

    /// Zero samples: no spawns, empty result.
    #[test]
    fn empty_input() {
        let out: Vec<usize> = sample_pool_map(4, 0, 8, |_| (), |_, i| i);
        assert!(out.is_empty());
    }

    /// Worker count is capped by chunk count: 5 samples in chunks of 8
    /// never spawn more than one worker even with a large budget.
    #[test]
    fn workers_capped_by_chunks() {
        let workers = AtomicUsize::new(0);
        let _ = sample_pool_map(
            16,
            5,
            8,
            |_| {
                workers.fetch_add(1, Ordering::Relaxed);
            },
            |_, i| i,
        );
        assert_eq!(workers.load(Ordering::Relaxed), 1);
    }
}
