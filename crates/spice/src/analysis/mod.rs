//! Circuit analyses: operating point, DC sweep, AC sweep, transient.
//!
//! The numerical hot paths are annotated to warn on `unwrap`/`expect`
//! outside tests: a malformed netlist or a pathological circuit must
//! surface as a typed [`SpiceError`](crate::error::SpiceError), never a
//! panic. The few remaining `expect`s carry local `#[allow]`s with the
//! invariant that justifies them.

pub mod ac;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod batched;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod control;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod dc;
pub mod fault;
pub mod noise;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod op;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod pac;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod pool;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod pss;
pub mod report;
pub mod session;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod solver;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod stamp;
#[cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
pub mod tran;

#[allow(deprecated)]
pub use ac::ac_sweep;
pub use batched::{BatchedAcEngine, BatchedOpEngine, BatchedWorkspace};
pub use control::{Budget, CancelHandle, CancelToken, Deadline, StreamPolicy};
#[allow(deprecated)]
pub use dc::dc_sweep;
pub use fault::{FaultHandle, FaultInjector, FaultKind, FaultTrigger};
#[allow(deprecated)]
pub use noise::noise_analysis;
pub use noise::{NoiseContribution, NoisePoint};
pub use op::{bjt_operating, OpResult};
#[allow(deprecated)]
pub use op::{op, op_from};
pub use pac::{PacParams, PacResult};
pub use pool::sample_pool_map;
pub use pss::{PssParams, PssResult, PssStatus};
pub use report::{lint_report, op_report};
pub use session::Session;
pub use solver::{SolverChoice, SolverWorkspace};
pub use stamp::{BatchMode, LadderConfig, Options};
#[allow(deprecated)]
pub use tran::tran;
pub use tran::{TranParams, TranResult, TranStatus};
