//! Circuit analyses: operating point, DC sweep, AC sweep, transient.

pub mod ac;
pub mod dc;
pub mod noise;
pub mod op;
pub mod report;
pub mod session;
pub mod solver;
pub mod stamp;
pub mod tran;

pub use ac::ac_sweep;
pub use dc::dc_sweep;
pub use noise::{noise_analysis, NoiseContribution, NoisePoint};
pub use op::{bjt_operating, op, op_from, OpResult};
pub use report::op_report;
pub use session::Session;
pub use solver::{SolverChoice, SolverWorkspace};
pub use stamp::Options;
pub use tran::{tran, TranParams};
