//! DC operating-point analysis: Newton–Raphson backed by a
//! convergence-recovery ladder — adaptive damping, gmin stepping,
//! source stepping, and a pseudo-transient homotopy as last resort.

use crate::analysis::solver::{singular_unknown, SolverWorkspace};
use crate::analysis::stamp::{
    real_pattern, stamp_linear, stamp_nonlinear, worst_unknowns, MnaSink, Mode, NonlinMemory,
    Options,
};
use crate::circuit::Prepared;
use crate::devices::{BjtOperating, OpCtx};
use crate::error::{ConvergenceReport, Result, RungReport, SpiceError, WorstUnknown};
use ahfic_trace::ContinuationStats;

/// Converged operating point.
///
/// `#[non_exhaustive]`: more diagnostic fields may grow here; construct
/// one only through the analysis entry points and read it through the
/// fields or the accessor methods.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct OpResult {
    /// Solution vector (node voltages then branch currents).
    pub x: Vec<f64>,
    /// Newton iterations spent (total across continuation stages).
    pub iterations: usize,
}

impl OpResult {
    /// The solution vector (node voltages then branch currents).
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Consumes the result, returning the solution vector.
    pub fn into_x(self) -> Vec<f64> {
        self.x
    }

    /// Newton iterations spent (total across continuation stages).
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Per-call Newton configuration: the knobs the continuation ladder
/// turns between rungs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NewtonCfg<'a> {
    /// Conductance added to every voltage-unknown diagonal (gmin
    /// stepping, ptran anchor strength; `0.0` normally).
    pub diag_gmin: f64,
    /// Pseudo-transient anchor: when set, `diag_gmin * anchor[k]` is
    /// added to the right-hand side of every voltage row, turning the
    /// diagonal conductance into a backward-Euler companion of an
    /// artificial capacitor to the anchor voltage.
    pub anchor: Option<&'a [f64]>,
    /// Initial fraction of the Newton update applied (1.0 = full step).
    pub damping: f64,
    /// Adapt the damping factor from iterate behaviour: halve it when
    /// the scaled update grows, regrow toward 1.0 while it shrinks.
    pub adaptive: bool,
}

impl NewtonCfg<'static> {
    /// Plain full-step Newton.
    pub fn plain() -> Self {
        NewtonCfg {
            diag_gmin: 0.0,
            anchor: None,
            damping: 1.0,
            adaptive: false,
        }
    }

    /// Plain Newton with a diagonal gmin (gmin-stepping stages).
    pub fn with_gmin(diag_gmin: f64) -> Self {
        NewtonCfg {
            diag_gmin,
            ..NewtonCfg::plain()
        }
    }

    /// Adaptive damped Newton (the ladder's second rung).
    pub fn damped() -> Self {
        NewtonCfg {
            adaptive: true,
            ..NewtonCfg::plain()
        }
    }
}

/// Floor for the adaptive damping factor.
const ALPHA_MIN: f64 = 1.0 / 64.0;

/// Iterations spent before a [`SpiceError`] was produced (0 when the
/// error does not carry a count).
fn error_iterations(e: &SpiceError) -> usize {
    match e {
        SpiceError::NoConvergence { iterations, .. } => *iterations,
        _ => 0,
    }
}

/// Worst-unknown diagnostics attached to a Newton failure (empty when
/// the error carries none).
fn error_worst(e: &SpiceError) -> Vec<WorstUnknown> {
    e.convergence_report()
        .map(|r| r.worst.clone())
        .unwrap_or_default()
}

/// Errors out with a typed [`SpiceError::BudgetExhausted`] once `spent`
/// cumulative Newton iterations cross the per-call budget, so a hard
/// deck degrades to a report between continuation stages instead of
/// burning the whole ladder.
fn budget_gate(opts: &Options, spent: usize) -> Result<()> {
    if let Some((limit, spent_ms)) = opts.budget.wall_exhausted() {
        return Err(SpiceError::BudgetExhausted {
            analysis: "op",
            resource: "wall_clock_ms",
            limit,
            spent: spent_ms,
        });
    }
    match opts.budget.newton_exhausted(spent as u64) {
        None => Ok(()),
        Some(limit) => Err(SpiceError::BudgetExhausted {
            analysis: "op",
            resource: "newton_iterations",
            limit,
            spent: spent as u64,
        }),
    }
}

/// Runs one Newton solve in the given mode, reusing `ws` for assembly,
/// factorization, and solution buffers — no heap allocation inside the
/// iteration loop beyond the returned solution vector.
///
/// With `opts.linear_replay` on, the linear partition (plus the
/// `cfg.diag_gmin` diagonal and optional ptran anchor) is stamped once
/// and replayed by `memcpy` on every subsequent iteration; only the
/// nonlinear partition is re-stamped. Every iteration passes a NaN/Inf
/// guard over the assembled system and, when installed, polls the fault
/// injector. Returns the solution and iteration count.
pub(crate) fn newton_solve(
    prep: &Prepared,
    opts: &Options,
    mode: &Mode,
    mem: &mut NonlinMemory,
    x0: &[f64],
    ws: &mut SolverWorkspace<f64>,
    cfg: &NewtonCfg,
) -> Result<(Vec<f64>, usize)> {
    let mut x = x0.to_vec();
    let replay = opts.linear_replay;
    let injector = opts.faults.get();
    let solve_idx = injector.map(|f| f.begin_solve());
    let mut alpha = cfg.damping.clamp(ALPHA_MIN, 1.0);
    let mut prev_metric = f64::INFINITY;
    // The baseline depends on mode, diag_gmin and anchor, all fixed for
    // the duration of this call but not across calls sharing the
    // workspace.
    ws.invalidate_checkpoint();
    if ws.needs_pattern() {
        let pat = real_pattern(prep, &x, opts, mode, prep.num_voltage_unknowns);
        ws.preset_pattern(&pat);
    }
    for iter in 1..=opts.max_newton {
        // Cooperative-cancellation poll: one not-taken branch when no
        // token is installed, and the only place an OP-family solve can
        // be cancelled (never inside a factorization).
        if opts.cancel.cancelled() {
            return Err(SpiceError::Cancelled {
                analysis: "newton",
                time: None,
            });
        }
        // Wall-clock deadline shares the cancellation poll site, so a
        // stuck solve degrades within one Newton iteration.
        if let Some((limit, spent)) = opts.budget.wall_exhausted() {
            return Err(SpiceError::BudgetExhausted {
                analysis: "newton",
                resource: "wall_clock_ms",
                limit,
                spent,
            });
        }
        loop {
            if !(replay && ws.restore()) {
                ws.kernel.reset();
                ws.rhs.fill(0.0);
                stamp_linear(prep, &x, opts, mode, &mut ws.kernel, &mut ws.rhs);
                // Stamped even at 0.0 so the stamp sequence is identical
                // across the OP strategies sharing a workspace.
                for k in 0..prep.num_voltage_unknowns {
                    ws.kernel.add(k, k, cfg.diag_gmin);
                }
                if let Some(anchor) = cfg.anchor {
                    let nv = prep.num_voltage_unknowns;
                    for (r, a) in ws.rhs[..nv].iter_mut().zip(anchor) {
                        *r += cfg.diag_gmin * a;
                    }
                }
                if replay {
                    ws.checkpoint();
                }
            }
            stamp_nonlinear(prep, &x, opts, mode, mem, &mut ws.kernel, &mut ws.rhs);
            if !ws.finish_assembly() {
                break;
            }
        }
        if let (Some(f), Some(idx)) = (injector, solve_idx) {
            match f.poll(idx, iter) {
                Some(crate::analysis::fault::FaultKind::NanStamp) => ws.poison_nan(),
                Some(crate::analysis::fault::FaultKind::SingularMatrix) => ws.poison_singular(),
                Some(crate::analysis::fault::FaultKind::NoConvergence) => {
                    return Err(SpiceError::NoConvergence {
                        analysis: "newton",
                        iterations: iter,
                        time: None,
                        report: None,
                    });
                }
                Some(crate::analysis::fault::FaultKind::Panic) => {
                    panic!("injected fault: device model panic at iteration {iter}");
                }
                Some(crate::analysis::fault::FaultKind::Stall { millis }) => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                None => {}
            }
        }
        if !ws.assembly_finite() {
            return Err(SpiceError::NonFinite {
                analysis: "newton",
                context: format!("poisoned stamp in assembled system at iteration {iter}"),
            });
        }
        ws.factor().map_err(|e| singular_unknown(prep, e))?;
        let x_new = ws.solve().map_err(|e| singular_unknown(prep, e))?;
        if x_new.iter().any(|v| !v.is_finite()) {
            return Err(SpiceError::NonFinite {
                analysis: "newton",
                context: format!("non-finite solution at iteration {iter}"),
            });
        }
        // Scaled size of the full (undamped) update: <= 1 means every
        // unknown moved within tolerance.
        let mut metric = 0.0f64;
        for k in 0..prep.num_unknowns {
            let tol_abs = if k < prep.num_voltage_unknowns {
                opts.vntol
            } else {
                opts.abstol
            };
            let tol = opts.reltol * x_new[k].abs().max(x[k].abs()) + tol_abs;
            metric = metric.max((x_new[k] - x[k]).abs() / tol);
        }
        if metric <= 1.0 && mem.limited == 0 {
            x.copy_from_slice(x_new);
            return Ok((x, iter));
        }
        if iter == opts.max_newton {
            // Final iteration failed: rank the offenders for the report.
            let worst = worst_unknowns(prep, &x, x_new, opts, 3);
            return Err(SpiceError::NoConvergence {
                analysis: "newton",
                iterations: opts.max_newton,
                time: None,
                report: Some(Box::new(ConvergenceReport {
                    rungs: Vec::new(),
                    worst,
                })),
            });
        }
        if cfg.adaptive {
            // Shrink the step fraction while the iteration is getting
            // worse, regrow it while it makes progress.
            if metric > prev_metric {
                alpha = (alpha * 0.5).max(ALPHA_MIN);
            } else {
                alpha = (alpha * 1.6).min(1.0);
            }
            prev_metric = metric;
        }
        if alpha >= 1.0 {
            x.copy_from_slice(x_new);
        } else {
            for k in 0..prep.num_unknowns {
                x[k] += alpha * (x_new[k] - x[k]);
            }
        }
    }
    unreachable!("loop returns on its final iteration");
}

/// Computes the DC operating point.
///
/// Strategy: plain Newton from a zero start; on failure, adaptive
/// damped Newton; then gmin stepping (a conductance from every node to
/// ground, progressively relaxed); then source stepping (all sources
/// ramped from 10 % to 100 %); and finally a pseudo-transient homotopy.
/// Rungs can be disabled individually through [`Options::ladder`].
///
/// # Errors
///
/// [`SpiceError::Singular`] for structurally singular circuits,
/// [`SpiceError::NoConvergence`] (carrying a
/// [`ConvergenceReport`]) when every
/// strategy fails.
#[deprecated(note = "use Session::op — Session is the primary analysis entry point")]
pub fn op(prep: &Prepared, opts: &Options) -> Result<OpResult> {
    op_eval(prep, opts)
}

/// Operating point warm-started from a previous solution (used by sweeps).
///
/// # Errors
///
/// Same as [`op`].
#[deprecated(note = "use Session::op_from — Session is the primary analysis entry point")]
pub fn op_from(prep: &Prepared, opts: &Options, x0: Option<&[f64]>) -> Result<OpResult> {
    op_from_eval(prep, opts, x0)
}

/// Crate-internal canonical operating-point entry (what [`Session::op`]
/// and the deprecated free [`op`] both call).
///
/// [`Session::op`]: crate::analysis::Session::op
pub(crate) fn op_eval(prep: &Prepared, opts: &Options) -> Result<OpResult> {
    op_from_eval(prep, opts, None)
}

/// Crate-internal warm-started operating point.
pub(crate) fn op_from_eval(
    prep: &Prepared,
    opts: &Options,
    x0: Option<&[f64]>,
) -> Result<OpResult> {
    let mut ws = SolverWorkspace::new(prep.num_unknowns, opts.solver);
    op_from_ws(prep, opts, x0, &mut ws)
}

/// [`op_from`] against a caller-provided workspace, so sweeps reuse one
/// assembled pattern and factor storage across all their points.
pub(crate) fn op_from_ws(
    prep: &Prepared,
    opts: &Options,
    x0: Option<&[f64]>,
    ws: &mut SolverWorkspace<f64>,
) -> Result<OpResult> {
    let t = opts.trace.tracer();
    if !t.enabled() {
        let mut stats = ContinuationStats::default();
        return op_strategies(prep, opts, x0, ws, &mut stats);
    }
    let span = t.span("op");
    ws.set_timing(true);
    let solver_before = ws.stats;
    let mut stats = ContinuationStats::default();
    let result = op_strategies(prep, opts, x0, ws, &mut stats);
    stats.emit(t, "op");
    ws.stats.delta(&solver_before).emit(t, "op");
    span.end();
    result
}

/// The continuation ladder behind every operating point: plain Newton,
/// adaptive damping, gmin stepping, source stepping, pseudo-transient.
/// `stats` accumulates work across all rungs regardless of which one
/// converges; on total failure the returned error carries a
/// [`ConvergenceReport`] describing every rung attempted.
fn op_strategies(
    prep: &Prepared,
    opts: &Options,
    x0: Option<&[f64]>,
    ws: &mut SolverWorkspace<f64>,
    stats: &mut ContinuationStats,
) -> Result<OpResult> {
    let n = prep.num_unknowns;
    let zero = vec![0.0; n];
    let start = x0.unwrap_or(&zero);
    let mode = Mode::Dc { source_scale: 1.0 };
    let mut rungs: Vec<RungReport> = Vec::new();
    let mut worst: Vec<WorstUnknown> = Vec::new();
    let mut total_iters = 0usize;
    // Records a failed rung and keeps the most recent worst-unknown
    // ranking for the final report.
    let fail = |rungs: &mut Vec<RungReport>,
                worst: &mut Vec<WorstUnknown>,
                r: RungReport,
                e: &SpiceError| {
        let w = error_worst(e);
        if !w.is_empty() {
            *worst = w;
        }
        rungs.push(r);
    };

    // 1. Plain Newton.
    stats.rungs_attempted += 1;
    let mut mem = NonlinMemory::new(prep);
    match newton_solve(prep, opts, &mode, &mut mem, start, ws, &NewtonCfg::plain()) {
        Ok((x, it)) => {
            stats.newton_iterations += it as u64;
            return Ok(OpResult { x, iterations: it });
        }
        Err(SpiceError::Singular { unknown }) => {
            // A structurally singular matrix will not be cured by source
            // stepping; gmin on the diagonal may cure floating nodes, so
            // try one damped pass before giving up.
            let mut mem = NonlinMemory::new(prep);
            let cfg = NewtonCfg::with_gmin(1e-9);
            match newton_solve(prep, opts, &mode, &mut mem, start, ws, &cfg) {
                Ok((x, it)) => {
                    stats.newton_iterations += it as u64;
                    return Ok(OpResult { x, iterations: it });
                }
                Err(e) if e.is_abort() => return Err(e),
                Err(_) => {}
            }
            // Post-mortem: when the circuit was compiled with lint off
            // (or the defect is value-induced), re-run the static
            // checks so the error names the structural cause instead of
            // just the pivot column.
            let report = crate::lint::lint_prepared(prep);
            if report.has_errors() {
                return Err(SpiceError::LintFailed(Box::new(report)));
            }
            return Err(SpiceError::Singular { unknown });
        }
        Err(e) => {
            if e.is_abort() {
                return Err(e);
            }
            let it = error_iterations(&e);
            total_iters += it;
            stats.newton_iterations += it as u64;
            if matches!(e, SpiceError::NonFinite { .. }) {
                stats.nonfinite_recoveries += 1;
            }
            fail(
                &mut rungs,
                &mut worst,
                RungReport::failed("newton", it, 1),
                &e,
            );
        }
    }
    budget_gate(opts, total_iters)?;

    // 2. Adaptive damped Newton: full Jacobian, fractional updates.
    if opts.ladder.damping {
        stats.rungs_attempted += 1;
        let mut mem = NonlinMemory::new(prep);
        match newton_solve(prep, opts, &mode, &mut mem, start, ws, &NewtonCfg::damped()) {
            Ok((x, it)) => {
                stats.newton_iterations += it as u64;
                stats.damped_iterations += it as u64;
                return Ok(OpResult {
                    x,
                    iterations: total_iters + it,
                });
            }
            Err(e) => {
                if e.is_abort() {
                    return Err(e);
                }
                let it = error_iterations(&e);
                total_iters += it;
                stats.newton_iterations += it as u64;
                stats.damped_iterations += it as u64;
                if matches!(e, SpiceError::NonFinite { .. }) {
                    stats.nonfinite_recoveries += 1;
                }
                fail(
                    &mut rungs,
                    &mut worst,
                    RungReport::failed("damped", it, 1),
                    &e,
                );
            }
        }
        budget_gate(opts, total_iters)?;
    }

    // 3. Gmin stepping.
    if opts.ladder.gmin_stepping {
        stats.rungs_attempted += 1;
        let mut x = start.to_vec();
        let mut mem = NonlinMemory::new(prep);
        let gmin_ladder = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 0.0];
        let mut rung_iters = 0usize;
        let mut stages = 0usize;
        let mut stalled: Option<SpiceError> = None;
        for &g in &gmin_ladder {
            stats.gmin_stages += 1;
            stages += 1;
            match newton_solve(
                prep,
                opts,
                &mode,
                &mut mem,
                &x,
                ws,
                &NewtonCfg::with_gmin(g),
            ) {
                Ok((xs, it)) => {
                    rung_iters += it;
                    stats.newton_iterations += it as u64;
                    x = xs;
                }
                Err(e) => {
                    if e.is_abort() {
                        return Err(e);
                    }
                    rung_iters += error_iterations(&e);
                    stats.newton_iterations += error_iterations(&e) as u64;
                    if matches!(e, SpiceError::NonFinite { .. }) {
                        stats.nonfinite_recoveries += 1;
                    }
                    stalled = Some(e);
                    break;
                }
            }
            budget_gate(opts, total_iters + rung_iters)?;
        }
        total_iters += rung_iters;
        match stalled {
            None => {
                return Ok(OpResult {
                    x,
                    iterations: total_iters,
                })
            }
            Some(e) => {
                let mut r = RungReport::failed("gmin", rung_iters, stages);
                r.detail = format!("stalled at stage {stages} of {}", gmin_ladder.len());
                fail(&mut rungs, &mut worst, r, &e);
            }
        }
    }

    // 4. Source stepping.
    if opts.ladder.source_stepping {
        stats.rungs_attempted += 1;
        let mut x = vec![0.0; n];
        let mut mem = NonlinMemory::new(prep);
        let mut scale = 0.0f64;
        let mut step = 0.1f64;
        let mut failures = 0usize;
        let mut rung_iters = 0usize;
        let mut steps = 0usize;
        let mut gave_up: Option<SpiceError> = None;
        while scale < 1.0 {
            let target = (scale + step).min(1.0);
            let mode = Mode::Dc {
                source_scale: target,
            };
            stats.source_steps += 1;
            steps += 1;
            match newton_solve(prep, opts, &mode, &mut mem, &x, ws, &NewtonCfg::plain()) {
                Ok((xs, it)) => {
                    rung_iters += it;
                    stats.newton_iterations += it as u64;
                    x = xs;
                    scale = target;
                    step = (step * 1.5).min(0.25);
                }
                Err(e) => {
                    if e.is_abort() {
                        return Err(e);
                    }
                    rung_iters += error_iterations(&e);
                    stats.newton_iterations += error_iterations(&e) as u64;
                    if matches!(e, SpiceError::NonFinite { .. }) {
                        stats.nonfinite_recoveries += 1;
                    }
                    failures += 1;
                    step *= 0.25;
                    if failures > 12 || step < 1e-5 {
                        gave_up = Some(e);
                        break;
                    }
                }
            }
            budget_gate(opts, total_iters + rung_iters)?;
        }
        total_iters += rung_iters;
        match gave_up {
            None => {
                return Ok(OpResult {
                    x,
                    iterations: total_iters,
                })
            }
            Some(e) => {
                let mut r = RungReport::failed("source", rung_iters, steps);
                r.detail = format!("stalled at scale {scale:.3}");
                fail(&mut rungs, &mut worst, r, &e);
            }
        }
    }

    // 5. Pseudo-transient homotopy: artificial capacitors from every
    // node to an anchor, relaxed toward zero.
    if opts.ladder.ptran {
        stats.rungs_attempted += 1;
        match ptran_homotopy(prep, opts, &mode, start, ws, stats, total_iters) {
            Ok((x, it)) => {
                total_iters += it;
                return Ok(OpResult {
                    x,
                    iterations: total_iters,
                });
            }
            Err((r, e, it)) => {
                total_iters += it;
                if e.is_abort() {
                    return Err(e);
                }
                fail(&mut rungs, &mut worst, r, &e);
            }
        }
    }

    Err(SpiceError::NoConvergence {
        analysis: "op",
        iterations: total_iters,
        time: None,
        report: Some(Box::new(ConvergenceReport { rungs, worst })),
    })
}

/// Pseudo-transient homotopy: each step solves the circuit with an
/// artificial conductance `g` from every voltage unknown to its value
/// at the previous step (a backward-Euler companion of a grounded
/// capacitor). `g` relaxes toward zero — fast while steps converge
/// easily, backing off when they fail — until the anchor no longer
/// binds and a plain-Newton polish confirms the true solution.
///
/// Returns `(solution, iterations)` or `(rung report, last error,
/// iterations)` so the caller can fold the failure into its ladder
/// report.
#[allow(clippy::type_complexity, clippy::result_large_err)]
fn ptran_homotopy(
    prep: &Prepared,
    opts: &Options,
    mode: &Mode,
    start: &[f64],
    ws: &mut SolverWorkspace<f64>,
    stats: &mut ContinuationStats,
    base_iters: usize,
) -> std::result::Result<(Vec<f64>, usize), (RungReport, SpiceError, usize)> {
    const G_START: f64 = 1.0;
    const G_STOP: f64 = 1e-12;
    const G_MAX: f64 = 1e6;
    const MAX_STEPS: usize = 400;
    const MAX_CONSECUTIVE_FAILURES: usize = 6;

    let mut anchor = start.to_vec();
    let mut g = G_START;
    let mut rung_iters = 0usize;
    let mut steps = 0usize;
    let mut consecutive_failures = 0usize;
    let mut mem = NonlinMemory::new(prep);
    let mut last_err = SpiceError::NoConvergence {
        analysis: "ptran",
        iterations: 0,
        time: None,
        report: None,
    };

    while steps < MAX_STEPS {
        if let Err(e) = budget_gate(opts, base_iters + rung_iters) {
            last_err = e;
            break;
        }
        steps += 1;
        stats.ptran_steps += 1;
        let cfg = NewtonCfg {
            diag_gmin: g,
            anchor: Some(&anchor),
            damping: 1.0,
            adaptive: true,
        };
        let attempt = newton_solve(prep, opts, mode, &mut mem, &anchor, ws, &cfg);
        match attempt {
            Ok((x, it)) => {
                rung_iters += it;
                stats.newton_iterations += it as u64;
                consecutive_failures = 0;
                let moved = anchor
                    .iter()
                    .zip(&x)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                anchor = x;
                if g <= G_STOP {
                    // Anchor has essentially no strength left: polish
                    // with plain Newton to certify the real circuit.
                    let mut mem = NonlinMemory::new(prep);
                    match newton_solve(
                        prep,
                        opts,
                        mode,
                        &mut mem,
                        &anchor,
                        ws,
                        &NewtonCfg::damped(),
                    ) {
                        Ok((x, it)) => {
                            rung_iters += it;
                            stats.newton_iterations += it as u64;
                            return Ok((x, rung_iters));
                        }
                        Err(e) => {
                            rung_iters += error_iterations(&e);
                            stats.newton_iterations += error_iterations(&e) as u64;
                            if matches!(e, SpiceError::NonFinite { .. }) {
                                stats.nonfinite_recoveries += 1;
                            }
                            last_err = e;
                            break;
                        }
                    }
                }
                // Relax faster when the step barely moved the solution.
                let fast = it <= 5 && moved < 0.5;
                g *= if fast { 0.2 } else { 0.5 };
            }
            Err(e) => {
                if e.is_abort() {
                    last_err = e;
                    break;
                }
                rung_iters += error_iterations(&e);
                stats.newton_iterations += error_iterations(&e) as u64;
                if matches!(e, SpiceError::NonFinite { .. }) {
                    stats.nonfinite_recoveries += 1;
                }
                consecutive_failures += 1;
                g *= 10.0;
                last_err = e;
                if consecutive_failures > MAX_CONSECUTIVE_FAILURES || g > G_MAX {
                    break;
                }
            }
        }
    }

    let mut r = RungReport::failed("ptran", rung_iters, steps);
    r.detail = format!("stopped at g = {g:.1e}");
    Err((r, last_err, rung_iters))
}

/// Re-evaluates the Gummel–Poon state of a named BJT at a converged
/// operating point (normalized NPN polarity).
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] if the element is not a BJT.
pub fn bjt_operating(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    name: &str,
) -> Result<BjtOperating> {
    let idx = prep
        .circuit
        .find_element(name)
        .ok_or_else(|| SpiceError::Measure(format!("no element named {name}")))?;
    prep.devices()[idx]
        .bjt_operating(&OpCtx { prep, opts, x })
        .ok_or_else(|| SpiceError::Measure(format!("{name} is not a BJT")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::model::{BjtModel, BjtPolarity, DiodeModel};

    fn opts() -> Options {
        Options::default()
    }

    /// Test shims over the canonical entries (shadow the deprecated
    /// free functions of the same names).
    fn op(prep: &Prepared, o: &Options) -> Result<OpResult> {
        op_eval(prep, o)
    }

    fn op_from(prep: &Prepared, o: &Options, x0: Option<&[f64]>) -> Result<OpResult> {
        op_from_eval(prep, o, x0)
    }

    #[test]
    fn linear_divider_in_one_shot() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 12.0);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        assert!((prep.voltage(&r.x, b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let vd = prep.voltage(&r.x, d);
        assert!(vd > 0.55 && vd < 0.75, "vd = {vd}");
        // i = (5 - vd)/1k through the diode: check consistency with the
        // source branch current.
        let i_src = r.x[prep.branch_slot("V1").unwrap()];
        assert!((i_src + (5.0 - vd) / 1e3).abs() < 1e-9);
    }

    #[test]
    fn diode_reverse_blocks() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), -5.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        // Essentially the full supply across the diode.
        assert!((prep.voltage(&r.x, d) + 5.0).abs() < 1e-2);
    }

    #[test]
    fn npn_common_emitter_bias() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.resistor("RB", vcc, b, 430e3);
        c.resistor("RC", vcc, col, 1e3);
        let mut m = BjtModel::named("n1");
        m.bf = 100.0;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let vb = prep.voltage(&r.x, b);
        let vc = prep.voltage(&r.x, col);
        // With IS = 1e-16 a ~1 mA collector current needs vbe ~ 0.77 V.
        assert!(vb > 0.6 && vb < 0.85, "vb = {vb}");
        // ib ~ (5-0.65)/430k ~ 10 uA, ic ~ 1 mA, vc ~ 5 - 1 = 4 V.
        assert!(vc > 3.0 && vc < 4.7, "vc = {vc}");
        let q = bjt_operating(&prep, &r.x, &opts(), "Q1").unwrap();
        assert!(q.ic > 0.5e-3 && q.ic < 1.6e-3, "ic = {}", q.ic);
        assert!((q.beta_dc() - 100.0).abs() < 2.0);
    }

    #[test]
    fn pnp_mirror_polarity() {
        let mut c = Circuit::new();
        let vee = c.node("vee");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VEE", vee, Circuit::gnd(), 5.0);
        c.resistor("RB", b, Circuit::gnd(), 430e3);
        c.resistor("RC", col, Circuit::gnd(), 1e3);
        let mut m = BjtModel::named("p1");
        m.polarity = BjtPolarity::Pnp;
        m.bf = 100.0;
        let mi = c.add_bjt_model(m);
        // Emitter at VEE (the + rail), collector pulled to ground.
        c.bjt("Q1", col, b, vee, mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let vb = prep.voltage(&r.x, b);
        // Base sits one VEB below the emitter rail.
        assert!(vb > 4.2 && vb < 4.5, "vb = {vb}");
        let vc = prep.voltage(&r.x, col);
        assert!(vc > 0.2, "vc = {vc}");
    }

    #[test]
    fn bjt_with_parasitic_resistances_converges() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        let e = c.node("e");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.8);
        c.resistor("RC", vcc, col, 500.0);
        c.resistor("RE", e, Circuit::gnd(), 100.0);
        let mut m = BjtModel::named("n2");
        m.rb = 150.0;
        m.re = 2.0;
        m.rc = 30.0;
        m.cje = 1e-13;
        m.cjc = 5e-14;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, e, mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let ve = prep.voltage(&r.x, e);
        // Emitter follower-ish: ve ~ 0.8 - 0.7 = ~0.1..0.2 V
        assert!(ve > 0.02 && ve < 0.3, "ve = {ve}");
    }

    #[test]
    fn floating_node_reports_singular_or_resolves_via_gmin() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("floating");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.capacitor("C1", f, Circuit::gnd(), 1e-12);
        // DC: the capacitor is open, node `floating` has no DC path.
        // The default compile rejects it up front, by name.
        match Prepared::compile(&c) {
            Err(SpiceError::LintFailed(report)) => {
                assert!(report.has_errors());
                assert!(
                    report.to_string().contains("floating"),
                    "diagnostic should name the node: {report}"
                );
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
        // With lint off, the engine should either flag it (the singular
        // post-mortem re-runs the static checks) or pin it via gmin.
        let prep = Prepared::compile_with(&c, crate::lint::LintPolicy::Off).unwrap();
        match op(&prep, &opts()) {
            Ok(r) => assert!(prep.voltage(&r.x, f).abs() < 1e-6),
            Err(SpiceError::Singular { unknown }) => assert!(unknown.contains("floating")),
            Err(SpiceError::LintFailed(report)) => {
                assert!(report.to_string().contains("floating"), "{report}")
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn series_diode_chain_needs_limiting() {
        // A hard start: 3 stacked diodes directly across a source. Newton
        // without pnjlim would overflow immediately.
        let mut c = Circuit::new();
        let a = c.node("a");
        let n1 = c.node("n1");
        let n2 = c.node("n2");
        c.vsource("V1", a, Circuit::gnd(), 2.1);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", a, n1, dm, 1.0);
        c.diode("D2", n1, n2, dm, 1.0);
        c.diode("D3", n2, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let v1 = prep.voltage(&r.x, n1);
        let v2 = prep.voltage(&r.x, n2);
        assert!((v1 - 1.4).abs() < 0.1, "v1 = {v1}");
        assert!((v2 - 0.7).abs() < 0.05, "v2 = {v2}");
    }

    #[test]
    fn pre_cancelled_token_aborts_op() {
        use crate::analysis::control::CancelToken;
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let o = Options::default().cancel_token(&token);
        match op(&prep, &o) {
            Err(SpiceError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The same options without the cancel still solve.
        assert!(op(&prep, &Options::default()).is_ok());
    }

    #[test]
    fn newton_budget_degrades_to_typed_report() {
        use crate::analysis::control::Budget;
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        // One Newton iteration is not enough for a cold diode solve, so
        // the ladder would normally walk further rungs; the budget stops
        // it right after the first rung with a typed error.
        let o = Options::default()
            .max_newton(1)
            .budget(Budget::unlimited().max_newton(1));
        match op(&prep, &o) {
            Err(SpiceError::BudgetExhausted {
                analysis, resource, ..
            }) => {
                assert_eq!(analysis, "op");
                assert_eq!(resource, "newton_iterations");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // A generous budget does not perturb the solve.
        let o = Options::default().budget(Budget::unlimited().max_newton(10_000));
        assert!(op(&prep, &o).is_ok());
    }

    #[test]
    fn warm_start_converges_fast() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 3.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let cold = op(&prep, &opts()).unwrap();
        let warm = op_from(&prep, &opts(), Some(&cold.x)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!(warm.iterations <= 3, "warm took {}", warm.iterations);
    }
}
