//! DC operating-point analysis: Newton–Raphson with gmin stepping and
//! source stepping fallbacks.

use crate::analysis::solver::{singular_unknown, SolverWorkspace};
use crate::analysis::stamp::{
    converged, real_pattern, stamp_linear, stamp_nonlinear, MnaSink, Mode, NonlinMemory, Options,
};
use crate::circuit::Prepared;
use crate::devices::{BjtOperating, OpCtx};
use crate::error::{Result, SpiceError};
use ahfic_trace::ContinuationStats;

/// Converged operating point.
#[derive(Clone, Debug)]
pub struct OpResult {
    /// Solution vector (node voltages then branch currents).
    pub x: Vec<f64>,
    /// Newton iterations spent (total across continuation stages).
    pub iterations: usize,
}

/// Runs one Newton solve in the given mode, reusing `ws` for assembly,
/// factorization, and solution buffers — no heap allocation inside the
/// iteration loop beyond the returned solution vector.
///
/// `diag_gmin` is added to every voltage-unknown diagonal (used by gmin
/// stepping; `0.0` normally). With `opts.linear_replay` on, the linear
/// partition (plus the gmin diagonal) is stamped once and replayed by
/// `memcpy` on every subsequent iteration; only the nonlinear partition
/// is re-stamped. Returns the solution and iteration count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve(
    prep: &Prepared,
    opts: &Options,
    mode: &Mode,
    mem: &mut NonlinMemory,
    x0: &[f64],
    diag_gmin: f64,
    ws: &mut SolverWorkspace<f64>,
) -> Result<(Vec<f64>, usize)> {
    let mut x = x0.to_vec();
    let replay = opts.linear_replay;
    // The baseline depends on mode and diag_gmin, both fixed for the
    // duration of this call but not across calls sharing the workspace.
    ws.invalidate_checkpoint();
    if ws.needs_pattern() {
        let pat = real_pattern(prep, &x, opts, mode, prep.num_voltage_unknowns);
        ws.preset_pattern(&pat);
    }
    for iter in 1..=opts.max_newton {
        loop {
            if !(replay && ws.restore()) {
                ws.kernel.reset();
                ws.rhs.fill(0.0);
                stamp_linear(prep, &x, opts, mode, &mut ws.kernel, &mut ws.rhs);
                // Stamped even at 0.0 so the stamp sequence is identical
                // across the OP strategies sharing a workspace.
                for k in 0..prep.num_voltage_unknowns {
                    ws.kernel.add(k, k, diag_gmin);
                }
                if replay {
                    ws.checkpoint();
                }
            }
            stamp_nonlinear(prep, &x, opts, mode, mem, &mut ws.kernel, &mut ws.rhs);
            if !ws.finish_assembly() {
                break;
            }
        }
        ws.factor().map_err(|e| singular_unknown(prep, e))?;
        let x_new = ws.solve();
        if x_new.iter().any(|v| !v.is_finite()) {
            return Err(SpiceError::NoConvergence {
                analysis: "newton",
                iterations: iter,
                time: None,
            });
        }
        let done = converged(prep, &x, x_new, opts) && !mem.limited;
        x.copy_from_slice(x_new);
        if done {
            return Ok((x, iter));
        }
    }
    Err(SpiceError::NoConvergence {
        analysis: "newton",
        iterations: opts.max_newton,
        time: None,
    })
}

/// Computes the DC operating point.
///
/// Strategy: plain Newton from a zero start; on failure, gmin stepping
/// (a conductance from every node to ground, progressively relaxed);
/// on failure, source stepping (all sources ramped from 10 % to 100 %).
///
/// # Errors
///
/// [`SpiceError::Singular`] for structurally singular circuits,
/// [`SpiceError::NoConvergence`] when every strategy fails.
pub fn op(prep: &Prepared, opts: &Options) -> Result<OpResult> {
    op_from(prep, opts, None)
}

/// Operating point warm-started from a previous solution (used by sweeps).
///
/// # Errors
///
/// Same as [`op`].
pub fn op_from(prep: &Prepared, opts: &Options, x0: Option<&[f64]>) -> Result<OpResult> {
    let mut ws = SolverWorkspace::new(prep.num_unknowns, opts.solver);
    op_from_ws(prep, opts, x0, &mut ws)
}

/// [`op_from`] against a caller-provided workspace, so sweeps reuse one
/// assembled pattern and factor storage across all their points.
pub(crate) fn op_from_ws(
    prep: &Prepared,
    opts: &Options,
    x0: Option<&[f64]>,
    ws: &mut SolverWorkspace<f64>,
) -> Result<OpResult> {
    let t = opts.trace.tracer();
    if !t.enabled() {
        let mut stats = ContinuationStats::default();
        return op_strategies(prep, opts, x0, ws, &mut stats);
    }
    let span = t.span("op");
    ws.set_timing(true);
    let solver_before = ws.stats;
    let mut stats = ContinuationStats::default();
    let result = op_strategies(prep, opts, x0, ws, &mut stats);
    stats.emit(t, "op");
    ws.stats.delta(&solver_before).emit(t, "op");
    span.end();
    result
}

/// The continuation ladder behind every operating point: plain Newton,
/// then gmin stepping, then source stepping. `stats` accumulates work
/// across all stages regardless of which one converges.
fn op_strategies(
    prep: &Prepared,
    opts: &Options,
    x0: Option<&[f64]>,
    ws: &mut SolverWorkspace<f64>,
    stats: &mut ContinuationStats,
) -> Result<OpResult> {
    let n = prep.num_unknowns;
    let zero = vec![0.0; n];
    let start = x0.unwrap_or(&zero);
    let mode = Mode::Dc { source_scale: 1.0 };

    // 1. Plain Newton.
    let mut mem = NonlinMemory::new(prep);
    let mut total_iters = 0usize;
    match newton_solve(prep, opts, &mode, &mut mem, start, 0.0, ws) {
        Ok((x, it)) => {
            stats.newton_iterations += it as u64;
            return Ok(OpResult { x, iterations: it });
        }
        Err(SpiceError::Singular { unknown }) => {
            // A structurally singular matrix will not be cured by source
            // stepping; gmin on the diagonal may cure floating nodes, so
            // try one damped pass before giving up.
            let mut mem = NonlinMemory::new(prep);
            if let Ok((x, it)) = newton_solve(prep, opts, &mode, &mut mem, start, 1e-9, ws) {
                stats.newton_iterations += it as u64;
                return Ok(OpResult { x, iterations: it });
            }
            return Err(SpiceError::Singular { unknown });
        }
        Err(SpiceError::NoConvergence { iterations, .. }) => {
            stats.newton_iterations += iterations as u64;
        }
        Err(_) => {}
    }

    // 2. Gmin stepping.
    let mut x = start.to_vec();
    let mut mem = NonlinMemory::new(prep);
    let gmin_ladder = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 0.0];
    let mut ladder_ok = true;
    for &g in &gmin_ladder {
        stats.gmin_stages += 1;
        match newton_solve(prep, opts, &mode, &mut mem, &x, g, ws) {
            Ok((xs, it)) => {
                total_iters += it;
                stats.newton_iterations += it as u64;
                x = xs;
            }
            Err(_) => {
                ladder_ok = false;
                break;
            }
        }
    }
    if ladder_ok {
        return Ok(OpResult {
            x,
            iterations: total_iters,
        });
    }

    // 3. Source stepping.
    let mut x = vec![0.0; n];
    let mut mem = NonlinMemory::new(prep);
    let mut scale = 0.0f64;
    let mut step = 0.1f64;
    let mut failures = 0usize;
    while scale < 1.0 {
        let target = (scale + step).min(1.0);
        let mode = Mode::Dc {
            source_scale: target,
        };
        stats.source_steps += 1;
        match newton_solve(prep, opts, &mode, &mut mem, &x, 0.0, ws) {
            Ok((xs, it)) => {
                total_iters += it;
                stats.newton_iterations += it as u64;
                x = xs;
                scale = target;
                step = (step * 1.5).min(0.25);
            }
            Err(e) => {
                failures += 1;
                step *= 0.25;
                if failures > 12 || step < 1e-5 {
                    return Err(match e {
                        SpiceError::Singular { .. } => e,
                        _ => SpiceError::NoConvergence {
                            analysis: "op",
                            iterations: total_iters,
                            time: None,
                        },
                    });
                }
            }
        }
    }
    Ok(OpResult {
        x,
        iterations: total_iters,
    })
}

/// Re-evaluates the Gummel–Poon state of a named BJT at a converged
/// operating point (normalized NPN polarity).
///
/// # Errors
///
/// Returns [`SpiceError::Measure`] if the element is not a BJT.
pub fn bjt_operating(
    prep: &Prepared,
    x: &[f64],
    opts: &Options,
    name: &str,
) -> Result<BjtOperating> {
    let idx = prep
        .circuit
        .find_element(name)
        .ok_or_else(|| SpiceError::Measure(format!("no element named {name}")))?;
    prep.devices()[idx]
        .bjt_operating(&OpCtx { prep, opts, x })
        .ok_or_else(|| SpiceError::Measure(format!("{name} is not a BJT")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::model::{BjtModel, BjtPolarity, DiodeModel};

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn linear_divider_in_one_shot() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 12.0);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        assert!((prep.voltage(&r.x, b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 5.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let vd = prep.voltage(&r.x, d);
        assert!(vd > 0.55 && vd < 0.75, "vd = {vd}");
        // i = (5 - vd)/1k through the diode: check consistency with the
        // source branch current.
        let i_src = r.x[prep.branch_slot("V1").unwrap()];
        assert!((i_src + (5.0 - vd) / 1e3).abs() < 1e-9);
    }

    #[test]
    fn diode_reverse_blocks() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), -5.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        // Essentially the full supply across the diode.
        assert!((prep.voltage(&r.x, d) + 5.0).abs() < 1e-2);
    }

    #[test]
    fn npn_common_emitter_bias() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.resistor("RB", vcc, b, 430e3);
        c.resistor("RC", vcc, col, 1e3);
        let mut m = BjtModel::named("n1");
        m.bf = 100.0;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let vb = prep.voltage(&r.x, b);
        let vc = prep.voltage(&r.x, col);
        // With IS = 1e-16 a ~1 mA collector current needs vbe ~ 0.77 V.
        assert!(vb > 0.6 && vb < 0.85, "vb = {vb}");
        // ib ~ (5-0.65)/430k ~ 10 uA, ic ~ 1 mA, vc ~ 5 - 1 = 4 V.
        assert!(vc > 3.0 && vc < 4.7, "vc = {vc}");
        let q = bjt_operating(&prep, &r.x, &opts(), "Q1").unwrap();
        assert!(q.ic > 0.5e-3 && q.ic < 1.6e-3, "ic = {}", q.ic);
        assert!((q.beta_dc() - 100.0).abs() < 2.0);
    }

    #[test]
    fn pnp_mirror_polarity() {
        let mut c = Circuit::new();
        let vee = c.node("vee");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VEE", vee, Circuit::gnd(), 5.0);
        c.resistor("RB", b, Circuit::gnd(), 430e3);
        c.resistor("RC", col, Circuit::gnd(), 1e3);
        let mut m = BjtModel::named("p1");
        m.polarity = BjtPolarity::Pnp;
        m.bf = 100.0;
        let mi = c.add_bjt_model(m);
        // Emitter at VEE (the + rail), collector pulled to ground.
        c.bjt("Q1", col, b, vee, mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let vb = prep.voltage(&r.x, b);
        // Base sits one VEB below the emitter rail.
        assert!(vb > 4.2 && vb < 4.5, "vb = {vb}");
        let vc = prep.voltage(&r.x, col);
        assert!(vc > 0.2, "vc = {vc}");
    }

    #[test]
    fn bjt_with_parasitic_resistances_converges() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        let e = c.node("e");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.8);
        c.resistor("RC", vcc, col, 500.0);
        c.resistor("RE", e, Circuit::gnd(), 100.0);
        let mut m = BjtModel::named("n2");
        m.rb = 150.0;
        m.re = 2.0;
        m.rc = 30.0;
        m.cje = 1e-13;
        m.cjc = 5e-14;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, e, mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let ve = prep.voltage(&r.x, e);
        // Emitter follower-ish: ve ~ 0.8 - 0.7 = ~0.1..0.2 V
        assert!(ve > 0.02 && ve < 0.3, "ve = {ve}");
    }

    #[test]
    fn floating_node_reports_singular_or_resolves_via_gmin() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("floating");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.capacitor("C1", f, Circuit::gnd(), 1e-12);
        let prep = Prepared::compile(&c).unwrap();
        // DC: the capacitor is open, node `floating` has no DC path. The
        // engine should either flag it or pin it via diagonal gmin.
        match op(&prep, &opts()) {
            Ok(r) => assert!(prep.voltage(&r.x, f).abs() < 1e-6),
            Err(SpiceError::Singular { unknown }) => assert!(unknown.contains("floating")),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn series_diode_chain_needs_limiting() {
        // A hard start: 3 stacked diodes directly across a source. Newton
        // without pnjlim would overflow immediately.
        let mut c = Circuit::new();
        let a = c.node("a");
        let n1 = c.node("n1");
        let n2 = c.node("n2");
        c.vsource("V1", a, Circuit::gnd(), 2.1);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", a, n1, dm, 1.0);
        c.diode("D2", n1, n2, dm, 1.0);
        c.diode("D3", n2, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let r = op(&prep, &opts()).unwrap();
        let v1 = prep.voltage(&r.x, n1);
        let v2 = prep.voltage(&r.x, n2);
        assert!((v1 - 1.4).abs() < 0.1, "v1 = {v1}");
        assert!((v2 - 0.7).abs() < 0.05, "v2 = {v2}");
    }

    #[test]
    fn warm_start_converges_fast() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.vsource("V1", a, Circuit::gnd(), 3.0);
        c.resistor("R1", a, d, 1e3);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", d, Circuit::gnd(), dm, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let cold = op(&prep, &opts()).unwrap();
        let warm = op_from(&prep, &opts(), Some(&cold.x)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!(warm.iterations <= 3, "warm took {}", warm.iterations);
    }
}
