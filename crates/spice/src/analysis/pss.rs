//! Periodic steady state by shooting Newton.
//!
//! The shooting formulation reuses the transient machinery wholesale:
//! one evaluation of the period map `Φ(x₀)` integrates the circuit over
//! exactly one period on a *fixed* grid (uniform steps merged with the
//! device-declared source breakpoints), using the same `newton_solve` /
//! `ChargeBank` contracts as the transient engine. Periodicity is the
//! root-finding problem `Φ(x₀) − x₀ = 0`; each shooting update solves
//!
//! ```text
//! (M − I)·dx = −(Φ(x₀) − x₀),    M = ∂Φ/∂x₀  (the monodromy matrix)
//! ```
//!
//! with matrix-free GMRES: `M·v` is never formed — each Krylov matvec
//! re-integrates one period from a perturbed start
//! `(Φ(x₀ + εv) − Φ(x₀))/ε`. For a dissipative circuit the monodromy
//! spectrum is contractive, so GMRES converges in a handful of matvecs
//! and the whole solve costs a few dozen period integrations instead of
//! the hundreds of periods a brute-force transient needs to ring down.
//!
//! Cancellation and budgets are observed at shooting-iteration
//! boundaries (and inside every inner Newton solve); a stopped run
//! returns the best orbit so far with a typed [`PssStatus`], mirroring
//! the transient contract.

use crate::analysis::op::{newton_solve, op_eval, NewtonCfg};
use crate::analysis::solver::SolverWorkspace;
use crate::analysis::stamp::{
    update_all_charges, ChargeBank, ChargeState, Mode, NonlinMemory, Options,
};
use crate::circuit::Prepared;
use crate::error::{Result, SpiceError};
use crate::wave::Waveform;
use ahfic_num::gmres::gmres;
use ahfic_num::{GmresOptions, IdentityPrecond, LinearOperator};
use ahfic_trace::TranStats;

/// Periodic-steady-state parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PssParams {
    /// The fundamental period (s) — the circuit's sources must be
    /// periodic with this period.
    pub period: f64,
    /// Uniform timesteps per period (device breakpoints are merged in
    /// on top). The grid is fixed so the period map is a smooth
    /// function of the starting state, which the finite-difference
    /// monodromy products require.
    pub steps_per_period: usize,
    /// Maximum shooting-Newton iterations.
    pub max_shooting: usize,
    /// Plain transient periods integrated before shooting starts, to
    /// drop onto the attractor's basin cheaply (each costs one period).
    pub warmup_periods: usize,
    /// Knobs for the matrix-free GMRES shooting-update solve. Each
    /// inner iteration costs one full period integration, so the
    /// defaults are much tighter than the MNA-backend defaults.
    pub gmres: GmresOptions,
}

impl PssParams {
    /// Conventional setup: `steps_per_period` uniform steps over
    /// `period`, at most 25 shooting iterations, two warmup periods.
    pub fn new(period: f64, steps_per_period: usize) -> Self {
        PssParams {
            period,
            steps_per_period,
            max_shooting: 25,
            warmup_periods: 2,
            gmres: GmresOptions {
                restart: 20,
                tol: 1e-8,
                max_iters: 40,
            },
        }
    }

    /// Sets the shooting-iteration cap.
    pub fn max_shooting(mut self, n: usize) -> Self {
        self.max_shooting = n;
        self
    }

    /// Sets the warmup period count.
    pub fn warmup_periods(mut self, n: usize) -> Self {
        self.warmup_periods = n;
        self
    }

    /// Sets the GMRES knobs for the shooting-update solve.
    pub fn gmres(mut self, gmres: GmresOptions) -> Self {
        self.gmres = gmres;
        self
    }
}

/// Why a periodic-steady-state run stopped.
///
/// `#[non_exhaustive]`: more stop reasons may grow here; match with a
/// wildcard arm.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PssStatus {
    /// The shooting residual met tolerance; the waveform is the
    /// converged periodic orbit.
    Converged,
    /// A [`CancelToken`](crate::analysis::CancelToken) fired between
    /// shooting iterations (or inside an inner Newton solve); the
    /// waveform holds the best orbit integrated so far.
    Cancelled {
        /// Shooting iterations completed before the stop.
        iterations: u64,
    },
    /// A [`Budget`](crate::analysis::Budget) limit fired.
    BudgetExhausted {
        /// Which limit (`"steps"`, `"newton_iterations"`,
        /// `"wall_clock_ms"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// Shooting iterations completed before the stop.
        iterations: u64,
    },
}

/// Typed result of a periodic-steady-state run: one period of the
/// orbit plus why and where the shooting iteration stopped.
///
/// `#[non_exhaustive]`: construct only through the analysis entry
/// points.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct PssResult {
    /// One period of the orbit sampled on the shooting grid
    /// (axis = time within `[0, period]`, endpoints included; the last
    /// sample equals the first to within the shooting tolerance when
    /// converged).
    pub wave: Waveform,
    /// Why the run stopped.
    pub status: PssStatus,
    /// Shooting-Newton iterations taken.
    pub shooting_iterations: u64,
    /// Inner GMRES (monodromy matvec) iterations across all shooting
    /// updates — each one cost a full period integration.
    pub gmres_iterations: u64,
    /// Newton iterations spent across every period integration.
    pub newton_iterations: u64,
    /// Final scaled shooting residual (`≤ 1` means converged: every
    /// unknown's period mismatch is within `reltol`/`vntol`/`abstol`).
    pub residual: f64,
    /// The fundamental period (s), echoed from the parameters.
    pub period: f64,
}

impl PssResult {
    /// One period of the orbit (best-so-far when the run was stopped).
    pub fn wave(&self) -> &Waveform {
        &self.wave
    }

    /// Consumes the result, returning the orbit waveform.
    pub fn into_wave(self) -> Waveform {
        self.wave
    }

    /// Why the run stopped.
    pub fn status(&self) -> &PssStatus {
        &self.status
    }

    /// Whether the shooting iteration converged.
    pub fn is_converged(&self) -> bool {
        self.status == PssStatus::Converged
    }

    /// The starting state of the periodic orbit (the first sample).
    pub fn x0(&self) -> Vec<f64> {
        self.wave
            .signal_names()
            .iter()
            .map(|s| {
                #[allow(clippy::expect_used)] // signals were pushed from unknown_names
                self.wave.signal(s).expect("own signal")[0]
            })
            .collect()
    }
}

/// Reusable one-period integrator: the fixed grid plus every buffer a
/// period integration needs, so the dozens of integrations a shooting
/// solve performs allocate nothing after the first.
pub(crate) struct PeriodIntegrator<'a> {
    prep: &'a Prepared,
    opts: &'a Options,
    /// Fixed time grid over `[0, period]`, endpoints included.
    pub(crate) grid: Vec<f64>,
    ws: SolverWorkspace<f64>,
    mem: NonlinMemory,
    bank: ChargeBank,
    scratch_states: Vec<ChargeState>,
    /// Newton iterations across every integration so far.
    pub(crate) newton_iterations: u64,
    /// Timesteps attempted across every integration so far.
    pub(crate) steps: u64,
}

/// Bisection depth per grid interval when an inner Newton solve fails:
/// up to `2^MAX_SPLIT` substeps before giving up.
const MAX_SPLIT: u32 = 6;

impl<'a> PeriodIntegrator<'a> {
    pub(crate) fn new(prep: &'a Prepared, opts: &'a Options, params: &PssParams) -> Self {
        // Uniform grid merged with the device-declared breakpoints
        // (source corners), so sharp LO edges are hit exactly on every
        // integration and Φ stays smooth in x₀.
        let t_stop = params.period;
        let n_steps = params.steps_per_period.max(4);
        let mut grid: Vec<f64> = (0..=n_steps)
            .map(|k| t_stop * k as f64 / n_steps as f64)
            .collect();
        let mut bps: Vec<f64> = Vec::new();
        for d in prep.devices() {
            d.breakpoints(&prep.circuit, t_stop, &mut bps);
        }
        grid.extend(bps.into_iter().filter(|&t| t > 0.0 && t < t_stop));
        grid.sort_by(|a, b| a.total_cmp(b));
        grid.dedup_by(|a, b| (*a - *b).abs() <= t_stop * 1e-12);
        let mut ws = SolverWorkspace::new(prep.num_unknowns, opts.solver);
        ws.set_timing(opts.trace.tracer().enabled());
        let bank = ChargeBank::new(prep);
        let scratch_states = bank.states.clone();
        PeriodIntegrator {
            prep,
            opts,
            grid,
            ws,
            mem: NonlinMemory::new(prep),
            bank,
            scratch_states,
            newton_iterations: 0,
            steps: 0,
        }
    }

    /// Integrates one period from `x0`, returning the end state. When
    /// `record` is given, every grid sample (including the start) is
    /// pushed into it. `t_offset` shifts the grid in absolute time —
    /// the PSS shooting loop always passes `0.0`; the periodic
    /// small-signal analysis tiles consecutive periods with it.
    pub(crate) fn integrate(
        &mut self,
        x0: &[f64],
        t_offset: f64,
        mut record: Option<&mut Waveform>,
    ) -> Result<Vec<f64>> {
        let mut x = x0.to_vec();
        // Charge bank initialized at the starting solution. The `a = 0`
        // companion reads `i = -i_prev` from the bank, so the bank must
        // be zeroed first to make this the documented pure charge
        // evaluation with zero current — stale states from the previous
        // integration would otherwise leak into the start condition,
        // making Φ history-dependent and the finite-difference monodromy
        // products inconsistent with the recorded Φ(x₀).
        for s in &mut self.bank.states {
            *s = ChargeState::default();
        }
        {
            let mode = Mode::Tran {
                time: t_offset + self.grid[0],
                a: 0.0,
                bank: &self.bank,
                x_prev: &x,
            };
            update_all_charges(self.prep, &x, self.opts, &mode, &mut self.scratch_states);
        }
        self.bank.states.copy_from_slice(&self.scratch_states);
        if let Some(w) = record.as_deref_mut() {
            w.push_sample(t_offset + self.grid[0], &x);
        }
        for k in 1..self.grid.len() {
            let (t0, t1) = (t_offset + self.grid[k - 1], t_offset + self.grid[k]);
            // First step of the period is backward Euler: the zeroed
            // init current is exactly the BE companion, so the step is
            // self-starting. A trapezoidal first step would instead
            // treat the (unknown) true dq/dt at the period start as
            // zero — an O(1) inconsistency that biases the whole orbit.
            self.advance(&mut x, t0, t1, 0, k == 1)?;
            if let Some(w) = record.as_deref_mut() {
                w.push_sample(t1, &x);
            }
        }
        Ok(x)
    }

    /// One integration step `t0 → t1` (backward Euler when `be`,
    /// trapezoidal otherwise), bisecting on Newton failure up to
    /// [`MAX_SPLIT`] levels. The bisection rule is deterministic, so
    /// the period map stays a well-defined function of the start state.
    fn advance(&mut self, x: &mut Vec<f64>, t0: f64, t1: f64, depth: u32, be: bool) -> Result<()> {
        let h = t1 - t0;
        let a = if be { 1.0 / h } else { 2.0 / h };
        let x_prev = x.clone();
        let mode = Mode::Tran {
            time: t1,
            a,
            bank: &self.bank,
            x_prev: &x_prev,
        };
        self.steps += 1;
        match newton_solve(
            self.prep,
            self.opts,
            &mode,
            &mut self.mem,
            &x_prev,
            &mut self.ws,
            &NewtonCfg::plain(),
        ) {
            Ok((x_new, iters)) => {
                self.newton_iterations += iters as u64;
                update_all_charges(
                    self.prep,
                    &x_new,
                    self.opts,
                    &mode,
                    &mut self.scratch_states,
                );
                self.bank.states.copy_from_slice(&self.scratch_states);
                *x = x_new;
                Ok(())
            }
            Err(e) if e.is_abort() => Err(e),
            Err(e) => {
                self.newton_iterations += self.opts.max_newton as u64;
                if depth >= MAX_SPLIT {
                    return Err(e);
                }
                // The first half inherits the step kind (its history is
                // the parent's); after its commit the bank is consistent
                // again, so the second half is always trapezoidal.
                let tm = 0.5 * (t0 + t1);
                self.advance(x, t0, tm, depth + 1, be)?;
                self.advance(x, tm, t1, depth + 1, false)
            }
        }
    }

    /// A fresh empty waveform shaped for this circuit's unknowns.
    pub(crate) fn fresh_wave(&self) -> Waveform {
        let mut w = Waveform::new("time");
        for name in &self.prep.unknown_names {
            w.push_signal(name);
        }
        w
    }
}

/// The matrix-free shooting operator `v ↦ (M − I)·v`: each application
/// integrates one period from a perturbed start and differences against
/// the unperturbed endpoint.
struct ShootingOp<'a, 'b> {
    integ: &'b mut PeriodIntegrator<'a>,
    x0: &'b [f64],
    phi0: &'b [f64],
    /// `√ε_mach · (1 + ‖x₀‖)`: divided by `‖v‖` per product to give the
    /// standard directional-difference step.
    eps_scale: f64,
    /// First inner failure, surfaced after GMRES returns (the
    /// [`LinearOperator`] contract has no error channel). Once set,
    /// further products degrade to `−v` so the iteration stays finite
    /// while it winds down.
    error: Option<SpiceError>,
    xp: Vec<f64>,
}

impl LinearOperator<f64> for ShootingOp<'_, '_> {
    fn dim(&self) -> usize {
        self.x0.len()
    }

    fn apply(&mut self, v: &[f64], y: &mut [f64]) {
        let vnorm = v.iter().map(|a| a * a).sum::<f64>().sqrt();
        if vnorm == 0.0 {
            y.fill(0.0);
            return;
        }
        if self.error.is_none() {
            let eps = self.eps_scale / vnorm;
            self.xp.clear();
            self.xp
                .extend(self.x0.iter().zip(v).map(|(&x, &vi)| x + eps * vi));
            let xp = std::mem::take(&mut self.xp);
            match self.integ.integrate(&xp, 0.0, None) {
                Ok(phi) => {
                    for ((yi, &pi), (&p0, &vi)) in
                        y.iter_mut().zip(&phi).zip(self.phi0.iter().zip(v))
                    {
                        *yi = (pi - p0) / eps - vi;
                    }
                    self.xp = xp;
                    return;
                }
                Err(e) => {
                    self.error = Some(e);
                    self.xp = xp;
                }
            }
        }
        for (yi, &vi) in y.iter_mut().zip(v) {
            *yi = -vi;
        }
    }
}

/// Scaled shooting residual: the Newton-style weighted max norm of
/// `Φ(x₀) − x₀` (`≤ 1` means every unknown returns to its start within
/// `reltol`/`vntol`/`abstol`).
fn shooting_metric(prep: &Prepared, opts: &Options, x0: &[f64], phi0: &[f64]) -> f64 {
    let mut metric = 0.0f64;
    for k in 0..prep.num_unknowns {
        let tol_abs = if k < prep.num_voltage_unknowns {
            opts.vntol
        } else {
            opts.abstol
        };
        let tol = opts.reltol * phi0[k].abs().max(x0[k].abs()) + tol_abs;
        metric = metric.max((phi0[k] - x0[k]).abs() / tol);
    }
    metric
}

/// The shooting-Newton engine behind
/// [`Session::pss`](crate::analysis::Session::pss).
pub(crate) fn pss_impl(prep: &Prepared, opts: &Options, params: &PssParams) -> Result<PssResult> {
    if params.period <= 0.0 || params.steps_per_period == 0 {
        return Err(SpiceError::BadAnalysis(
            "pss needs a positive period and steps_per_period".into(),
        ));
    }
    if params.max_shooting == 0 {
        return Err(SpiceError::BadAnalysis(
            "pss needs max_shooting >= 1".into(),
        ));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("pss");
    let mut integ = PeriodIntegrator::new(prep, opts, params);
    let mut stats = TranStats {
        breakpoints: (integ.grid.len() as u64)
            .saturating_sub(params.steps_per_period.max(4) as u64 + 1),
        ..TranStats::default()
    };

    // Start from the DC operating point, then ride plain transient for
    // the warmup periods — each one is simply Φ applied again.
    let mut x0 = op_eval(prep, opts)?.x;
    for _ in 0..params.warmup_periods {
        if opts.cancel.cancelled() {
            break;
        }
        x0 = integ.integrate(&x0, 0.0, None)?;
    }

    let n = prep.num_unknowns;
    let mut gmres_total = 0u64;
    let mut shooting_iters = 0u64;
    let mut residual = f64::INFINITY;
    let mut best_wave = integ.fresh_wave();
    let mut status: Option<PssStatus> = None;
    let mut dx = vec![0.0; n];

    while shooting_iters < params.max_shooting as u64 {
        // Shooting-iteration boundary: the designated cancellation and
        // budget control points, so a stopped run always carries a
        // complete best-so-far orbit.
        if opts.cancel.cancelled() {
            status = Some(PssStatus::Cancelled {
                iterations: shooting_iters,
            });
            break;
        }
        if let Some(limit) = opts.budget.steps_exhausted(integ.steps) {
            status = Some(PssStatus::BudgetExhausted {
                resource: "steps",
                limit,
                iterations: shooting_iters,
            });
            break;
        }
        if let Some(limit) = opts.budget.newton_exhausted(integ.newton_iterations) {
            status = Some(PssStatus::BudgetExhausted {
                resource: "newton_iterations",
                limit,
                iterations: shooting_iters,
            });
            break;
        }
        if let Some((limit, _spent)) = opts.budget.wall_exhausted() {
            status = Some(PssStatus::BudgetExhausted {
                resource: "wall_clock_ms",
                limit,
                iterations: shooting_iters,
            });
            break;
        }
        shooting_iters += 1;

        // Φ(x₀), recording the candidate orbit.
        let mut wave = integ.fresh_wave();
        let phi0 = match integ.integrate(&x0, 0.0, Some(&mut wave)) {
            Ok(p) => p,
            Err(e) if e.is_abort() => {
                status = Some(match e {
                    SpiceError::BudgetExhausted {
                        resource, limit, ..
                    } => PssStatus::BudgetExhausted {
                        resource,
                        limit,
                        iterations: shooting_iters - 1,
                    },
                    _ => PssStatus::Cancelled {
                        iterations: shooting_iters - 1,
                    },
                });
                break;
            }
            Err(e) => return Err(e),
        };
        best_wave = wave;
        residual = shooting_metric(prep, opts, &x0, &phi0);
        tr.counter("pss.residual", residual);
        if residual <= 1.0 {
            status = Some(PssStatus::Converged);
            break;
        }

        // Shooting update: (M − I)·dx = −(Φ(x₀) − x₀), matrix-free.
        let rhs: Vec<f64> = x0.iter().zip(&phi0).map(|(&x, &p)| x - p).collect();
        let xnorm = x0.iter().map(|a| a * a).sum::<f64>().sqrt();
        let mut op = ShootingOp {
            integ: &mut integ,
            x0: &x0,
            phi0: &phi0,
            eps_scale: f64::EPSILON.sqrt() * (1.0 + xnorm),
            error: None,
            xp: Vec::with_capacity(n),
        };
        dx.fill(0.0);
        let out = gmres(&mut op, &IdentityPrecond, &rhs, &mut dx, &params.gmres);
        gmres_total += out.iterations as u64;
        if let Some(e) = op.error.take() {
            if e.is_abort() {
                status = Some(match e {
                    SpiceError::BudgetExhausted {
                        resource, limit, ..
                    } => PssStatus::BudgetExhausted {
                        resource,
                        limit,
                        iterations: shooting_iters,
                    },
                    _ => PssStatus::Cancelled {
                        iterations: shooting_iters,
                    },
                });
                break;
            }
            return Err(e);
        }
        if dx.iter().any(|v| !v.is_finite()) {
            return Err(SpiceError::NonFinite {
                analysis: "pss",
                context: format!("shooting update at iteration {shooting_iters}"),
            });
        }
        for (xi, &di) in x0.iter_mut().zip(&dx) {
            *xi += di;
        }
    }

    // Fold the shooting-level Krylov work into the workspace's solver
    // stats so it reaches the fixed-name `solver.gmres.*` counters.
    integ.ws.stats.gmres_iterations += gmres_total;
    stats.accepted_steps = integ.steps;
    stats.newton_iterations = integ.newton_iterations;
    tr.counter("pss.shooting_iterations", shooting_iters as f64);
    tr.counter("pss.gmres_iterations", gmres_total as f64);
    stats.emit(tr, "pss");
    integ.ws.stats.emit(tr, "pss");
    span.end();

    match status {
        Some(status) => Ok(PssResult {
            wave: best_wave,
            status,
            shooting_iterations: shooting_iters,
            gmres_iterations: gmres_total,
            newton_iterations: integ.newton_iterations,
            residual,
            period: params.period,
        }),
        None => Err(SpiceError::NoConvergence {
            analysis: "pss",
            iterations: shooting_iters as usize,
            time: None,
            report: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::tran::{tran_impl, TranParams};
    use crate::circuit::Circuit;
    use crate::wave::SourceWave;

    fn rc_driven() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        c
    }

    #[test]
    fn linear_rc_orbit_matches_phasor_solution() {
        // Driven linear RC: the periodic orbit is the AC phasor response,
        // |H| = 1/sqrt(1 + (wRC)^2), phase = -atan(wRC).
        let prep = Prepared::compile(&rc_driven()).unwrap();
        let opts = Options::default();
        let r = pss_impl(&prep, &opts, &PssParams::new(1e-6, 200)).unwrap();
        assert!(r.is_converged(), "{:?} residual {}", r.status(), r.residual);
        let w = r.wave();
        let v = w.signal("v(out)").unwrap();
        let ts = w.axis();
        let wrc = 2.0 * std::f64::consts::PI * 1e6 * 1e3 * 1e-9;
        let mag = 1.0 / (1.0 + wrc * wrc).sqrt();
        let ph = -(wrc).atan();
        for (k, &t) in ts.iter().enumerate() {
            let expect = mag * (2.0 * std::f64::consts::PI * 1e6 * t + ph).sin();
            assert!(
                (v[k] - expect).abs() < 2e-3,
                "t={t:.3e}: {} vs {expect}",
                v[k]
            );
        }
        // Periodicity: last sample returns to the first.
        assert!((v[0] - v[v.len() - 1]).abs() < 1e-4);
    }

    #[test]
    fn pss_agrees_with_ringdown_transient() {
        // Nonlinear deck: diode rectifier. PSS must land on the same
        // orbit a long transient rings down to.
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Sin {
                offset: 0.0,
                ampl: 2.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        let dm = c.add_diode_model(crate::model::DiodeModel::default());
        c.diode("D1", a, out, dm, 1.0);
        c.capacitor("C1", out, Circuit::gnd(), 2e-9);
        c.resistor("RL", out, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let r = pss_impl(&prep, &opts, &PssParams::new(1e-6, 256)).unwrap();
        assert!(r.is_converged(), "residual {}", r.residual);

        // Brute force: 40 periods of transient (20 load time constants),
        // compare the last period by linear interpolation.
        let t = tran_impl(&prep, &opts, &TranParams::new(40e-6, 1e-6 / 256.0)).unwrap();
        let vt = t.wave().signal("v(out)").unwrap();
        let ts = t.wave().axis();
        let vp = r.wave().signal("v(out)").unwrap();
        let ps = r.wave().axis();
        for (k, &tp) in ps.iter().enumerate() {
            let target = 39e-6 + tp;
            let j = ts.partition_point(|&t| t < target).min(ts.len() - 1).max(1);
            let frac = (target - ts[j - 1]) / (ts[j] - ts[j - 1]);
            let v_interp = vt[j - 1] + frac.clamp(0.0, 1.0) * (vt[j] - vt[j - 1]);
            assert!(
                (vp[k] - v_interp).abs() < 2e-3,
                "phase {tp:.3e}: pss {} vs tran {v_interp}",
                vp[k]
            );
        }
    }

    #[test]
    fn cancelled_pss_returns_typed_partial() {
        use crate::analysis::control::CancelToken;
        let prep = Prepared::compile(&rc_driven()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let opts = Options::default().cancel_token(&token);
        let r = pss_impl(&prep, &opts, &PssParams::new(1e-6, 64).warmup_periods(0));
        // A pre-cancelled token is seen at the first shooting boundary.
        match r {
            Ok(res) => assert!(
                matches!(res.status(), PssStatus::Cancelled { .. }),
                "{:?}",
                res.status()
            ),
            Err(e) => assert!(e.is_abort(), "{e}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        use crate::analysis::control::Budget;
        let prep = Prepared::compile(&rc_driven()).unwrap();
        let opts = Options::default().budget(Budget::unlimited().max_steps(40));
        let r = pss_impl(&prep, &opts, &PssParams::new(1e-6, 64).warmup_periods(0));
        match r {
            Ok(res) => match res.status() {
                PssStatus::BudgetExhausted { resource, .. } => {
                    assert_eq!(*resource, "steps");
                }
                other => panic!("expected BudgetExhausted, got {other:?}"),
            },
            Err(e) => assert!(e.is_abort(), "{e}"),
        }
    }

    #[test]
    fn rejects_bad_params() {
        let prep = Prepared::compile(&rc_driven()).unwrap();
        let opts = Options::default();
        assert!(pss_impl(&prep, &opts, &PssParams::new(0.0, 100)).is_err());
        let mut p = PssParams::new(1e-6, 100);
        p.steps_per_period = 0;
        assert!(pss_impl(&prep, &opts, &p).is_err());
        assert!(pss_impl(&prep, &opts, &PssParams::new(1e-6, 100).max_shooting(0)).is_err());
    }
}
