//! Small-signal noise analysis.
//!
//! Direct method: at each frequency the AC system is factored once, then
//! every device noise generator (resistor thermal `4kT/R`, junction shot
//! `2qI`, optional device flicker `KF·I^AF/f`) is injected as a unit
//! current source and its transfer to the output node computed;
//! contributions add in power.
//!
//! Generators are enumerated by the devices themselves through
//! [`crate::devices::Device::noise`]; this module only owns the transfer
//! function machinery.

use crate::analysis::ac::assemble_ac;
use crate::analysis::solver::{parallel_freq_map, singular_unknown, SolverWorkspace};
use crate::analysis::stamp::Options;
use crate::circuit::{NodeId, Prepared, GROUND_SLOT};
use crate::devices::{NoiseGenerator, OpCtx};
use crate::error::{Result, SpiceError};
use ahfic_num::Complex;

pub use crate::devices::{KB, Q};

/// One device's contribution at one frequency.
///
/// `#[non_exhaustive]`: constructed only by the analysis.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct NoiseContribution {
    /// Element name.
    pub element: String,
    /// Generator label (`thermal`, `shot-ic`, `shot-ib`).
    pub generator: &'static str,
    /// Contribution to the output noise voltage density (V²/Hz).
    pub output_density: f64,
}

impl NoiseContribution {
    /// Element name.
    pub fn element(&self) -> &str {
        &self.element
    }

    /// Generator label (`thermal`, `shot-ic`, `shot-ib`, …).
    pub fn generator(&self) -> &'static str {
        self.generator
    }

    /// Contribution to the output noise voltage density (V²/Hz).
    pub fn output_density(&self) -> f64 {
        self.output_density
    }
}

/// Noise at one frequency point.
///
/// `#[non_exhaustive]`: constructed only by the analysis.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct NoisePoint {
    /// Frequency (Hz).
    pub freq: f64,
    /// Total output noise voltage density (V²/Hz).
    pub output_density: f64,
    /// Per-generator breakdown, largest first.
    pub contributions: Vec<NoiseContribution>,
}

impl NoisePoint {
    /// RMS output noise voltage density (V/√Hz).
    pub fn output_rms_density(&self) -> f64 {
        self.output_density.sqrt()
    }

    /// Frequency (Hz).
    pub fn freq(&self) -> f64 {
        self.freq
    }

    /// Total output noise voltage density (V²/Hz).
    pub fn output_density(&self) -> f64 {
        self.output_density
    }

    /// Per-generator breakdown, largest first.
    pub fn contributions(&self) -> &[NoiseContribution] {
        &self.contributions
    }
}

/// Enumerates every device's noise generators at the operating point.
fn collect_generators(prep: &Prepared, x_op: &[f64], opts: &Options) -> Vec<NoiseGenerator> {
    let cx = OpCtx {
        prep,
        opts,
        x: x_op,
    };
    let mut out = Vec::new();
    for d in prep.devices() {
        d.noise(&cx, &mut out);
    }
    out
}

/// Runs a noise analysis: total and per-generator output noise density at
/// `output` for each frequency.
///
/// # Errors
///
/// [`SpiceError::Measure`] for a ground output node; propagates AC
/// assembly/solve failures.
#[deprecated(note = "use Session::noise — Session is the primary analysis entry point")]
pub fn noise_analysis(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    output: NodeId,
    freqs: &[f64],
) -> Result<Vec<NoisePoint>> {
    noise_impl(prep, x_op, opts, output, freqs)
}

/// Crate-internal canonical noise entry (what
/// [`Session::noise`](crate::analysis::Session::noise) and the
/// deprecated free [`noise_analysis`] both call).
pub(crate) fn noise_impl(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    output: NodeId,
    freqs: &[f64],
) -> Result<Vec<NoisePoint>> {
    let out_slot = prep.slot_of(output);
    if out_slot == GROUND_SLOT {
        return Err(SpiceError::Measure(
            "noise output node cannot be ground".into(),
        ));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("noise");
    let gens = collect_generators(prep, x_op, opts);
    let gens = &gens;
    let n = prep.num_unknowns;
    // Frequencies split across scoped worker threads; each factors its
    // workspace once per point and reuses the factors for every
    // generator's transfer-function solve.
    let (points, par) = parallel_freq_map(
        n,
        opts.solver,
        tr.enabled(),
        opts.threads,
        freqs,
        |ws: &mut SolverWorkspace<Complex>, f| {
            let omega = 2.0 * std::f64::consts::PI * f;
            loop {
                assemble_ac(prep, x_op, opts, omega, &mut ws.kernel, &mut ws.rhs);
                if !ws.finish_assembly() {
                    break;
                }
            }
            ws.factor().map_err(|e| singular_unknown(prep, e))?;
            let mut total = 0.0;
            let mut contributions = Vec::with_capacity(gens.len());
            for g in gens.iter() {
                // Unit current from g.p to g.n.
                ws.rhs.fill(Complex::ZERO);
                if g.p != GROUND_SLOT {
                    ws.rhs[g.p] -= Complex::ONE;
                }
                if g.n != GROUND_SLOT {
                    ws.rhs[g.n] += Complex::ONE;
                }
                let sol = ws.solve().map_err(|e| singular_unknown(prep, e))?;
                let h2 = sol[out_slot].norm_sqr();
                let density = h2 * g.psd(f);
                total += density;
                contributions.push(NoiseContribution {
                    element: g.element.clone(),
                    generator: g.label,
                    output_density: density,
                });
            }
            contributions.sort_by(|a, b| {
                b.output_density
                    .partial_cmp(&a.output_density)
                    .expect("finite densities")
            });
            Ok(NoisePoint {
                freq: f,
                output_density: total,
                contributions,
            })
        },
    )?;
    ahfic_trace::SweepStats {
        points: freqs.len() as u64,
        threads: par.threads as u64,
    }
    .emit(tr, "noise");
    tr.counter("noise.generators", gens.len() as f64);
    par.solver.emit(tr, "noise");
    span.end();
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op::bjt_operating;
    use crate::analysis::op::op_eval as op;
    use crate::circuit::Circuit;
    use crate::model::BjtModel;

    /// Test shim over the canonical entry (shadows the deprecated free
    /// function of the same name).
    fn noise_analysis(
        prep: &Prepared,
        x_op: &[f64],
        opts: &Options,
        output: NodeId,
        freqs: &[f64],
    ) -> Result<Vec<NoisePoint>> {
        noise_impl(prep, x_op, opts, output, freqs)
    }

    #[test]
    fn resistor_divider_noise_matches_4ktr_parallel() {
        // Two resistors to ground from a driven node... classic: node
        // fed by R1 from an ideal (noiseless-source) rail, R2 to ground.
        // Output noise = 4kT * (R1 || R2).
        let mut c = Circuit::new();
        let a = c.node("a");
        let o = c.node("o");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, o, 2e3);
        c.resistor("R2", o, Circuit::gnd(), 3e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, o, &[1e3, 1e6]).unwrap();
        let r_par = 2e3 * 3e3 / 5e3;
        let temp_k = opts.vt / (KB / Q);
        let expect = 4.0 * KB * temp_k * r_par;
        for p in &pts {
            assert!(
                (p.output_density - expect).abs() / expect < 1e-9,
                "{} vs {expect}",
                p.output_density
            );
        }
        // White: both frequencies identical.
        assert!((pts[0].output_density - pts[1].output_density).abs() < 1e-30);
    }

    #[test]
    fn capacitor_rolls_off_resistor_noise() {
        // R-C: output noise density falls above the pole; the integrated
        // noise would be kT/C. Check the density ratio at 10x the pole.
        let mut c = Circuit::new();
        let o = c.node("o");
        c.resistor("R1", o, Circuit::gnd(), 10e3);
        c.capacitor("C1", o, Circuit::gnd(), 1e-9); // pole ~15.9 kHz
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let f_pole = 1.0 / (2.0 * std::f64::consts::PI * 10e3 * 1e-9);
        let pts = noise_analysis(&prep, &dc.x, &opts, o, &[f_pole / 100.0, 10.0 * f_pole]).unwrap();
        let ratio = pts[1].output_density / pts[0].output_density;
        assert!((ratio - 1.0 / 101.0).abs() < 0.002, "ratio {ratio}");
    }

    #[test]
    fn amplifier_noise_is_gain_shaped_and_attributed() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.75);
        c.resistor("RC", vcc, col, 1e3);
        let mut m = BjtModel::named("n");
        m.bf = 120.0;
        m.rb = 100.0;
        m.cje = 80e-15;
        m.cjc = 45e-15;
        m.tf = 16e-12;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, col, &[1e6]).unwrap();
        let p = &pts[0];
        assert!(p.output_density > 0.0);
        // Collector shot noise into RC must appear among the top
        // contributors; at this bias (~0.4 mA), 2qIc*RC^2 ~ 1.3e-16.
        let q = bjt_operating(&prep, &dc.x, &opts, "Q1").unwrap();
        let shot = p
            .contributions
            .iter()
            .find(|c| c.generator == "shot-ic")
            .unwrap();
        let expect_shot = 2.0 * Q * q.ic * 1e3 * 1e3;
        assert!(
            (shot.output_density - expect_shot).abs() / expect_shot < 0.2,
            "{} vs {expect_shot:.3e}",
            shot.output_density
        );
        // Contributions are sorted descending and sum to the total.
        let sum: f64 = p.contributions.iter().map(|c| c.output_density).sum();
        assert!((sum - p.output_density).abs() / p.output_density < 1e-12);
        assert!(p
            .contributions
            .windows(2)
            .all(|w| w[0].output_density >= w[1].output_density));
    }

    #[test]
    fn flicker_noise_has_1_over_f_slope_and_is_off_by_default() {
        use crate::model::DiodeModel;

        let build = |kf: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let d = c.node("d");
            c.vsource("V1", a, Circuit::gnd(), 5.0);
            c.resistor("R1", a, d, 1e3);
            let dm = c.add_diode_model(DiodeModel {
                kf,
                af: 1.0,
                ..DiodeModel::default()
            });
            c.diode("D1", d, Circuit::gnd(), dm, 1.0);
            (Prepared::compile(&c).unwrap(), d)
        };

        // KF defaults to zero: no flicker generator is emitted.
        let (prep, out) = build(0.0);
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, out, &[1.0]).unwrap();
        assert!(pts[0]
            .contributions
            .iter()
            .all(|c| c.generator != "flicker-id"));

        // With KF set, the flicker contribution falls exactly as 1/f
        // (the purely resistive transfer is frequency-flat here), while
        // the shot contribution stays white.
        let (prep, out) = build(1e-12);
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, out, &[1.0, 10.0, 100.0]).unwrap();
        let pick = |p: &NoisePoint, label: &str| {
            p.contributions
                .iter()
                .find(|c| c.generator == label)
                .unwrap()
                .output_density
        };
        let f1 = pick(&pts[0], "flicker-id");
        let f10 = pick(&pts[1], "flicker-id");
        let f100 = pick(&pts[2], "flicker-id");
        assert!(f1 > 0.0);
        assert!((f1 / f10 - 10.0).abs() < 1e-9, "slope {}", f1 / f10);
        assert!((f10 / f100 - 10.0).abs() < 1e-9);
        let s1 = pick(&pts[0], "shot-id");
        let s100 = pick(&pts[2], "shot-id");
        assert!((s1 - s100).abs() / s1 < 1e-12, "shot noise must be white");
    }

    #[test]
    fn bjt_flicker_attributed_to_base_current() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let bb = c.node("bb");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        // Bias through a base resistor: an ideal source directly on the
        // base would short out the base-current noise.
        c.vsource("VB", bb, Circuit::gnd(), 0.8);
        c.resistor("RB", bb, b, 10e3);
        c.resistor("RC", vcc, col, 1e3);
        let mut m = BjtModel::named("nf");
        m.bf = 120.0;
        m.kf = 1e-12;
        m.af = 1.0;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, col, &[10.0, 100.0]).unwrap();
        let flicker: Vec<f64> = pts
            .iter()
            .map(|p| {
                p.contributions
                    .iter()
                    .find(|c| c.generator == "flicker-ib")
                    .expect("flicker-ib present when KF > 0")
                    .output_density
            })
            .collect();
        // 1/f slope within the (slightly gain-shaped) transfer.
        let ratio = flicker[0] / flicker[1];
        assert!((ratio - 10.0).abs() / 10.0 < 0.02, "ratio {ratio}");
    }

    #[test]
    fn ground_output_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        assert!(noise_analysis(&prep, &dc.x, &opts, NodeId::GROUND, &[1e3]).is_err());
    }
}
