//! Small-signal noise analysis.
//!
//! Direct method: at each frequency the AC system is factored once, then
//! every device noise generator (resistor thermal `4kT/R`, BJT collector
//! and base shot `2qI`) is injected as a unit current source and its
//! transfer to the output node computed; contributions add in power.
//!
//! Flicker noise is not modelled (the paper's GHz-range concerns are far
//! above any 1/f corner).

use crate::analysis::ac::assemble_ac;
use crate::analysis::op::bjt_operating;
use crate::analysis::solver::{parallel_freq_map, singular_unknown, SolverWorkspace};
use crate::analysis::stamp::Options;
use crate::circuit::{ElementKind, NodeId, Prepared, GROUND_SLOT};
use crate::error::{Result, SpiceError};
use ahfic_num::Complex;

/// Boltzmann constant (J/K).
const KB: f64 = 1.380649e-23;
/// Elementary charge (C).
const Q: f64 = 1.602176634e-19;

/// One device's contribution at one frequency.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseContribution {
    /// Element name.
    pub element: String,
    /// Generator label (`thermal`, `shot-ic`, `shot-ib`).
    pub generator: &'static str,
    /// Contribution to the output noise voltage density (V²/Hz).
    pub output_density: f64,
}

/// Noise at one frequency point.
#[derive(Clone, Debug, PartialEq)]
pub struct NoisePoint {
    /// Frequency (Hz).
    pub freq: f64,
    /// Total output noise voltage density (V²/Hz).
    pub output_density: f64,
    /// Per-generator breakdown, largest first.
    pub contributions: Vec<NoiseContribution>,
}

impl NoisePoint {
    /// RMS output noise voltage density (V/√Hz).
    pub fn output_rms_density(&self) -> f64 {
        self.output_density.sqrt()
    }
}

/// A noise generator: a current source between two unknown slots with a
/// white power spectral density (A²/Hz).
struct Generator {
    element: String,
    label: &'static str,
    p: usize,
    n: usize,
    psd: f64,
}

fn collect_generators(prep: &Prepared, x_op: &[f64], opts: &Options) -> Result<Vec<Generator>> {
    let mut out = Vec::new();
    let temp_k = opts.vt / (KB / Q);
    for el in prep.circuit.elements() {
        match &el.kind {
            ElementKind::Resistor { p, n, r } => {
                out.push(Generator {
                    element: el.name.clone(),
                    label: "thermal",
                    p: prep.slot_of(*p),
                    n: prep.slot_of(*n),
                    psd: 4.0 * KB * temp_k / r,
                });
            }
            ElementKind::Bjt { .. } => {
                let q = bjt_operating(prep, x_op, opts, &el.name)?;
                let idx = prep.circuit.find_element(&el.name).expect("element exists");
                let nodes = prep.bjt_nodes[idx].expect("bjt nodes");
                let model = prep.scaled_bjt[idx].as_ref().expect("scaled model");
                // Collector shot noise between internal collector and
                // emitter, base shot between internal base and emitter.
                out.push(Generator {
                    element: el.name.clone(),
                    label: "shot-ic",
                    p: nodes.ci,
                    n: nodes.ei,
                    psd: 2.0 * Q * q.ic.abs(),
                });
                out.push(Generator {
                    element: el.name.clone(),
                    label: "shot-ib",
                    p: nodes.bi,
                    n: nodes.ei,
                    psd: 2.0 * Q * q.ib.abs(),
                });
                // Base-resistance thermal noise (bias-dependent rbb).
                if nodes.bi != nodes.b && q.rbb > 0.0 {
                    out.push(Generator {
                        element: el.name.clone(),
                        label: "thermal-rb",
                        p: nodes.b,
                        n: nodes.bi,
                        psd: 4.0 * KB * temp_k / q.rbb,
                    });
                }
                if nodes.ei != nodes.e && model.re > 0.0 {
                    out.push(Generator {
                        element: el.name.clone(),
                        label: "thermal-re",
                        p: nodes.e,
                        n: nodes.ei,
                        psd: 4.0 * KB * temp_k / model.re,
                    });
                }
                if nodes.ci != nodes.c && model.rc > 0.0 {
                    out.push(Generator {
                        element: el.name.clone(),
                        label: "thermal-rc",
                        p: nodes.c,
                        n: nodes.ci,
                        psd: 4.0 * KB * temp_k / model.rc,
                    });
                }
            }
            ElementKind::Diode { p, n, .. } => {
                // Shot noise of the junction current.
                let idx = prep.circuit.find_element(&el.name).expect("element exists");
                let ai = prep.diode_internal[idx].unwrap_or(prep.slot_of(*p));
                let vd = crate::circuit::read_slot(x_op, ai)
                    - crate::circuit::read_slot(x_op, prep.slot_of(*n));
                let model = prep.scaled_diode[idx].as_ref().expect("scaled diode");
                let dop = crate::devices::diode::eval_diode(model, vd, opts.vt, 0.0);
                out.push(Generator {
                    element: el.name.clone(),
                    label: "shot-id",
                    p: ai,
                    n: prep.slot_of(*n),
                    psd: 2.0 * Q * dop.id.abs(),
                });
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Runs a noise analysis: total and per-generator output noise density at
/// `output` for each frequency.
///
/// # Errors
///
/// [`SpiceError::Measure`] for a ground output node; propagates AC
/// assembly/solve failures.
pub fn noise_analysis(
    prep: &Prepared,
    x_op: &[f64],
    opts: &Options,
    output: NodeId,
    freqs: &[f64],
) -> Result<Vec<NoisePoint>> {
    let out_slot = prep.slot_of(output);
    if out_slot == GROUND_SLOT {
        return Err(SpiceError::Measure(
            "noise output node cannot be ground".into(),
        ));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("noise");
    let gens = collect_generators(prep, x_op, opts)?;
    let gens = &gens;
    let n = prep.num_unknowns;
    // Frequencies split across scoped worker threads; each factors its
    // workspace once per point and reuses the factors for every
    // generator's transfer-function solve.
    let (points, par) = parallel_freq_map(
        n,
        opts.solver,
        tr.enabled(),
        freqs,
        |ws: &mut SolverWorkspace<Complex>, f| {
            let omega = 2.0 * std::f64::consts::PI * f;
            loop {
                assemble_ac(prep, x_op, opts, omega, &mut ws.kernel, &mut ws.rhs);
                if !ws.finish_assembly() {
                    break;
                }
            }
            ws.factor().map_err(|e| singular_unknown(prep, e))?;
            let mut total = 0.0;
            let mut contributions = Vec::with_capacity(gens.len());
            for g in gens.iter() {
                // Unit current from g.p to g.n.
                ws.rhs.fill(Complex::ZERO);
                if g.p != GROUND_SLOT {
                    ws.rhs[g.p] -= Complex::ONE;
                }
                if g.n != GROUND_SLOT {
                    ws.rhs[g.n] += Complex::ONE;
                }
                let sol = ws.solve();
                let h2 = sol[out_slot].norm_sqr();
                let density = h2 * g.psd;
                total += density;
                contributions.push(NoiseContribution {
                    element: g.element.clone(),
                    generator: g.label,
                    output_density: density,
                });
            }
            contributions.sort_by(|a, b| {
                b.output_density
                    .partial_cmp(&a.output_density)
                    .expect("finite densities")
            });
            Ok(NoisePoint {
                freq: f,
                output_density: total,
                contributions,
            })
        },
    )?;
    ahfic_trace::SweepStats {
        points: freqs.len() as u64,
        threads: par.threads as u64,
    }
    .emit(tr, "noise");
    tr.counter("noise.generators", gens.len() as f64);
    par.solver.emit(tr, "noise");
    span.end();
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::op;
    use crate::circuit::Circuit;
    use crate::model::BjtModel;

    #[test]
    fn resistor_divider_noise_matches_4ktr_parallel() {
        // Two resistors to ground from a driven node... classic: node
        // fed by R1 from an ideal (noiseless-source) rail, R2 to ground.
        // Output noise = 4kT * (R1 || R2).
        let mut c = Circuit::new();
        let a = c.node("a");
        let o = c.node("o");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, o, 2e3);
        c.resistor("R2", o, Circuit::gnd(), 3e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, o, &[1e3, 1e6]).unwrap();
        let r_par = 2e3 * 3e3 / 5e3;
        let temp_k = opts.vt / (KB / Q);
        let expect = 4.0 * KB * temp_k * r_par;
        for p in &pts {
            assert!(
                (p.output_density - expect).abs() / expect < 1e-9,
                "{} vs {expect}",
                p.output_density
            );
        }
        // White: both frequencies identical.
        assert!((pts[0].output_density - pts[1].output_density).abs() < 1e-30);
    }

    #[test]
    fn capacitor_rolls_off_resistor_noise() {
        // R-C: output noise density falls above the pole; the integrated
        // noise would be kT/C. Check the density ratio at 10x the pole.
        let mut c = Circuit::new();
        let o = c.node("o");
        c.resistor("R1", o, Circuit::gnd(), 10e3);
        c.capacitor("C1", o, Circuit::gnd(), 1e-9); // pole ~15.9 kHz
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let f_pole = 1.0 / (2.0 * std::f64::consts::PI * 10e3 * 1e-9);
        let pts = noise_analysis(&prep, &dc.x, &opts, o, &[f_pole / 100.0, 10.0 * f_pole]).unwrap();
        let ratio = pts[1].output_density / pts[0].output_density;
        assert!((ratio - 1.0 / 101.0).abs() < 0.002, "ratio {ratio}");
    }

    #[test]
    fn amplifier_noise_is_gain_shaped_and_attributed() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let col = c.node("c");
        c.vsource("VCC", vcc, Circuit::gnd(), 5.0);
        c.vsource("VB", b, Circuit::gnd(), 0.75);
        c.resistor("RC", vcc, col, 1e3);
        let mut m = BjtModel::named("n");
        m.bf = 120.0;
        m.rb = 100.0;
        m.cje = 80e-15;
        m.cjc = 45e-15;
        m.tf = 16e-12;
        let mi = c.add_bjt_model(m);
        c.bjt("Q1", col, b, Circuit::gnd(), mi, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        let pts = noise_analysis(&prep, &dc.x, &opts, col, &[1e6]).unwrap();
        let p = &pts[0];
        assert!(p.output_density > 0.0);
        // Collector shot noise into RC must appear among the top
        // contributors; at this bias (~0.4 mA), 2qIc*RC^2 ~ 1.3e-16.
        let q = bjt_operating(&prep, &dc.x, &opts, "Q1").unwrap();
        let shot = p
            .contributions
            .iter()
            .find(|c| c.generator == "shot-ic")
            .unwrap();
        let expect_shot = 2.0 * Q * q.ic * 1e3 * 1e3;
        assert!(
            (shot.output_density - expect_shot).abs() / expect_shot < 0.2,
            "{} vs {expect_shot:.3e}",
            shot.output_density
        );
        // Contributions are sorted descending and sum to the total.
        let sum: f64 = p.contributions.iter().map(|c| c.output_density).sum();
        assert!((sum - p.output_density).abs() / p.output_density < 1e-12);
        assert!(p
            .contributions
            .windows(2)
            .all(|w| w[0].output_density >= w[1].output_density));
    }

    #[test]
    fn ground_output_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let opts = Options::default();
        let dc = op(&prep, &opts).unwrap();
        assert!(noise_analysis(&prep, &dc.x, &opts, NodeId::GROUND, &[1e3]).is_err());
    }
}
