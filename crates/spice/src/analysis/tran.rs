//! Transient analysis: trapezoidal integration with Newton at every step,
//! source breakpoints, and iteration-count step control.

use crate::analysis::op::{newton_solve, op, NewtonCfg};
use crate::analysis::solver::SolverWorkspace;
use crate::analysis::stamp::{update_all_charges, ChargeBank, Mode, NonlinMemory, Options};
use crate::circuit::Prepared;
use crate::error::{Result, SpiceError};
use crate::wave::Waveform;
use ahfic_trace::TranStats;

/// Transient analysis parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TranParams {
    /// Stop time (s).
    pub t_stop: f64,
    /// Maximum internal timestep (s); also bounds output resolution.
    pub dt_max: f64,
    /// Initial timestep; defaults to `dt_max / 10`.
    pub dt_init: Option<f64>,
    /// Skip the DC operating point and start from declared initial
    /// conditions (SPICE `UIC`).
    pub uic: bool,
}

impl TranParams {
    /// Conventional setup: simulate to `t_stop` with steps bounded by
    /// `dt_max`, starting from the DC operating point.
    pub fn new(t_stop: f64, dt_max: f64) -> Self {
        TranParams {
            t_stop,
            dt_max,
            dt_init: None,
            uic: false,
        }
    }

    /// Same, but starting from initial conditions instead of the OP.
    pub fn with_uic(mut self) -> Self {
        self.uic = true;
        self
    }
}

/// Hard cap on accepted plus rejected steps, as a runaway guard.
const MAX_STEPS: usize = 50_000_000;

/// Runs a transient simulation, recording every unknown at every accepted
/// timestep (signal names follow `Prepared::unknown_names`:
/// `v(node)` / `i(element)`).
///
/// # Errors
///
/// Propagates OP failures; returns [`SpiceError::NoConvergence`] when the
/// timestep controller cannot find a converging step, and
/// [`SpiceError::BadAnalysis`] for nonsensical parameters.
pub fn tran(prep: &Prepared, opts: &Options, params: &TranParams) -> Result<Waveform> {
    if params.t_stop <= 0.0 || params.dt_max <= 0.0 {
        return Err(SpiceError::BadAnalysis(
            "transient needs positive t_stop and dt_max".into(),
        ));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("tran");
    let mut stats = TranStats::default();
    let n = prep.num_unknowns;

    // Initial state.
    let mut x = if params.uic {
        let mut x0 = vec![0.0; n];
        for &(node, v) in prep.circuit.ics() {
            let slot = prep.slot_of(node);
            if slot != crate::circuit::GROUND_SLOT {
                x0[slot] = v;
            }
        }
        x0
    } else {
        op(prep, opts)?.x
    };

    // One workspace for the whole transient: the Tran-mode stamp sequence
    // is fixed, so every Newton iteration after the first assembly
    // replays precomputed slots and refactors in place.
    let mut ws = SolverWorkspace::new(n, opts.solver);
    ws.set_timing(tr.enabled());

    // Charge bank initialized at the starting solution (a = 0 turns the
    // companion into a pure charge evaluation with zero current).
    let mut bank = ChargeBank::new(prep);
    let mut mem = NonlinMemory::new(prep);
    {
        let mut fresh = bank.states.clone();
        let mode = Mode::Tran {
            time: 0.0,
            a: 0.0,
            bank: &bank,
            x_prev: &x,
        };
        update_all_charges(prep, &x, opts, &mode, &mut fresh);
        bank.states = fresh;
    }

    // Breakpoints declared by the devices themselves (independent
    // sources report their waveform corners).
    let mut breakpoints: Vec<f64> = Vec::new();
    for d in prep.devices() {
        d.breakpoints(&prep.circuit, params.t_stop, &mut breakpoints);
    }
    breakpoints.retain(|&t| t > 0.0);
    breakpoints.sort_by(|a, b| a.total_cmp(b));
    // Merge tolerance relative to the simulated span: an absolute 1e-15
    // would treat distinct nanosecond-scale breakpoints of a long run as
    // one, or keep float-noise duplicates of a femtosecond run apart.
    let bp_tol = params.t_stop * 1e-12;
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= bp_tol);
    stats.breakpoints = breakpoints.len() as u64;
    let mut next_bp = 0usize;

    let h_init = params
        .dt_init
        .unwrap_or(params.dt_max / 10.0)
        .min(params.dt_max);
    let h_min = (params.t_stop * 1e-12).max(1e-21);
    let mut h = h_init;

    let mut wave = Waveform::new("time");
    for name in &prep.unknown_names {
        wave.push_signal(name);
    }
    wave.push_sample(0.0, &x);

    let mut t = 0.0f64;
    let mut steps = 0usize;
    let mut singular_streak = 0usize;
    let mut new_states = bank.states.clone();
    while t < params.t_stop - 1e-15 * params.t_stop {
        steps += 1;
        if steps > MAX_STEPS {
            return Err(SpiceError::NoConvergence {
                analysis: "tran",
                iterations: steps,
                time: Some(t),
                report: None,
            });
        }
        // Clip the step to the stop time and the next breakpoint.
        let mut h_eff = h.min(params.t_stop - t);
        let mut hit_bp = false;
        if next_bp < breakpoints.len() {
            let bp = breakpoints[next_bp];
            if t + h_eff >= bp - 1e-18 {
                h_eff = bp - t;
                hit_bp = true;
            }
        }
        if h_eff <= 0.0 {
            // Breakpoint coincides with current time.
            next_bp += 1;
            continue;
        }

        let t_new = t + h_eff;
        let a = 2.0 / h_eff; // trapezoidal
        let x_prev = x.clone();
        let mode = Mode::Tran {
            time: t_new,
            a,
            bank: &bank,
            x_prev: &x_prev,
        };
        match newton_solve(
            prep,
            opts,
            &mode,
            &mut mem,
            &x_prev,
            &mut ws,
            &NewtonCfg::plain(),
        ) {
            Ok((x_new, iters)) => {
                stats.accepted_steps += 1;
                stats.newton_iterations += iters as u64;
                singular_streak = 0;
                // Commit charges at the accepted solution; a pure charge
                // evaluation per storage device, no matrix assembly.
                update_all_charges(prep, &x_new, opts, &mode, &mut new_states);
                bank.states.copy_from_slice(&new_states);
                x = x_new;
                t = t_new;
                wave.push_sample(t, &x);
                if hit_bp {
                    next_bp += 1;
                    h = h_init.min(params.dt_max);
                } else if iters <= 3 {
                    h = (h * 1.5).min(params.dt_max);
                } else if iters >= 10 {
                    h = (h * 0.5).max(h_min);
                }
            }
            Err(SpiceError::Singular { unknown }) => {
                // A singular factorization mid-run is usually transient
                // (an unlucky operating point or an injected fault), so
                // reject the step and retry smaller a bounded number of
                // times before concluding the circuit is structurally
                // broken.
                singular_streak += 1;
                stats.rejected_steps += 1;
                h *= 0.25;
                if singular_streak > 3 || h < h_min {
                    return Err(SpiceError::Singular { unknown });
                }
            }
            Err(_) => {
                stats.rejected_steps += 1;
                stats.newton_iterations += opts.max_newton as u64;
                singular_streak = 0;
                h *= 0.25;
                if h < h_min {
                    return Err(SpiceError::NoConvergence {
                        analysis: "tran",
                        iterations: steps,
                        time: Some(t),
                        report: None,
                    });
                }
            }
        }
    }
    stats.emit(tr, "tran");
    ws.stats.emit(tr, "tran");
    span.end();
    Ok(wave)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::wave::SourceWave;

    fn opts() -> Options {
        Options::default()
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // 1 V step into R=1k, C=1n: tau = 1 us.
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: 0.0,
            },
        );
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(5e-6, 5e-9)).unwrap();
        let v = w.signal("v(out)").unwrap();
        let ts = w.axis();
        for (k, &t) in ts.iter().enumerate() {
            if t < 5e-9 {
                continue;
            }
            let expect = 1.0 - (-(t - 1e-9) / 1e-6).exp();
            assert!(
                (v[k] - expect).abs() < 6e-3,
                "t={t:.3e}: {} vs {expect}",
                v[k]
            );
        }
        // Practically fully charged at the end.
        assert!((w.last("v(out)").unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn lc_oscillation_period() {
        // UIC start: C charged to 1 V rings with L at f = 1/(2 pi sqrt(LC)).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor("C1", a, Circuit::gnd(), 1e-9);
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.resistor("Rdamp", a, Circuit::gnd(), 1e6);
        c.set_ic(a, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let period = 1.0 / f0;
        let w = tran(
            &prep,
            &opts(),
            &TranParams::new(3.0 * period, period / 400.0).with_uic(),
        )
        .unwrap();
        let v = w.signal("v(a)").unwrap();
        let ts = w.axis();
        // Find the first two downward zero crossings to estimate period.
        let mut crossings = Vec::new();
        for k in 1..v.len() {
            if v[k - 1] > 0.0 && v[k] <= 0.0 {
                let frac = v[k - 1] / (v[k - 1] - v[k]);
                crossings.push(ts[k - 1] + frac * (ts[k] - ts[k - 1]));
            }
        }
        assert!(crossings.len() >= 2, "no oscillation seen");
        let measured = crossings[1] - crossings[0];
        assert!(
            (measured - period).abs() / period < 0.01,
            "period {measured:.3e} vs {period:.3e}"
        );
    }

    #[test]
    fn sin_source_amplitude_preserved() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        c.resistor("R1", a, Circuit::gnd(), 50.0);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(3e-6, 5e-9)).unwrap();
        let v = w.signal("v(a)").unwrap();
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 1.0).abs() < 1e-3);
        assert!((min + 1.0).abs() < 1e-3);
    }

    #[test]
    fn uic_respects_initial_condition() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor("C1", a, Circuit::gnd(), 1e-9);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.set_ic(a, 2.0);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(5e-6, 10e-9).with_uic()).unwrap();
        let v = w.signal("v(a)").unwrap();
        assert!((v[0] - 2.0).abs() < 1e-12);
        // Decays with tau = 1 us.
        let t1 = w.axis().iter().position(|&t| t >= 1e-6).unwrap();
        assert!((v[t1] - 2.0 * (-1.0f64).exp()).abs() < 0.02);
        assert!(w.last("v(a)").unwrap().abs() < 0.02);
    }

    #[test]
    fn rejects_bad_params() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let prep = Prepared::compile(&c).unwrap();
        assert!(tran(&prep, &opts(), &TranParams::new(0.0, 1e-9)).is_err());
        assert!(tran(&prep, &opts(), &TranParams::new(1e-6, 0.0)).is_err());
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Pwl(vec![(0.0, 0.0), (1e-6, 0.0), (1.001e-6, 1.0), (2e-6, 1.0)]),
        );
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(2e-6, 0.5e-6)).unwrap();
        // The sharp edge between 1.0 us and 1.001 us must be resolved even
        // though dt_max is 0.5 us.
        assert!(w.axis().iter().any(|&t| (t - 1e-6).abs() < 1e-15));
        assert!(w.axis().iter().any(|&t| (t - 1.001e-6).abs() < 1e-15));
        assert!((w.last("v(a)").unwrap() - 1.0).abs() < 1e-9);
    }
}
