//! Transient analysis: trapezoidal integration with Newton at every step,
//! source breakpoints, and iteration-count step control.
//!
//! The engine returns a typed [`TranResult`]: a cancelled or
//! budget-exhausted run yields the waveform integrated so far plus a
//! [`TranStatus`] describing why it stopped, instead of discarding the
//! partial work. With [`Options::stream`] enabled it also emits
//! `progress.tran.*` records over the trace path at a fixed
//! accepted-step cadence, so a `JsonLinesSink` client watches a long
//! run live.

use crate::analysis::op::{newton_solve, op_eval, NewtonCfg};
use crate::analysis::solver::SolverWorkspace;
use crate::analysis::stamp::{update_all_charges, ChargeBank, Mode, NonlinMemory, Options};
use crate::circuit::Prepared;
use crate::error::{Result, SpiceError};
use crate::wave::Waveform;
use ahfic_trace::{Tracer, TranStats};

/// Transient analysis parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TranParams {
    /// Stop time (s).
    pub t_stop: f64,
    /// Maximum internal timestep (s); also bounds output resolution.
    pub dt_max: f64,
    /// Initial timestep; defaults to `dt_max / 10`.
    pub dt_init: Option<f64>,
    /// Skip the DC operating point and start from declared initial
    /// conditions (SPICE `UIC`).
    pub uic: bool,
}

impl TranParams {
    /// Conventional setup: simulate to `t_stop` with steps bounded by
    /// `dt_max`, starting from the DC operating point.
    pub fn new(t_stop: f64, dt_max: f64) -> Self {
        TranParams {
            t_stop,
            dt_max,
            dt_init: None,
            uic: false,
        }
    }

    /// Same, but starting from initial conditions instead of the OP.
    pub fn with_uic(mut self) -> Self {
        self.uic = true;
        self
    }
}

/// Hard cap on accepted plus rejected steps, as a runaway guard.
const MAX_STEPS: usize = 50_000_000;

/// Why a transient run stopped.
///
/// `#[non_exhaustive]`: more stop reasons may grow here; match with a
/// wildcard arm.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TranStatus {
    /// The run reached `t_stop`.
    Complete,
    /// A [`CancelToken`](crate::analysis::CancelToken) fired; the
    /// waveform holds every step accepted before `t`.
    Cancelled {
        /// Simulation time of the last accepted step.
        t: f64,
    },
    /// A [`Budget`](crate::analysis::Budget) limit fired.
    BudgetExhausted {
        /// Which limit (`"steps"`, `"newton_iterations"`,
        /// `"wall_clock_ms"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// Simulation time of the last accepted step.
        t: f64,
    },
}

/// Typed result of a transient run: the integrated waveform plus why
/// and where the run stopped.
///
/// Cancellation and budget exhaustion are *statuses*, not errors — the
/// partial waveform is still returned so a serving client gets every
/// step paid for. `#[non_exhaustive]`: construct only through the
/// transient entry points.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct TranResult {
    /// Accepted samples (axis = time), up to where the run stopped.
    pub wave: Waveform,
    /// Why the run stopped.
    pub status: TranStatus,
    /// Accepted timesteps.
    pub accepted_steps: u64,
    /// Rejected (re-tried) timesteps.
    pub rejected_steps: u64,
    /// Newton iterations spent across all steps.
    pub newton_iterations: u64,
}

impl TranResult {
    /// The integrated waveform (partial when the run was stopped).
    pub fn wave(&self) -> &Waveform {
        &self.wave
    }

    /// Consumes the result, returning the waveform.
    pub fn into_wave(self) -> Waveform {
        self.wave
    }

    /// Why the run stopped.
    pub fn status(&self) -> &TranStatus {
        &self.status
    }

    /// Whether the run reached `t_stop`.
    pub fn is_complete(&self) -> bool {
        self.status == TranStatus::Complete
    }

    /// Simulation time of the last accepted sample (0.0 for a run
    /// stopped before its first step).
    pub fn t_end(&self) -> f64 {
        self.wave.axis().last().copied().unwrap_or(0.0)
    }

    /// Accepted timesteps.
    pub fn accepted_steps(&self) -> u64 {
        self.accepted_steps
    }

    /// Rejected (re-tried) timesteps.
    pub fn rejected_steps(&self) -> u64 {
        self.rejected_steps
    }

    /// Newton iterations spent across all steps.
    pub fn newton_iterations(&self) -> u64 {
        self.newton_iterations
    }
}

/// Emits one incremental-progress chunk over the trace path (the
/// streaming record schema documented in DESIGN.md): where the run is
/// (`t`, fraction, accepted steps) and the latest accepted value of
/// every signal.
fn emit_progress(tr: Tracer<'_>, prep: &Prepared, t: f64, t_stop: f64, accepted: u64, x: &[f64]) {
    tr.counter("progress.tran.t", t);
    tr.counter("progress.tran.frac", (t / t_stop).min(1.0));
    tr.counter("progress.tran.steps", accepted as f64);
    for (name, &v) in prep.unknown_names.iter().zip(x) {
        tr.counter(&format!("progress.tran.sig.{name}"), v);
    }
}

/// The transient engine behind [`Session::tran`](crate::analysis::Session::tran)
/// (and the deprecated free [`tran`]): trapezoidal integration with
/// Newton at every step, returning a typed [`TranResult`].
pub(crate) fn tran_impl(
    prep: &Prepared,
    opts: &Options,
    params: &TranParams,
) -> Result<TranResult> {
    if params.t_stop <= 0.0 || params.dt_max <= 0.0 {
        return Err(SpiceError::BadAnalysis(
            "transient needs positive t_stop and dt_max".into(),
        ));
    }
    let tr = opts.trace.tracer();
    let span = tr.span("tran");
    let mut stats = TranStats::default();
    let n = prep.num_unknowns;

    // Initial state.
    let mut x = if params.uic {
        let mut x0 = vec![0.0; n];
        for &(node, v) in prep.circuit.ics() {
            let slot = prep.slot_of(node);
            if slot != crate::circuit::GROUND_SLOT {
                x0[slot] = v;
            }
        }
        x0
    } else {
        op_eval(prep, opts)?.x
    };

    // One workspace for the whole transient: the Tran-mode stamp sequence
    // is fixed, so every Newton iteration after the first assembly
    // replays precomputed slots and refactors in place.
    let mut ws = SolverWorkspace::new(n, opts.solver);
    ws.set_timing(tr.enabled());

    // Charge bank initialized at the starting solution (a = 0 turns the
    // companion into a pure charge evaluation with zero current).
    let mut bank = ChargeBank::new(prep);
    let mut mem = NonlinMemory::new(prep);
    {
        let mut fresh = bank.states.clone();
        let mode = Mode::Tran {
            time: 0.0,
            a: 0.0,
            bank: &bank,
            x_prev: &x,
        };
        update_all_charges(prep, &x, opts, &mode, &mut fresh);
        bank.states = fresh;
    }

    // Breakpoints declared by the devices themselves (independent
    // sources report their waveform corners).
    let mut breakpoints: Vec<f64> = Vec::new();
    for d in prep.devices() {
        d.breakpoints(&prep.circuit, params.t_stop, &mut breakpoints);
    }
    breakpoints.retain(|&t| t > 0.0);
    breakpoints.sort_by(|a, b| a.total_cmp(b));
    // Merge tolerance relative to the simulated span: an absolute 1e-15
    // would treat distinct nanosecond-scale breakpoints of a long run as
    // one, or keep float-noise duplicates of a femtosecond run apart.
    let bp_tol = params.t_stop * 1e-12;
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= bp_tol);
    stats.breakpoints = breakpoints.len() as u64;
    let mut next_bp = 0usize;

    let h_init = params
        .dt_init
        .unwrap_or(params.dt_max / 10.0)
        .min(params.dt_max);
    let h_min = (params.t_stop * 1e-12).max(1e-21);
    let mut h = h_init;

    let mut wave = Waveform::new("time");
    for name in &prep.unknown_names {
        wave.push_signal(name);
    }
    wave.push_sample(0.0, &x);

    let mut t = 0.0f64;
    let mut steps = 0usize;
    let mut singular_streak = 0usize;
    let mut new_states = bank.states.clone();
    let mut status = TranStatus::Complete;
    let stream_every = opts.stream.every();
    while t < params.t_stop - 1e-15 * params.t_stop {
        // Timestep-boundary control points: cancellation and budgets are
        // only ever observed here and inside the Newton loop, so a
        // stopped run always ends on a consistent accepted state.
        if opts.cancel.cancelled() {
            status = TranStatus::Cancelled { t };
            break;
        }
        if let Some(limit) = opts.budget.steps_exhausted(steps as u64) {
            status = TranStatus::BudgetExhausted {
                resource: "steps",
                limit,
                t,
            };
            break;
        }
        if let Some(limit) = opts.budget.newton_exhausted(stats.newton_iterations) {
            status = TranStatus::BudgetExhausted {
                resource: "newton_iterations",
                limit,
                t,
            };
            break;
        }
        if let Some((limit, _spent)) = opts.budget.wall_exhausted() {
            status = TranStatus::BudgetExhausted {
                resource: "wall_clock_ms",
                limit,
                t,
            };
            break;
        }
        steps += 1;
        if steps > MAX_STEPS {
            return Err(SpiceError::NoConvergence {
                analysis: "tran",
                iterations: steps,
                time: Some(t),
                report: None,
            });
        }
        // Clip the step to the stop time and the next breakpoint.
        let mut h_eff = h.min(params.t_stop - t);
        let mut hit_bp = false;
        if next_bp < breakpoints.len() {
            let bp = breakpoints[next_bp];
            if t + h_eff >= bp - 1e-18 {
                h_eff = bp - t;
                hit_bp = true;
            }
        }
        if h_eff <= 0.0 {
            // Breakpoint coincides with current time.
            next_bp += 1;
            continue;
        }

        let t_new = t + h_eff;
        let a = 2.0 / h_eff; // trapezoidal
        let x_prev = x.clone();
        let mode = Mode::Tran {
            time: t_new,
            a,
            bank: &bank,
            x_prev: &x_prev,
        };
        match newton_solve(
            prep,
            opts,
            &mode,
            &mut mem,
            &x_prev,
            &mut ws,
            &NewtonCfg::plain(),
        ) {
            Ok((x_new, iters)) => {
                stats.accepted_steps += 1;
                stats.newton_iterations += iters as u64;
                singular_streak = 0;
                // Commit charges at the accepted solution; a pure charge
                // evaluation per storage device, no matrix assembly.
                update_all_charges(prep, &x_new, opts, &mode, &mut new_states);
                bank.states.copy_from_slice(&new_states);
                x = x_new;
                t = t_new;
                wave.push_sample(t, &x);
                if let Some(every) = stream_every {
                    if stats.accepted_steps % every as u64 == 0 {
                        emit_progress(tr, prep, t, params.t_stop, stats.accepted_steps, &x);
                    }
                }
                if hit_bp {
                    next_bp += 1;
                    h = h_init.min(params.dt_max);
                } else if iters <= 3 {
                    h = (h * 1.5).min(params.dt_max);
                } else if iters >= 10 {
                    h = (h * 0.5).max(h_min);
                }
            }
            Err(SpiceError::Singular { unknown }) => {
                // A singular factorization mid-run is usually transient
                // (an unlucky operating point or an injected fault), so
                // reject the step and retry smaller a bounded number of
                // times before concluding the circuit is structurally
                // broken.
                singular_streak += 1;
                stats.rejected_steps += 1;
                h *= 0.25;
                if singular_streak > 3 || h < h_min {
                    return Err(SpiceError::Singular { unknown });
                }
            }
            Err(e) if e.is_abort() => {
                // Cancellation observed inside the Newton loop: the
                // in-flight step is discarded, the waveform keeps every
                // step accepted before it.
                status = match e {
                    SpiceError::BudgetExhausted {
                        resource, limit, ..
                    } => TranStatus::BudgetExhausted { resource, limit, t },
                    _ => TranStatus::Cancelled { t },
                };
                break;
            }
            Err(_) => {
                stats.rejected_steps += 1;
                stats.newton_iterations += opts.max_newton as u64;
                singular_streak = 0;
                h *= 0.25;
                if h < h_min {
                    return Err(SpiceError::NoConvergence {
                        analysis: "tran",
                        iterations: steps,
                        time: Some(t),
                        report: None,
                    });
                }
            }
        }
    }
    if stream_every.is_some() {
        tr.event("progress.tran.done");
    }
    stats.emit(tr, "tran");
    ws.stats.emit(tr, "tran");
    span.end();
    Ok(TranResult {
        wave,
        status,
        accepted_steps: stats.accepted_steps,
        rejected_steps: stats.rejected_steps,
        newton_iterations: stats.newton_iterations,
    })
}

/// Runs a transient simulation, recording every unknown at every accepted
/// timestep (signal names follow `Prepared::unknown_names`:
/// `v(node)` / `i(element)`).
///
/// # Errors
///
/// Propagates OP failures; returns [`SpiceError::NoConvergence`] when the
/// timestep controller cannot find a converging step, and
/// [`SpiceError::BadAnalysis`] for nonsensical parameters. Unlike
/// [`Session::tran`](crate::analysis::Session::tran), a cancelled or
/// budget-exhausted run surfaces as an error here and the partial
/// waveform is lost.
#[deprecated(
    note = "use Session::tran, which returns a typed TranResult with partial-run statuses"
)]
pub fn tran(prep: &Prepared, opts: &Options, params: &TranParams) -> Result<Waveform> {
    let r = tran_impl(prep, opts, params)?;
    match r.status {
        TranStatus::Complete => Ok(r.wave),
        TranStatus::Cancelled { t } => Err(SpiceError::Cancelled {
            analysis: "tran",
            time: Some(t),
        }),
        TranStatus::BudgetExhausted {
            resource, limit, ..
        } => Err(SpiceError::BudgetExhausted {
            analysis: "tran",
            resource,
            limit,
            spent: match resource {
                "steps" => r.accepted_steps + r.rejected_steps,
                _ => r.newton_iterations,
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::wave::SourceWave;

    fn opts() -> Options {
        Options::default()
    }

    /// Test shim over the engine: the waveform of a complete run
    /// (shadows the deprecated free function of the same name).
    fn tran(prep: &Prepared, o: &Options, p: &TranParams) -> Result<Waveform> {
        tran_impl(prep, o, p).map(TranResult::into_wave)
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // 1 V step into R=1k, C=1n: tau = 1 us.
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: 0.0,
            },
        );
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(5e-6, 5e-9)).unwrap();
        let v = w.signal("v(out)").unwrap();
        let ts = w.axis();
        for (k, &t) in ts.iter().enumerate() {
            if t < 5e-9 {
                continue;
            }
            let expect = 1.0 - (-(t - 1e-9) / 1e-6).exp();
            assert!(
                (v[k] - expect).abs() < 6e-3,
                "t={t:.3e}: {} vs {expect}",
                v[k]
            );
        }
        // Practically fully charged at the end.
        assert!((w.last("v(out)").unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn lc_oscillation_period() {
        // UIC start: C charged to 1 V rings with L at f = 1/(2 pi sqrt(LC)).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor("C1", a, Circuit::gnd(), 1e-9);
        c.inductor("L1", a, Circuit::gnd(), 1e-6);
        c.resistor("Rdamp", a, Circuit::gnd(), 1e6);
        c.set_ic(a, 1.0);
        let prep = Prepared::compile(&c).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let period = 1.0 / f0;
        let w = tran(
            &prep,
            &opts(),
            &TranParams::new(3.0 * period, period / 400.0).with_uic(),
        )
        .unwrap();
        let v = w.signal("v(a)").unwrap();
        let ts = w.axis();
        // Find the first two downward zero crossings to estimate period.
        let mut crossings = Vec::new();
        for k in 1..v.len() {
            if v[k - 1] > 0.0 && v[k] <= 0.0 {
                let frac = v[k - 1] / (v[k - 1] - v[k]);
                crossings.push(ts[k - 1] + frac * (ts[k] - ts[k - 1]));
            }
        }
        assert!(crossings.len() >= 2, "no oscillation seen");
        let measured = crossings[1] - crossings[0];
        assert!(
            (measured - period).abs() / period < 0.01,
            "period {measured:.3e} vs {period:.3e}"
        );
    }

    #[test]
    fn sin_source_amplitude_preserved() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        c.resistor("R1", a, Circuit::gnd(), 50.0);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(3e-6, 5e-9)).unwrap();
        let v = w.signal("v(a)").unwrap();
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 1.0).abs() < 1e-3);
        assert!((min + 1.0).abs() < 1e-3);
    }

    #[test]
    fn uic_respects_initial_condition() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.capacitor("C1", a, Circuit::gnd(), 1e-9);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        c.set_ic(a, 2.0);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(5e-6, 10e-9).with_uic()).unwrap();
        let v = w.signal("v(a)").unwrap();
        assert!((v[0] - 2.0).abs() < 1e-12);
        // Decays with tau = 1 us.
        let t1 = w.axis().iter().position(|&t| t >= 1e-6).unwrap();
        assert!((v[t1] - 2.0 * (-1.0f64).exp()).abs() < 0.02);
        assert!(w.last("v(a)").unwrap().abs() < 0.02);
    }

    #[test]
    fn rejects_bad_params() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let prep = Prepared::compile(&c).unwrap();
        assert!(tran(&prep, &opts(), &TranParams::new(0.0, 1e-9)).is_err());
        assert!(tran(&prep, &opts(), &TranParams::new(1e-6, 0.0)).is_err());
    }

    /// RC circuit used by the cancellation/budget/streaming tests.
    fn rc_fixture() -> Prepared {
        let mut c = Circuit::new();
        let a = c.node("a");
        let out = c.node("out");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e6,
                delay: 0.0,
                damping: 0.0,
                phase_deg: 0.0,
            },
        );
        c.resistor("R1", a, out, 1e3);
        c.capacitor("C1", out, Circuit::gnd(), 1e-9);
        Prepared::compile(&c).unwrap()
    }

    /// A sink that fires a cancel token the moment it sees the k-th
    /// accepted-step progress record: a deterministic mid-run cancel.
    struct CancelAtStep {
        token: crate::analysis::control::CancelToken,
        at: f64,
    }

    impl ahfic_trace::TraceSink for CancelAtStep {
        fn record(&self, rec: ahfic_trace::TraceRecord) {
            if rec.name == "progress.tran.steps" && rec.value >= self.at {
                self.token.cancel();
            }
        }
    }

    #[test]
    fn cancel_mid_transient_returns_typed_partial() {
        use crate::analysis::control::CancelToken;
        use std::sync::Arc;
        let prep = rc_fixture();
        let token = CancelToken::new();
        let sink = Arc::new(CancelAtStep {
            token: token.clone(),
            at: 20.0,
        });
        let o = Options::default()
            .cancel_token(&token)
            .stream_every(1)
            .trace(&sink);
        let r = tran_impl(&prep, &o, &TranParams::new(5e-6, 5e-9)).unwrap();
        match r.status() {
            TranStatus::Cancelled { t } => assert!(*t > 0.0 && *t < 5e-6),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(!r.is_complete());
        // The cancel fired while accepting step 20; the engine may
        // commit at most the step already in flight before observing it.
        assert!(
            r.accepted_steps() >= 20 && r.accepted_steps() <= 21,
            "stopped after {} steps",
            r.accepted_steps()
        );
        // Partial waveform: every accepted sample is present.
        assert_eq!(r.wave().len(), r.accepted_steps() as usize + 1);
        assert!((r.t_end() - r.wave().axis().last().unwrap()).abs() == 0.0);
    }

    #[test]
    fn step_budget_returns_typed_partial() {
        use crate::analysis::control::Budget;
        let prep = rc_fixture();
        let o = Options::default().budget(Budget::unlimited().max_steps(10));
        let r = tran_impl(&prep, &o, &TranParams::new(5e-6, 5e-9)).unwrap();
        match r.status() {
            TranStatus::BudgetExhausted {
                resource, limit, ..
            } => {
                assert_eq!(*resource, "steps");
                assert_eq!(*limit, 10);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(r.accepted_steps() + r.rejected_steps(), 10);
        // The deprecated free function maps the same run to an error.
        #[allow(deprecated)]
        let e = super::tran(&prep, &o, &TranParams::new(5e-6, 5e-9)).unwrap_err();
        assert!(e.is_abort(), "{e}");
    }

    #[test]
    fn streaming_emits_progress_chunks() {
        use ahfic_trace::InMemorySink;
        use std::sync::Arc;
        let prep = rc_fixture();
        let sink = Arc::new(InMemorySink::new());
        let o = Options::default().stream_every(8).trace(&sink);
        let r = tran_impl(&prep, &o, &TranParams::new(1e-6, 5e-9)).unwrap();
        assert!(r.is_complete());
        let recs = sink.records();
        let ts: Vec<f64> = recs
            .iter()
            .filter(|r| r.name == "progress.tran.t")
            .map(|r| r.value)
            .collect();
        // One chunk per 8 accepted steps, monotonically advancing.
        assert!(ts.len() >= 2, "{} chunks", ts.len());
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
        assert!(recs.iter().any(|r| r.name == "progress.tran.sig.v(out)"));
        assert!(recs.iter().any(|r| r.name == "progress.tran.done"));
        // Off by default: no progress records without the policy.
        let sink2 = Arc::new(InMemorySink::new());
        let o2 = Options::default().trace(&sink2);
        tran_impl(&prep, &o2, &TranParams::new(1e-6, 5e-9)).unwrap();
        assert!(sink2
            .records()
            .iter()
            .all(|r| !r.name.starts_with("progress.")));
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource_wave(
            "V1",
            a,
            Circuit::gnd(),
            SourceWave::Pwl(vec![(0.0, 0.0), (1e-6, 0.0), (1.001e-6, 1.0), (2e-6, 1.0)]),
        );
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let prep = Prepared::compile(&c).unwrap();
        let w = tran(&prep, &opts(), &TranParams::new(2e-6, 0.5e-6)).unwrap();
        // The sharp edge between 1.0 us and 1.001 us must be resolved even
        // though dt_max is 0.5 us.
        assert!(w.axis().iter().any(|&t| (t - 1e-6).abs() < 1e-15));
        assert!(w.axis().iter().any(|&t| (t - 1.001e-6).abs() < 1e-15));
        assert!((w.last("v(a)").unwrap() - 1.0).abs() < 1e-9);
    }
}
