//! DC transfer sweeps: step a source value, solve the OP at each point
//! with warm starting.

use crate::analysis::batched::BatchedOpEngine;
use crate::analysis::op::op_from_ws;
use crate::analysis::solver::SolverWorkspace;
use crate::analysis::stamp::Options;
use crate::circuit::Prepared;
use crate::error::{Result, SpiceError};
use crate::wave::SourceWave;
use crate::wave::Waveform;

/// Sweeps the DC value of the named independent source over `values`,
/// returning every unknown at each point (axis = swept value).
///
/// The source's waveform is restored after the sweep.
///
/// # Errors
///
/// [`SpiceError::BadAnalysis`] for an empty sweep; netlist errors if the
/// source does not exist; OP failures at any point.
#[deprecated(note = "use Session::dc — Session is the primary analysis entry point")]
pub fn dc_sweep(
    prep: &mut Prepared,
    opts: &Options,
    source: &str,
    values: &[f64],
) -> Result<Waveform> {
    dc_sweep_impl(prep, opts, source, values)
}

/// Crate-internal canonical DC-sweep entry (what
/// [`Session::dc`](crate::analysis::Session::dc) and the deprecated
/// free [`dc_sweep`] both call).
pub(crate) fn dc_sweep_impl(
    prep: &mut Prepared,
    opts: &Options,
    source: &str,
    values: &[f64],
) -> Result<Waveform> {
    if values.is_empty() {
        return Err(SpiceError::BadAnalysis("empty DC sweep".into()));
    }
    if prep.circuit.find_element(source).is_none() {
        return Err(SpiceError::Netlist(format!("no element named {source}")));
    }
    let original = prep
        .circuit
        .source_wave(source)
        .cloned()
        .ok_or_else(|| SpiceError::Netlist(format!("{source} is not an independent source")))?;

    let tr = opts.trace.tracer();
    let span = tr.span("dc");
    let mut out = Waveform::new(source);
    for name in &prep.unknown_names {
        out.push_signal(name);
    }
    let mut result = Ok(());
    if let Some(lanes) = opts.batch.lanes().map(|l| opts.budget.clamp_lanes(l)) {
        // Batched path: chunks of up to `lanes` points solved in
        // lockstep over one shared pattern and factor chain. Each chunk
        // warm-starts from the previous chunk's last solution, so a
        // single-lane batch reproduces the sequential warm-start chain
        // point for point.
        let mut engine = BatchedOpEngine::new_persistent(lanes);
        let mut prev: Option<Vec<f64>> = None;
        'chunks: for chunk in values.chunks(lanes) {
            let points = engine.run_from(prep, opts, chunk.len(), prev.as_deref(), |p, i| {
                p.circuit.set_source_wave(source, SourceWave::Dc(chunk[i]))
            });
            for (&v, r) in chunk.iter().zip(points) {
                match r {
                    Ok(r) => {
                        out.push_sample(v, &r.x);
                        prev = Some(r.x);
                    }
                    Err(e) => {
                        result = Err(e);
                        break 'chunks;
                    }
                }
            }
        }
    } else {
        // One workspace for the whole sweep: the stamp pattern is
        // fixed, so every point after the first replays slots and
        // refactors in place.
        let mut ws = SolverWorkspace::new(prep.num_unknowns, opts.solver);
        let mut prev: Option<Vec<f64>> = None;
        for &v in values {
            prep.circuit.set_source_wave(source, SourceWave::Dc(v))?;
            match op_from_ws(prep, opts, prev.as_deref(), &mut ws) {
                Ok(r) => {
                    out.push_sample(v, &r.x);
                    prev = Some(r.x);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
    }
    prep.circuit.set_source_wave(source, original)?;
    tr.counter("dc.points", out.len() as f64);
    span.end();
    result.map(|()| out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::model::DiodeModel;
    use ahfic_num::interp::linspace;

    /// Test shim over the canonical entry (shadows the deprecated free
    /// function of the same name).
    fn dc_sweep(
        prep: &mut Prepared,
        opts: &Options,
        source: &str,
        values: &[f64],
    ) -> Result<Waveform> {
        dc_sweep_impl(prep, opts, source, values)
    }

    #[test]
    fn linear_sweep_is_proportional() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        c.resistor("R1", a, b, 1e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        let mut prep = Prepared::compile(&c).unwrap();
        let w = dc_sweep(
            &mut prep,
            &Options::default(),
            "V1",
            &linspace(0.0, 10.0, 11),
        )
        .unwrap();
        let vb = w.signal("v(b)").unwrap();
        for (k, &v) in w.axis().iter().enumerate() {
            assert!((vb[k] - v / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diode_iv_curve_is_exponential() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", a, Circuit::gnd(), dm, 1.0);
        let mut prep = Prepared::compile(&c).unwrap();
        let vs = linspace(0.4, 0.7, 13);
        let w = dc_sweep(&mut prep, &Options::default(), "V1", &vs).unwrap();
        let i = w.signal("i(V1)").unwrap();
        // Current through V1 is -(diode current); check 60 mV/decade law.
        let i0 = -i[0];
        let i1 = -i[12];
        let decades = (i1 / i0).log10();
        let expected = (0.7 - 0.4) / (0.025852 * std::f64::consts::LN_10 / 1.0);
        let expected_decades = expected * 0.025852 * std::f64::consts::LN_10 / 0.0595;
        // ~ (0.3 V) / (59.5 mV/decade) ~ 5.04 decades.
        assert!(
            (decades - expected_decades).abs() < 0.15,
            "{decades} vs {expected_decades}"
        );
    }

    /// The batched sweep path agrees with the sequential path: bit for
    /// bit at one lane on the sparse backend, and to far below the
    /// Newton tolerance at wider batches.
    #[test]
    fn batched_sweep_matches_sequential() {
        use crate::analysis::solver::SolverChoice;
        use crate::analysis::stamp::BatchMode;
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 0.0);
        let dm = c.add_diode_model(DiodeModel::default());
        c.diode("D1", a, Circuit::gnd(), dm, 1.0);
        let mut prep = Prepared::compile(&c).unwrap();
        let vs = linspace(0.4, 0.7, 13);
        let opts = Options::new().solver(SolverChoice::Sparse);
        let seq = dc_sweep(&mut prep, &opts, "V1", &vs).unwrap();
        let one = dc_sweep(
            &mut prep,
            &opts.clone().batch(BatchMode::Lanes(1)),
            "V1",
            &vs,
        )
        .unwrap();
        let wide = dc_sweep(
            &mut prep,
            &opts.clone().batch(BatchMode::Lanes(4)),
            "V1",
            &vs,
        )
        .unwrap();
        for sig in ["v(a)", "i(V1)"] {
            let s = seq.signal(sig).unwrap();
            let o = one.signal(sig).unwrap();
            let w = wide.signal(sig).unwrap();
            for k in 0..vs.len() {
                assert_eq!(o[k], s[k], "{sig} point {k} (single lane)");
                assert!(
                    (w[k] - s[k]).abs() <= 1e-9 * s[k].abs().max(1e-12),
                    "{sig} point {k}: {} vs {}",
                    w[k],
                    s[k]
                );
            }
        }
    }

    #[test]
    fn sweep_restores_original_wave() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 7.0);
        c.resistor("R1", a, Circuit::gnd(), 1e3);
        let mut prep = Prepared::compile(&c).unwrap();
        dc_sweep(&mut prep, &Options::default(), "V1", &[1.0, 2.0]).unwrap();
        assert_eq!(
            prep.circuit.source_wave("V1").cloned(),
            Some(SourceWave::Dc(7.0))
        );
    }

    #[test]
    fn empty_sweep_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::gnd(), 1.0);
        c.resistor("R1", a, Circuit::gnd(), 1.0);
        let mut prep = Prepared::compile(&c).unwrap();
        assert!(dc_sweep(&mut prep, &Options::default(), "V1", &[]).is_err());
        assert!(dc_sweep(&mut prep, &Options::default(), "R1", &[1.0]).is_err());
    }
}
