//! Cooperative cancellation and per-job resource budgets.
//!
//! The serving layer hands every analysis a [`CancelToken`] and a
//! [`Budget`] through [`Options`](crate::analysis::Options): the token is
//! polled at Newton-iteration and transient-timestep boundaries (never
//! inside a factorization), so a cancelled job stops within one solver
//! step; the budget bounds how much work one job may burn before it is
//! degraded to a typed report instead of starving its worker thread.
//!
//! Both are zero-cost when unset: the default [`CancelHandle::off`] and
//! [`Budget::unlimited`] make every poll site a single not-taken branch,
//! mirroring the `TraceHandle`/`FaultHandle` pattern.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation flag shared between a job's submitter and
/// the analysis running it.
///
/// Clones observe the same flag; [`CancelToken::cancel`] is sticky
/// (there is no un-cancel). Install it into analysis options with
/// [`Options::cancel_token`](crate::analysis::Options::cancel_token).
///
/// ```
/// use ahfic_spice::analysis::CancelToken;
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Analyses observe it at their next Newton
    /// iteration or timestep boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// An options-ready handle observing this token.
    pub fn handle(&self) -> CancelHandle {
        CancelHandle {
            inner: Some(Arc::clone(&self.flag)),
        }
    }
}

/// Shared handle to an optional [`CancelToken`], stored inside
/// [`Options`](crate::analysis::Options).
///
/// Equality compares only whether cancellation is wired up (mirroring
/// `TraceHandle`/`FaultHandle`), so `Options` keeps a useful
/// `PartialEq`.
#[derive(Clone, Default)]
pub struct CancelHandle {
    inner: Option<Arc<AtomicBool>>,
}

impl CancelHandle {
    /// A disabled handle: every poll site is a single not-taken branch.
    pub const fn off() -> Self {
        CancelHandle { inner: None }
    }

    /// Wraps a token for installation into options.
    pub fn new(token: &CancelToken) -> Self {
        token.handle()
    }

    /// Whether a token is installed.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether cancellation has been requested (`false` when no token is
    /// installed).
    #[inline]
    pub fn cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(flag) => flag.load(Ordering::Relaxed),
        }
    }

    /// Requests cancellation through this handle (no-op when disabled).
    ///
    /// The serving layer uses this during `shutdown_and_drain` to stop
    /// in-flight jobs past the drain deadline without needing the
    /// original [`CancelToken`].
    pub fn cancel(&self) {
        if let Some(flag) = &self.inner {
            flag.store(true, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for CancelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl PartialEq for CancelHandle {
    fn eq(&self, other: &Self) -> bool {
        self.enabled() == other.enabled()
    }
}

/// A wall-clock deadline: the instant the budget was armed plus the
/// allowance, kept together so exhaustion reports both the configured
/// limit and the time actually spent.
///
/// Created through [`Budget::max_wall`]; checked at the same
/// Newton-iteration / timestep / shooting-iteration boundaries as the
/// counter budgets, so a stuck solve degrades to a typed
/// `BudgetExhausted` (resource `"wall_clock_ms"`) within one boundary
/// instead of hanging a serving worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    start: Instant,
    limit: Duration,
}

impl Deadline {
    /// Arms a deadline `limit` from now.
    pub fn within(limit: Duration) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// Whether the allowance has elapsed.
    #[inline]
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }

    /// The configured allowance in milliseconds.
    pub fn limit_ms(&self) -> u64 {
        self.limit.as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// Milliseconds elapsed since the deadline was armed.
    pub fn spent_ms(&self) -> u64 {
        self.start.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// The same allowance with the clock restarted now.
    pub fn rearmed(&self) -> Self {
        Deadline::within(self.limit)
    }
}

/// Per-analysis resource budget, enforced at solver boundaries.
///
/// Limits degrade a runaway job to a typed
/// [`SpiceError::BudgetExhausted`](crate::error::SpiceError::BudgetExhausted)
/// (or, for transients, a partial
/// [`TranResult`](crate::analysis::TranResult)) instead of letting it
/// monopolize a serving worker. The struct is `#[non_exhaustive]`:
/// construct it with [`Budget::unlimited`] and tighten through the
/// builder methods.
///
/// ```
/// use ahfic_spice::analysis::Budget;
/// let b = Budget::unlimited().max_newton(500).max_steps(10_000);
/// assert_eq!(b.max_newton, Some(500));
/// assert_eq!(b.max_lanes, None);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Budget {
    /// Cumulative Newton-iteration cap per analysis call (summed across
    /// continuation rungs and transient steps). `None` = unlimited.
    pub max_newton: Option<u64>,
    /// Cap on transient steps attempted (accepted plus rejected).
    /// `None` = unlimited.
    pub max_steps: Option<u64>,
    /// Cap on batched-engine SoA lanes, clamping
    /// [`BatchMode`](crate::analysis::BatchMode) requests. `None` =
    /// unlimited.
    pub max_lanes: Option<usize>,
    /// Wall-clock deadline, checked at the same solver boundaries as the
    /// counters above. `None` = unlimited.
    pub deadline: Option<Deadline>,
}

impl Budget {
    /// No limits — the default.
    pub const fn unlimited() -> Self {
        Budget {
            max_newton: None,
            max_steps: None,
            max_lanes: None,
            deadline: None,
        }
    }

    /// Caps cumulative Newton iterations per analysis call.
    pub fn max_newton(mut self, limit: u64) -> Self {
        self.max_newton = Some(limit);
        self
    }

    /// Caps transient steps attempted (accepted plus rejected).
    pub fn max_steps(mut self, limit: u64) -> Self {
        self.max_steps = Some(limit);
        self
    }

    /// Caps batched-engine lane requests.
    pub fn max_lanes(mut self, limit: usize) -> Self {
        self.max_lanes = Some(limit.max(1));
        self
    }

    /// Arms a wall-clock deadline `limit` from now. The clock starts
    /// when this builder runs, not when the analysis does — arm it at
    /// submission time to bound queueing plus compute, or just before
    /// the call to bound compute alone.
    ///
    /// Because `Budget` is `Copy` and the deadline is armed here, one
    /// budget cloned across a batch of jobs gives every job the *same*
    /// start instant — late jobs in a long batch can be born already
    /// expired. Build the budget per job, or re-start the clock with
    /// [`Budget::rearmed`] when reusing one.
    pub fn max_wall(mut self, limit: Duration) -> Self {
        self.deadline = Some(Deadline::within(limit));
        self
    }

    /// This budget with any wall-clock deadline re-armed from now,
    /// keeping all counter limits. Use when one configured budget is
    /// reused across jobs so each gets its own full wall allowance:
    ///
    /// ```
    /// use ahfic_spice::analysis::Budget;
    /// use std::time::Duration;
    /// let template = Budget::unlimited()
    ///     .max_newton(500)
    ///     .max_wall(Duration::from_secs(5));
    /// let per_job = template.rearmed(); // fresh 5 s, same Newton cap
    /// assert_eq!(per_job.max_newton, Some(500));
    /// ```
    pub fn rearmed(mut self) -> Self {
        if let Some(d) = &self.deadline {
            self.deadline = Some(d.rearmed());
        }
        self
    }

    /// Whether any limit is set.
    pub fn limited(&self) -> bool {
        self.max_newton.is_some()
            || self.max_steps.is_some()
            || self.max_lanes.is_some()
            || self.deadline.is_some()
    }

    /// Clamps a requested lane count to the budget.
    #[inline]
    pub fn clamp_lanes(&self, lanes: usize) -> usize {
        match self.max_lanes {
            None => lanes,
            Some(cap) => lanes.min(cap),
        }
    }

    /// Whether `spent` Newton iterations exceed the cap.
    #[inline]
    pub(crate) fn newton_exhausted(&self, spent: u64) -> Option<u64> {
        match self.max_newton {
            Some(limit) if spent >= limit => Some(limit),
            _ => None,
        }
    }

    /// Whether `spent` transient steps exceed the cap.
    #[inline]
    pub(crate) fn steps_exhausted(&self, spent: u64) -> Option<u64> {
        match self.max_steps {
            Some(limit) if spent >= limit => Some(limit),
            _ => None,
        }
    }

    /// Whether the wall-clock deadline has passed, returning
    /// `(limit_ms, spent_ms)` for the exhaustion report. A single
    /// not-taken branch when no deadline is armed; reads the clock only
    /// when one is.
    #[inline]
    pub(crate) fn wall_exhausted(&self) -> Option<(u64, u64)> {
        match &self.deadline {
            Some(d) if d.expired() => Some((d.limit_ms(), d.spent_ms())),
            _ => None,
        }
    }
}

/// Incremental-progress streaming policy for long transients
/// ([`Options::stream`](crate::analysis::Options::stream)).
///
/// When enabled (and a trace sink is installed), the transient engine
/// emits a `progress.tran.*` record chunk every N accepted steps over
/// the ordinary trace path, so a `JsonLinesSink` client observes a long
/// run live instead of waiting for the final waveform.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StreamPolicy {
    /// No progress records — the default.
    #[default]
    Off,
    /// Emit a progress chunk every `n` accepted steps (clamped to ≥ 1).
    EverySteps(usize),
}

impl StreamPolicy {
    /// The accepted-step cadence, or `None` when streaming is off.
    pub fn every(self) -> Option<usize> {
        match self {
            StreamPolicy::Off => None,
            StreamPolicy::EverySteps(n) => Some(n.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
    }

    #[test]
    fn handle_off_never_reports_cancelled() {
        let h = CancelHandle::off();
        assert!(!h.enabled());
        assert!(!h.cancelled());
        assert_eq!(h, CancelHandle::default());
    }

    #[test]
    fn handle_observes_token() {
        let t = CancelToken::new();
        let h = CancelHandle::new(&t);
        assert!(h.enabled() && !h.cancelled());
        t.cancel();
        assert!(h.cancelled());
        assert_ne!(h, CancelHandle::off());
        assert!(format!("{h:?}").contains("enabled: true"));
    }

    #[test]
    fn budget_builders_and_checks() {
        let b = Budget::unlimited();
        assert!(!b.limited());
        assert_eq!(b.newton_exhausted(u64::MAX), None);
        assert_eq!(b.clamp_lanes(64), 64);
        let b = b.max_newton(10).max_steps(5).max_lanes(4);
        assert!(b.limited());
        assert_eq!(b.newton_exhausted(9), None);
        assert_eq!(b.newton_exhausted(10), Some(10));
        assert_eq!(b.steps_exhausted(5), Some(5));
        assert_eq!(b.clamp_lanes(64), 4);
        assert_eq!(Budget::unlimited().max_lanes(0).clamp_lanes(64), 1);
    }

    #[test]
    fn wall_deadline_arms_and_expires() {
        let b = Budget::unlimited();
        assert_eq!(b.wall_exhausted(), None);
        let b = b.max_wall(Duration::from_secs(3600));
        assert!(b.limited());
        assert_eq!(b.wall_exhausted(), None, "fresh hour-long budget");
        let b = Budget::unlimited().max_wall(Duration::ZERO);
        let (limit, _spent) = b.wall_exhausted().expect("zero allowance expires at once");
        assert_eq!(limit, 0);
        let d = Deadline::within(Duration::from_millis(1500));
        assert_eq!(d.limit_ms(), 1500);
        assert!(!d.expired());
    }

    #[test]
    fn rearmed_restarts_the_clock_and_keeps_counters() {
        // An expired budget reused across jobs must come back alive.
        let stale = Budget::unlimited()
            .max_newton(500)
            .max_wall(Duration::ZERO);
        assert!(stale.wall_exhausted().is_some(), "born expired");
        let fresh = stale.rearmed();
        // Duration::ZERO re-arms to an immediately-expired deadline;
        // use a real allowance to observe the restart.
        let stale = Budget::unlimited()
            .max_newton(500)
            .max_wall(Duration::from_secs(3600));
        let fresh2 = stale.rearmed();
        assert_eq!(fresh2.wall_exhausted(), None, "clock restarted");
        assert_eq!(fresh.max_newton, Some(500), "counter limits kept");
        assert_eq!(fresh2.max_newton, Some(500));
        // No deadline → rearmed is a no-op.
        let plain = Budget::unlimited().max_newton(3);
        assert_eq!(plain.rearmed(), plain);
    }

    #[test]
    fn handle_cancel_is_a_noop_when_disabled() {
        CancelHandle::off().cancel();
        let t = CancelToken::new();
        let h = CancelHandle::new(&t);
        h.cancel();
        assert!(t.is_cancelled(), "handle cancel reaches the shared token");
    }

    #[test]
    fn stream_policy_cadence() {
        assert_eq!(StreamPolicy::Off.every(), None);
        assert_eq!(StreamPolicy::EverySteps(8).every(), Some(8));
        assert_eq!(StreamPolicy::EverySteps(0).every(), Some(1));
        assert_eq!(StreamPolicy::default(), StreamPolicy::Off);
    }
}
