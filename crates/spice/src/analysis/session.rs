//! The analysis session: one compiled circuit, one set of options, all
//! five analyses behind a single handle.
//!
//! [`Session`] is the primary analysis entry point: it owns a shared
//! handle to the [`Prepared`] circuit and the [`Options`] — including
//! the telemetry [`TraceHandle`](ahfic_trace::TraceHandle), the
//! cooperative [`CancelHandle`](crate::analysis::CancelHandle), and the
//! resource [`Budget`](crate::analysis::Budget) — so callers configure
//! once and run as many analyses as they need. The deprecated free
//! functions (`op`, `dc_sweep`, `ac_sweep`, `noise_analysis`, `tran`)
//! are thin wrappers over the same engines.
//!
//! Sessions hold the compiled deck as `Arc<Prepared>`: cloning a
//! session (or building many via [`Session::compile_cached`] against a
//! [`PreparedCache`]) shares one compiled deck across threads instead
//! of duplicating it.

use crate::analysis::ac::ac_sweep_impl;
use crate::analysis::dc::dc_sweep_impl;
use crate::analysis::noise::{noise_impl, NoisePoint};
use crate::analysis::op::{op_from_ws, OpResult};
use crate::analysis::pac::{pac_impl, PacParams, PacResult};
use crate::analysis::pss::{pss_impl, PssParams, PssResult};
use crate::analysis::solver::{SolverChoice, SolverWorkspace};
use crate::analysis::stamp::Options;
use crate::analysis::tran::{tran_impl, TranParams, TranResult};
use crate::cache::PreparedCache;
use crate::circuit::{Circuit, NodeId, Prepared};
use crate::error::Result;
#[allow(unused_imports)] // doc links
use crate::lint::LintPolicy;
use crate::wave::{AcWaveform, Waveform};
use std::sync::{Arc, Mutex};

/// A compiled circuit plus analysis options.
///
/// # Example
///
/// ```
/// use ahfic_spice::prelude::*;
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.vsource("V1", vin, Circuit::gnd(), 10.0);
/// ckt.resistor("R1", vin, out, 1e3);
/// ckt.resistor("R2", out, Circuit::gnd(), 1e3);
/// let sess = Session::compile(&ckt)?;
/// let op = sess.op()?;
/// assert!((sess.prepared().voltage(op.x(), out) - 5.0).abs() < 1e-9);
/// # Ok::<(), ahfic_spice::error::SpiceError>(())
/// ```
pub struct Session {
    prepared: Arc<Prepared>,
    options: Options,
    /// Cached Newton workspace, so repeated operating points on one
    /// session (a serving worker, a tuner loop) reuse the assembled
    /// sparsity pattern and factor storage instead of paying the
    /// symbolic setup per call. Taken out of the slot for the duration
    /// of a solve, so concurrent `op` calls on a shared session stay
    /// parallel (late arrivals build a fresh workspace).
    ws: Mutex<Option<WsSlot>>,
}

/// A parked workspace plus the shape it was built for.
struct WsSlot {
    n: usize,
    solver: SolverChoice,
    ws: SolverWorkspace<f64>,
}

impl Clone for Session {
    /// Clones share the compiled deck and options; the workspace cache
    /// starts empty (it is rebuilt on the clone's first operating
    /// point).
    fn clone(&self) -> Self {
        Session {
            prepared: Arc::clone(&self.prepared),
            options: self.options.clone(),
            ws: Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("prepared", &self.prepared)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Wraps an already-compiled circuit with default options.
    pub fn new(prepared: Prepared) -> Self {
        Session::from_arc(Arc::new(prepared))
    }

    /// Wraps a shared compiled circuit (e.g. one checked out of a
    /// [`PreparedCache`]) with default options.
    pub fn from_arc(prepared: Arc<Prepared>) -> Self {
        Session {
            prepared,
            options: Options::default(),
            ws: Mutex::new(None),
        }
    }

    /// Compiles `circuit` and wraps it with default options.
    ///
    /// # Errors
    ///
    /// Propagates [`Prepared::compile`] netlist errors.
    pub fn compile(circuit: &Circuit) -> Result<Self> {
        Ok(Session::new(Prepared::compile(circuit)?))
    }

    /// Compiles `circuit` under fully-formed `options`: the pre-flight
    /// lint pass runs with `options.lint` ([`LintPolicy::Deny`] by
    /// default — error-severity findings fail compilation; warnings are
    /// available through [`Session::lint_warnings`]).
    ///
    /// The options are applied atomically: the lint policy, batch mode,
    /// trace handle, cancel handle, and budget in `options` are exactly
    /// the ones the returned session runs under, and the compile itself
    /// is observable as a `compile` span on `options.trace` — so a deck
    /// compiled fresh here and one checked out of a cache by
    /// [`Session::compile_cached`] behave identically under the same
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates [`Prepared::compile_with`] errors, including
    /// [`crate::error::SpiceError::LintFailed`].
    pub fn compile_with(circuit: &Circuit, options: Options) -> Result<Self> {
        let tr = options.trace.tracer();
        let span = tr.span("compile");
        let prepared = Prepared::compile_with(circuit, options.lint);
        span.end();
        Ok(Session {
            prepared: Arc::new(prepared?),
            options,
            ws: Mutex::new(None),
        })
    }

    /// Checks the deck out of `cache` (compiling at most once per
    /// content key) and wraps the shared [`Prepared`] with `options`.
    ///
    /// The cache key includes `options.lint`, so a deck compiled under
    /// [`LintPolicy::Deny`] and the same deck under [`LintPolicy::Off`]
    /// occupy distinct slots. All other options are session-local and
    /// do not affect the key.
    ///
    /// # Errors
    ///
    /// Propagates the (possibly cached) compile error of an invalid
    /// deck.
    pub fn compile_cached(
        cache: &PreparedCache,
        circuit: &Circuit,
        options: Options,
    ) -> Result<Self> {
        let deck = cache.get_or_compile(circuit, options.lint)?;
        Ok(Session {
            prepared: deck.prepared_arc(),
            options,
            ws: Mutex::new(None),
        })
    }

    /// Warning-severity findings of the pre-flight lint pass (all
    /// findings when compiled under [`LintPolicy::Warn`]).
    pub fn lint_warnings(&self) -> &[crate::lint::LintDiagnostic] {
        &self.prepared.lint_warnings
    }

    /// Replaces the analysis options (chainable).
    ///
    /// Note the lint policy is consumed at compile time; changing it
    /// here does not re-lint an already-compiled deck.
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// The compiled circuit.
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }

    /// Shared ownership of the compiled circuit (cheap clone; what
    /// concurrent jobs pass around).
    pub fn prepared_arc(&self) -> Arc<Prepared> {
        Arc::clone(&self.prepared)
    }

    /// Mutable access to the compiled circuit, e.g. to retune element
    /// values in place between runs. Copy-on-write: a deck shared with
    /// other sessions (or a cache) is cloned on first mutation, so
    /// co-tenants are never affected.
    #[allow(clippy::expect_used)]
    pub fn prepared_mut(&mut self) -> &mut Prepared {
        // The caller may change the deck's structure, not just values;
        // drop the parked workspace rather than reuse a stale pattern.
        *self.ws.get_mut().expect("session workspace lock") = None;
        Arc::make_mut(&mut self.prepared)
    }

    /// The analysis options in effect.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Mutable access to the options (e.g. to install a trace sink or
    /// cancel handle after construction).
    pub fn options_mut(&mut self) -> &mut Options {
        &mut self.options
    }

    /// Computes the DC operating point.
    ///
    /// # Errors
    ///
    /// [`crate::error::SpiceError::NoConvergence`] when the whole recovery
    /// ladder fails; [`crate::error::SpiceError::Cancelled`] /
    /// [`crate::error::SpiceError::BudgetExhausted`] under an options
    /// cancel handle or budget.
    pub fn op(&self) -> Result<OpResult> {
        self.op_from(None)
    }

    /// Operating point warm-started from a previous solution.
    ///
    /// Reuses this session's parked Newton workspace when its shape
    /// still matches, so a loop of operating points pays the symbolic
    /// sparse setup once.
    ///
    /// # Errors
    ///
    /// Same as [`Session::op`].
    #[allow(clippy::expect_used)]
    pub fn op_from(&self, x0: Option<&[f64]>) -> Result<OpResult> {
        let n = self.prepared.num_unknowns;
        let solver = self.options.solver;
        let parked = self
            .ws
            .lock()
            .expect("session workspace lock")
            .take()
            .filter(|s| s.n == n && s.solver == solver);
        let mut slot = parked.unwrap_or_else(|| WsSlot {
            n,
            solver,
            ws: SolverWorkspace::new(n, solver),
        });
        let result = op_from_ws(&self.prepared, &self.options, x0, &mut slot.ws);
        if result.is_ok() {
            let mut parked = self.ws.lock().expect("session workspace lock");
            if parked.is_none() {
                *parked = Some(slot);
            }
        }
        result
    }

    /// Sweeps the DC value of the named independent source.
    ///
    /// Mutates the source waveform in place (restoring it afterwards),
    /// so a deck shared with other sessions is copied on first write.
    ///
    /// # Errors
    ///
    /// [`crate::error::SpiceError::BadAnalysis`] for an empty sweep;
    /// netlist errors if the source does not exist; OP failures at any
    /// point.
    pub fn dc(&mut self, source: &str, values: &[f64]) -> Result<Waveform> {
        dc_sweep_impl(
            Arc::make_mut(&mut self.prepared),
            &self.options,
            source,
            values,
        )
    }

    /// AC sweep around the operating point `x_op`.
    ///
    /// # Errors
    ///
    /// [`crate::error::SpiceError::BadAnalysis`] for an empty frequency
    /// list; [`crate::error::SpiceError::Singular`] if the admittance
    /// matrix is singular.
    pub fn ac(&self, x_op: &[f64], freqs: &[f64]) -> Result<AcWaveform> {
        ac_sweep_impl(&self.prepared, x_op, &self.options, freqs)
    }

    /// Noise analysis at `output` around the operating point `x_op`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::ac`].
    pub fn noise(&self, x_op: &[f64], output: NodeId, freqs: &[f64]) -> Result<Vec<NoisePoint>> {
        noise_impl(&self.prepared, x_op, &self.options, output, freqs)
    }

    /// Transient simulation.
    ///
    /// Returns a [`TranResult`] whose status reports whether the run
    /// completed, was cancelled, or exhausted its budget — a partial
    /// waveform is still returned in the latter two cases.
    ///
    /// # Errors
    ///
    /// Initial-OP and in-run solver failures; cancellation and budget
    /// exhaustion are *statuses* on the result, not errors.
    pub fn tran(&self, params: &TranParams) -> Result<TranResult> {
        tran_impl(&self.prepared, &self.options, params)
    }

    /// Periodic steady state by shooting Newton.
    ///
    /// Returns a [`PssResult`] whose status reports whether the
    /// shooting iteration converged, was cancelled, or exhausted its
    /// budget — the best orbit so far is still returned in the latter
    /// two cases.
    ///
    /// # Errors
    ///
    /// [`crate::error::SpiceError::BadAnalysis`] for nonsensical
    /// parameters; initial-OP and inner solver failures;
    /// [`crate::error::SpiceError::NoConvergence`] when the shooting
    /// iteration stalls.
    pub fn pss(&self, params: &PssParams) -> Result<PssResult> {
        pss_impl(&self.prepared, &self.options, params)
    }

    /// Periodic small-signal conversion gain (PSS plus a difference
    /// transient against the tiled orbit).
    ///
    /// Mutates the input source's waveform in place (restoring it
    /// afterwards), so a deck shared with other sessions is copied on
    /// first write.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::pss`], plus
    /// [`crate::error::SpiceError::BadAnalysis`] when the measurement
    /// window does not hold an integer number of input/output cycles.
    pub fn pac(&mut self, pss_params: &PssParams, params: &PacParams) -> Result<PacResult> {
        pac_impl(
            Arc::make_mut(&mut self.prepared),
            &self.options,
            pss_params,
            params,
        )
    }
}

// One compiled deck must be shareable across the worker pool, and one
// session handle must be movable into a job thread. These are
// compile-time proofs; they have no runtime cost.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<Options>();
    assert_send_sync::<Prepared>();
    assert_send_sync::<PreparedCache>();
    assert_send_sync::<crate::cache::CachedDeck>();
    assert_send_sync::<OpResult>();
    assert_send_sync::<TranResult>();
    assert_send_sync::<crate::analysis::control::CancelToken>();
    assert_send_sync::<crate::analysis::control::Budget>();
    assert_send_sync::<crate::error::SpiceError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverChoice;
    use ahfic_trace::{InMemorySink, RecordKind};
    use std::sync::Arc;

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 12.0);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        c
    }

    #[test]
    fn session_runs_op_and_dc() {
        let ckt = divider();
        let b = ckt.find_node("b").unwrap();
        let mut sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().solver(SolverChoice::Dense));
        let r = sess.op().unwrap();
        assert!((sess.prepared().voltage(r.x(), b) - 4.0).abs() < 1e-9);
        let w = sess.dc("V1", &[3.0, 6.0]).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn session_trace_reaches_sink() {
        let ckt = divider();
        let sink = Arc::new(InMemorySink::new());
        let sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().trace(&sink));
        sess.op().unwrap();
        let recs = sink.records();
        assert_eq!(recs[0].kind, RecordKind::SpanStart);
        assert_eq!(recs[0].name, "op");
        assert!(recs
            .iter()
            .any(|r| r.kind == RecordKind::Counter && r.name == "op.newton_iterations"));
        assert_eq!(recs.last().unwrap().kind, RecordKind::SpanEnd);
    }

    #[test]
    fn compile_with_traces_the_compile_atomically() {
        // The bugfix under test: options — including the trace handle —
        // are in force *during* compilation, not attached afterwards.
        let ckt = divider();
        let sink = Arc::new(InMemorySink::new());
        let sess = Session::compile_with(&ckt, Options::new().trace(&sink)).unwrap();
        let recs = sink.records();
        assert_eq!(recs[0].kind, RecordKind::SpanStart);
        assert_eq!(recs[0].name, "compile");
        assert_eq!(recs[1].kind, RecordKind::SpanEnd);
        assert!(sess.options().trace.enabled());
    }

    #[test]
    fn cached_sessions_share_one_deck() {
        let cache = PreparedCache::new(4);
        let ckt = divider();
        let s1 = Session::compile_cached(&cache, &ckt, Options::new()).unwrap();
        let s2 = Session::compile_cached(&cache, &ckt, Options::new()).unwrap();
        assert!(std::ptr::eq(
            Arc::as_ptr(&s1.prepared_arc()),
            Arc::as_ptr(&s2.prepared_arc())
        ));
        assert_eq!(cache.stats().compiles(), 1);
        // Both sessions produce the same operating point.
        let (r1, r2) = (s1.op().unwrap(), s2.op().unwrap());
        assert_eq!(r1.x(), r2.x());
    }

    #[test]
    fn dc_on_shared_deck_copies_on_write() {
        let cache = PreparedCache::new(4);
        let ckt = divider();
        let s1 = Session::compile_cached(&cache, &ckt, Options::new()).unwrap();
        let mut s2 = Session::compile_cached(&cache, &ckt, Options::new()).unwrap();
        let w = s2.dc("V1", &[3.0, 6.0]).unwrap();
        assert_eq!(w.len(), 2);
        // s1's deck is untouched; s2 now owns a private copy.
        assert!(!std::ptr::eq(
            Arc::as_ptr(&s1.prepared_arc()),
            Arc::as_ptr(&s2.prepared_arc())
        ));
        assert_eq!(
            s1.prepared().circuit.source_wave("V1").cloned(),
            Some(crate::wave::SourceWave::Dc(12.0))
        );
    }
}
