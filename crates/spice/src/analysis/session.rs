//! The analysis session: one compiled circuit, one set of options, all
//! five analyses behind a single handle.
//!
//! [`Session`] is the coherent entry point the free functions
//! ([`op`](crate::analysis::op()), [`dc_sweep`],
//! [`ac_sweep`],
//! [`noise_analysis`],
//! [`tran`](crate::analysis::tran())) wrap: it owns the [`Prepared`]
//! circuit and the [`Options`] — including the telemetry
//! [`TraceHandle`](ahfic_trace::TraceHandle) — so callers configure once
//! and run as many analyses as they need.

use crate::analysis::ac::ac_sweep;
use crate::analysis::dc::dc_sweep;
use crate::analysis::noise::{noise_analysis, NoisePoint};
use crate::analysis::op::{op_from, OpResult};
use crate::analysis::stamp::Options;
use crate::analysis::tran::{tran, TranParams};
use crate::circuit::{Circuit, NodeId, Prepared};
use crate::error::Result;
#[allow(unused_imports)] // doc links
use crate::lint::LintPolicy;
use crate::wave::{AcWaveform, Waveform};

/// A compiled circuit plus analysis options.
///
/// # Example
///
/// ```
/// use ahfic_spice::prelude::*;
///
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.vsource("V1", vin, Circuit::gnd(), 10.0);
/// ckt.resistor("R1", vin, out, 1e3);
/// ckt.resistor("R2", out, Circuit::gnd(), 1e3);
/// let sess = Session::compile(&ckt)?;
/// let op = sess.op()?;
/// assert!((sess.prepared().voltage(&op.x, out) - 5.0).abs() < 1e-9);
/// # Ok::<(), ahfic_spice::error::SpiceError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Session {
    prepared: Prepared,
    options: Options,
}

impl Session {
    /// Wraps an already-compiled circuit with default options.
    pub fn new(prepared: Prepared) -> Self {
        Session {
            prepared,
            options: Options::default(),
        }
    }

    /// Compiles `circuit` and wraps it with default options.
    ///
    /// # Errors
    ///
    /// Propagates [`Prepared::compile`] netlist errors.
    pub fn compile(circuit: &Circuit) -> Result<Self> {
        Ok(Session::new(Prepared::compile(circuit)?))
    }

    /// Compiles `circuit` under the given options: the pre-flight lint
    /// pass runs with `options.lint` ([`LintPolicy::Deny`] by default —
    /// error-severity findings fail compilation; warnings are available
    /// through [`Session::lint_warnings`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Prepared::compile_with`] errors, including
    /// [`crate::error::SpiceError::LintFailed`].
    pub fn compile_with(circuit: &Circuit, options: Options) -> Result<Self> {
        let prepared = Prepared::compile_with(circuit, options.lint)?;
        Ok(Session { prepared, options })
    }

    /// Warning-severity findings of the pre-flight lint pass (all
    /// findings when compiled under [`LintPolicy::Warn`]).
    pub fn lint_warnings(&self) -> &[crate::lint::LintDiagnostic] {
        &self.prepared.lint_warnings
    }

    /// Replaces the analysis options (chainable).
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// The compiled circuit.
    pub fn prepared(&self) -> &Prepared {
        &self.prepared
    }

    /// The analysis options in effect.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Mutable access to the options (e.g. to install a trace sink after
    /// construction).
    pub fn options_mut(&mut self) -> &mut Options {
        &mut self.options
    }

    /// Computes the DC operating point.
    ///
    /// # Errors
    ///
    /// Same as [`crate::analysis::op()`].
    pub fn op(&self) -> Result<OpResult> {
        op_from(&self.prepared, &self.options, None)
    }

    /// Operating point warm-started from a previous solution.
    ///
    /// # Errors
    ///
    /// Same as [`crate::analysis::op_from`].
    pub fn op_from(&self, x0: Option<&[f64]>) -> Result<OpResult> {
        op_from(&self.prepared, &self.options, x0)
    }

    /// Sweeps the DC value of the named independent source.
    ///
    /// # Errors
    ///
    /// Same as [`crate::analysis::dc_sweep`].
    pub fn dc(&mut self, source: &str, values: &[f64]) -> Result<Waveform> {
        dc_sweep(&mut self.prepared, &self.options, source, values)
    }

    /// AC sweep around the operating point `x_op`.
    ///
    /// # Errors
    ///
    /// Same as [`crate::analysis::ac_sweep`].
    pub fn ac(&self, x_op: &[f64], freqs: &[f64]) -> Result<AcWaveform> {
        ac_sweep(&self.prepared, x_op, &self.options, freqs)
    }

    /// Noise analysis at `output` around the operating point `x_op`.
    ///
    /// # Errors
    ///
    /// Same as [`crate::analysis::noise_analysis`].
    pub fn noise(&self, x_op: &[f64], output: NodeId, freqs: &[f64]) -> Result<Vec<NoisePoint>> {
        noise_analysis(&self.prepared, x_op, &self.options, output, freqs)
    }

    /// Transient simulation.
    ///
    /// # Errors
    ///
    /// Same as [`crate::analysis::tran()`].
    pub fn tran(&self, params: &TranParams) -> Result<Waveform> {
        tran(&self.prepared, &self.options, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverChoice;
    use ahfic_trace::{InMemorySink, RecordKind};
    use std::sync::Arc;

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::gnd(), 12.0);
        c.resistor("R1", a, b, 2e3);
        c.resistor("R2", b, Circuit::gnd(), 1e3);
        c
    }

    #[test]
    fn session_runs_op_and_dc() {
        let ckt = divider();
        let b = ckt.find_node("b").unwrap();
        let mut sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().solver(SolverChoice::Dense));
        let r = sess.op().unwrap();
        assert!((sess.prepared().voltage(&r.x, b) - 4.0).abs() < 1e-9);
        let w = sess.dc("V1", &[3.0, 6.0]).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn session_trace_reaches_sink() {
        let ckt = divider();
        let sink = Arc::new(InMemorySink::new());
        let sess = Session::compile(&ckt)
            .unwrap()
            .with_options(Options::new().trace(&sink));
        sess.op().unwrap();
        let recs = sink.records();
        assert_eq!(recs[0].kind, RecordKind::SpanStart);
        assert_eq!(recs[0].name, "op");
        assert!(recs
            .iter()
            .any(|r| r.kind == RecordKind::Counter && r.name == "op.newton_iterations"));
        assert_eq!(recs.last().unwrap().kind, RecordKind::SpanEnd);
    }
}
